#!/usr/bin/env python3
"""Adversary playground: throwing everything at WAIT-FREE-GATHER.

The correctness claims of the paper are universally quantified over the
scheduler (any fair activation pattern), the crash pattern (any f < n)
and the movement interruptions (any cut >= delta).  This script builds
the nastiest combinations the simulator offers — including the
proof-targeted adversaries — and shows the algorithm shrugging all of
them off, while a naive ablation falls into the bivalent trap.

Run:  python examples/adversarial_schedulers.py
"""

from repro import (
    AdversarialStop,
    CrashAfterMove,
    CrashElected,
    HalfSplitAdversary,
    LaggardAdversary,
    NaiveLeaderGather,
    RandomCrashes,
    RoundRobin,
    Simulation,
    WaitFreeGather,
)
from repro.sim import CollusiveStop, FullySynchronous
from repro.workloads import generate

N = 8

ARENAS = [
    (
        "round-robin + crash-after-move + adversarial stops",
        "multiple",
        dict(
            scheduler=RoundRobin(),
            crash_adversary=CrashAfterMove(f=N - 1),
            movement=AdversarialStop(0.2),
        ),
    ),
    (
        "laggard scheduler + crash-the-elected",
        "asymmetric",
        dict(
            scheduler=LaggardAdversary(),
            crash_adversary=CrashElected(f=N - 1),
        ),
    ),
    (
        "half-split clusters + random crashes",
        "near-bivalent",
        dict(
            scheduler=HalfSplitAdversary(),
            crash_adversary=RandomCrashes(f=N - 1, rate=0.3),
            movement=AdversarialStop(0.3),
        ),
    ),
    (
        "collusive stacking vs an unsafe rally point",
        "unsafe-ray",
        dict(
            scheduler=FullySynchronous(),
            movement=CollusiveStop(0.2),
        ),
    ),
]


def main() -> None:
    print("WAIT-FREE-GATHER under targeted adversaries")
    print("=" * 60)
    for title, workload, kwargs in ARENAS:
        result = Simulation(
            WaitFreeGather(),
            generate(workload, N, seed=3),
            seed=42,
            max_rounds=10_000,
            **kwargs,
        ).run()
        classes = " -> ".join(str(c) for c in result.classes_seen)
        print(f"\n{title}")
        print(f"  workload: {workload}, crashes: {len(result.crashed_ids)}")
        print(f"  {classes} => {result.verdict} in {result.rounds} rounds")
        assert result.gathered

    print("\n" + "=" * 60)
    print("The same collusive attack against the ablated naive leader:")
    sim = Simulation(
        NaiveLeaderGather(),
        generate("unsafe-ray", N, seed=3),
        scheduler=FullySynchronous(),
        movement=CollusiveStop(0.2),
        seed=42,
        max_rounds=2_000,
        halt_on_bivalent=False,
        record_trace=True,
    )
    result = sim.run()
    classes = " -> ".join(str(c) for c in result.classes_seen)
    print(f"  {classes} => {result.verdict}")
    print(
        "  The straight-line rush lets the adversary stack half the team\n"
        "  on one ray: the bivalent trap (class B), from which the tied\n"
        "  election never recovers.  This is exactly the failure the\n"
        "  paper's side-step rule and safe points (Definition 8) prevent."
    )
    assert result.verdict == "stalled"


if __name__ == "__main__":
    main()
