#!/usr/bin/env python3
"""Quickstart: gather 8 robots while 7 of them crash.

The scenario of the paper's title: anonymous, oblivious, disoriented
robots (sharing only chirality) must meet at one point even though all
but one of them may stop forever at arbitrary moments.  We run the
paper's WAIT-FREE-GATHER in the ATOM model with a hostile mix of
adversaries and watch all correct robots meet.

Run:  python examples/quickstart.py
"""

from repro import (
    RandomCrashes,
    RandomStop,
    RandomSubset,
    Simulation,
    WaitFreeGather,
)
from repro.workloads import random_points


def main() -> None:
    n = 8
    points = random_points(n, seed=2026)
    print(f"Initial positions ({n} robots):")
    for i, p in enumerate(points):
        print(f"  robot {i}: ({p.x:6.3f}, {p.y:6.3f})")

    sim = Simulation(
        WaitFreeGather(),
        points,
        scheduler=RandomSubset(0.5),        # semi-synchronous adversary
        crash_adversary=RandomCrashes(f=n - 1, rate=0.3),  # up to 7 crashes!
        movement=RandomStop(delta=0.05),    # moves may be cut short
        frames="random",                    # private disoriented frames
        seed=2026,
        record_trace=True,
    )
    result = sim.run()

    print(f"\nVerdict: {result.verdict} after {result.rounds} rounds")
    print(f"Crashed robots: {sorted(result.crashed_ids)}")
    print(
        "Configuration classes traversed: "
        + " -> ".join(str(c) for c in result.classes_seen)
    )
    if result.gathering_point is not None:
        gp = result.gathering_point
        print(f"All correct robots gathered at ({gp.x:.6f}, {gp.y:.6f})")

    print("\nRound transcript (first 15 rounds):")
    print(result.trace.render(limit=15))

    assert result.gathered, "Theorem 5.1 says this cannot happen"


if __name__ == "__main__":
    main()
