#!/usr/bin/env python3
"""Gallery: the five configuration classes and what the algorithm sees.

For each class of the paper's Section IV partition this script generates
a representative configuration, prints an ASCII sketch, the derived
structure (rotational symmetry, quasi-regularity, Weber point, safe
points) and then runs WAIT-FREE-GATHER to show the class trajectory the
execution follows — ending at M and then gathered, exactly as Lemmas
5.3-5.9 prescribe.

Run:  python examples/symmetry_gallery.py
"""

from repro import Simulation, WaitFreeGather
from repro.core import (
    Configuration,
    classify,
    quasi_regularity,
    safe_points,
    symmetry,
)
from repro.workloads import generate

GALLERY = [
    ("multiple", "M — a unique point of maximum multiplicity"),
    ("linear-unique", "L1W — collinear, unique Weber point (median)"),
    ("linear-interval", "L2W — collinear, a whole interval of Weber points"),
    ("regular-polygon", "QR — rotationally symmetric (regular polygon)"),
    ("biangular", "QR — biangular: angles periodic, radii arbitrary"),
    ("qr-occupied-center", "QR — deficient pattern + wildcard on the center"),
    ("asymmetric", "A — all views distinct: a leader can be elected"),
    ("bivalent", "B — two balanced points: gathering impossible"),
]


def sketch(config: Configuration, size: int = 21) -> str:
    """Tiny ASCII plot; digits show multiplicities (9+ shown as '*')."""
    xs = [p.x for p in config.support]
    ys = [p.y for p in config.support]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    span = max(x1 - x0, y1 - y0) or 1.0
    grid = [["." for _ in range(size)] for _ in range(size)]
    for p in config.support:
        col = round((p.x - x0) / span * (size - 1))
        row = round((p.y - y0) / span * (size - 1))
        m = config.mult(p)
        grid[size - 1 - row][col] = str(m) if m < 10 else "*"
    return "\n".join("   " + "".join(line) for line in grid)


def describe(kind: str, caption: str) -> None:
    points = generate(kind, 8, seed=5)
    config = Configuration(points)
    cls = classify(config)
    print(f"--- {caption}")
    print(f"    classified as: {cls} | sym = {symmetry(config)}", end="")
    qr = quasi_regularity(config)
    if qr.is_quasi_regular:
        print(f" | qreg = {qr.m} with center ({qr.center.x:.2f}, {qr.center.y:.2f})", end="")
    print(f" | safe points: {len(safe_points(config))}/{len(config.support)}")
    print(sketch(config))

    result = Simulation(
        WaitFreeGather(), points, seed=5, max_rounds=5_000
    ).run()
    trajectory = " -> ".join(str(c) for c in result.classes_seen)
    print(f"    execution: {trajectory} => {result.verdict} "
          f"({result.rounds} rounds)\n")


def main() -> None:
    for kind, caption in GALLERY:
        describe(kind, caption)
    print(
        "Note the last entry: the bivalent configuration is the single\n"
        "initial configuration from which no deterministic algorithm can\n"
        "gather (Lemma 5.2); the engine detects it and refuses."
    )


if __name__ == "__main__":
    main()
