#!/usr/bin/env python3
"""Search-and-rescue drill: how many crashes can each strategy survive?

A team of robots sweeps a disaster area; when the mission ends, the
survivors must regroup at a single point to be picked up.  Robots fail
in the field — dust, falls, dead batteries — and a rally algorithm that
waits for a dead teammate strands everyone.

This demo pits the paper's WAIT-FREE-GATHER against three period
strategies on the same missions with an increasing number of failures
and prints the rescue statistics.

Run:  python examples/crash_tolerance_demo.py
"""

from repro import (
    ALGORITHMS,
    RandomCrashes,
    RandomStop,
    RandomSubset,
    Simulation,
)
from repro.sim import spread, summarize_runs
from repro.workloads import random_points

TEAM = 10
MISSIONS = 8
STRATEGIES = ["wait-free-gather", "sequential", "centroid", "weber-numeric"]


def drill(strategy: str, crashes: int) -> str:
    results = []
    spreads = []
    for mission in range(MISSIONS):
        sim = Simulation(
            ALGORITHMS[strategy](),
            random_points(TEAM, seed=100 + mission),
            scheduler=RandomSubset(0.5),
            crash_adversary=RandomCrashes(f=crashes, rate=0.25),
            movement=RandomStop(delta=0.05),
            seed=mission,
            max_rounds=3_000,
        )
        result = sim.run()
        results.append(result)
        spreads.append(
            spread([result.final_positions[r] for r in result.live_ids])
        )
    summary = summarize_runs(results)
    rescued = f"{summary.gathered}/{summary.runs}"
    rounds = (
        f"{summary.mean_rounds_gathered:7.1f}"
        if summary.gathered
        else "      -"
    )
    worst_spread = max(spreads)
    return (
        f"{rescued:>7}   {rounds}    {summary.stalled:>8}   {worst_spread:10.2e}"
    )


def main() -> None:
    print(f"Team of {TEAM} robots, {MISSIONS} missions per cell.\n")
    for crashes in (0, 1, 3, TEAM - 1):
        print(f"=== {crashes} crash(es) allowed ===")
        print(
            f"{'strategy':>18}   rescued   mean rds    deadlocks   worst spread"
        )
        for strategy in STRATEGIES:
            print(f"{strategy:>18}   {drill(strategy, crashes)}")
        print()

    print(
        "Reading the table: 'sequential' (the classic wait-ful rally)\n"
        "deadlocks as soon as one robot dies.  'centroid' converges onto\n"
        "the fixpoint of its own rule - the *average of the crashed\n"
        "robots' positions* - so the survivors rally wherever the corpses\n"
        "happen to lie, an order of magnitude slower (its success is only\n"
        "counted once robots merge within the 1e-9 sensor resolution; in\n"
        "exact arithmetic it never finishes).  'weber-numeric' is the\n"
        "idealized oracle the paper shows how to approximate exactly on\n"
        "the computable classes.  The paper's wait-free-gather rescues\n"
        "every mission at every fault level, at oracle-level speed."
    )


if __name__ == "__main__":
    main()
