#!/usr/bin/env python3
"""Render executions and configuration snapshots as SVG files.

Produces, under ``examples/out/``:

* one snapshot per configuration class (``class_<name>.svg``) with the
  smallest enclosing circle, multiplicities, safe-point halos and the
  exactly-computable Weber point;
* one trajectory plot per adversary mix (``run_<name>.svg``) showing
  every robot's path, crash sites (X), and the gathering point (ring).

No plotting library is needed — the SVG is written directly.

Run:  python examples/render_run_svg.py
"""

import os

from repro import (
    AdversarialStop,
    CrashAfterMove,
    RandomCrashes,
    RandomStop,
    RandomSubset,
    RoundRobin,
    Simulation,
    WaitFreeGather,
)
from repro.core import Configuration
from repro.viz import render_configuration, render_trace
from repro.workloads import generate

OUT = os.path.join(os.path.dirname(__file__), "out")

SNAPSHOTS = [
    "multiple",
    "linear-unique",
    "linear-interval",
    "regular-polygon",
    "biangular",
    "qr-occupied-center",
    "asymmetric",
    "bivalent",
    "unsafe-ray",
]

RUNS = [
    (
        "random_crashes",
        "random",
        dict(
            scheduler=RandomSubset(0.5),
            crash_adversary=RandomCrashes(f=7, rate=0.25),
            movement=RandomStop(0.05),
        ),
    ),
    (
        "crash_after_move",
        "regular-polygon",
        dict(
            scheduler=RoundRobin(),
            crash_adversary=CrashAfterMove(f=7),
            movement=AdversarialStop(0.2),
        ),
    ),
    (
        "fault_free_linear",
        "linear-interval",
        dict(),
    ),
]


def main() -> None:
    os.makedirs(OUT, exist_ok=True)

    for kind in SNAPSHOTS:
        config = Configuration(generate(kind, 8, seed=5))
        path = os.path.join(OUT, f"class_{kind.replace('-', '_')}.svg")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(render_configuration(config, caption=f"{kind}"))
        print(f"wrote {path}")

    for name, workload, kwargs in RUNS:
        sim = Simulation(
            WaitFreeGather(),
            generate(workload, 8, seed=5),
            seed=7,
            record_trace=True,
            max_rounds=5_000,
            **kwargs,
        )
        result = sim.run()
        path = os.path.join(OUT, f"run_{name}.svg")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(render_trace(result.trace, result))
        print(
            f"wrote {path}  ({result.verdict} in {result.rounds} rounds, "
            f"{len(result.crashed_ids)} crashes)"
        )


if __name__ == "__main__":
    main()
