"""Benchmark + shape check for experiment E5 (Lemma 5.1, wait-freedom)."""

from repro.experiments import e5_waitfree

from conftest import render


def test_e5_waitfree(benchmark, quick):
    tables = benchmark.pedantic(
        e5_waitfree.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    render(tables)
    condition, deadlock = tables

    for row in condition.rows:
        algorithm, n, configs, max_stays, mean_stays, violations = row
        if algorithm == "wait-free-gather":
            assert max_stays <= 1 and violations == 0
        if algorithm == "sequential":
            # Every configuration with >2 occupied locations violates
            # the condition: n - 1 locations wait.
            assert violations == configs

    for row in deadlock.rows:
        algorithm, n, runs, gathered, stalled = row
        if algorithm == "wait-free-gather":
            assert gathered == runs and stalled == 0
        if algorithm == "sequential":
            assert stalled == runs, "mover crash must deadlock sequential"
