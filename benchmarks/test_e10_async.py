"""Benchmark + shape check for experiment E10 (ASYNC exploration).

The paper claims nothing about ASYNC; the measured observation — which
this bench pins as a regression guard — is that the algorithm keeps
gathering even on stale snapshots, because its per-class targets are
motion-invariant.
"""

from repro.experiments import e10_async

from conftest import render


def test_e10_async(benchmark, quick):
    tables = benchmark.pedantic(
        e10_async.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    render(tables)
    (table,) = tables

    for row in table.rows:
        scheduler, n, runs, gathered, success, ticks, stale = row
        assert gathered == runs, f"{scheduler} n={n}: {gathered}/{runs}"
    # The exploration must actually have exercised staleness.
    assert any(row[6] > 0 for row in table.rows), "no stale moves observed"
