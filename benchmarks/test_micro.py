"""Micro-benchmarks of the implementation's hot paths.

Not tied to a paper table; these track the costs that dominate the
experiment sweeps so regressions are visible: configuration
construction (tolerant clustering), the view table, quasi-regularity
detection, the numerical Weber solve, a single ATOM round, and a full
fault-injected run.
"""

import pytest

from repro.algorithms import WaitFreeGather
from repro.core import (
    Configuration,
    classify,
    destination_map,
    quasi_regularity,
    view_table,
)
from repro.geometry import geometric_median
from repro.sim import RandomCrashes, RandomSubset, Simulation
from repro.workloads import generate

N = 16


@pytest.fixture(scope="module")
def cloud():
    return generate("random", N, seed=42)


def _fresh_config(points):
    return Configuration(points)


def test_bench_configuration_build(benchmark, cloud):
    benchmark(_fresh_config, cloud)


def test_bench_view_table(benchmark, cloud):
    benchmark(lambda: view_table(Configuration(cloud)))


def test_bench_classify(benchmark, cloud):
    benchmark(lambda: classify(Configuration(cloud)))


def test_bench_quasi_regularity_positive(benchmark):
    points = generate("biangular", N, seed=7)
    benchmark(lambda: quasi_regularity(Configuration(points)))


def test_bench_geometric_median(benchmark, cloud):
    benchmark(lambda: geometric_median(cloud))


def test_bench_destination_map(benchmark, cloud):
    benchmark(lambda: destination_map(Configuration(cloud)))


def test_bench_single_round(benchmark, cloud):
    def one_round():
        sim = Simulation(WaitFreeGather(), cloud, seed=1)
        sim.step()

    benchmark(one_round)


def test_bench_full_run_with_crashes(benchmark, cloud):
    def full_run():
        result = Simulation(
            WaitFreeGather(),
            cloud,
            scheduler=RandomSubset(0.5),
            crash_adversary=RandomCrashes(f=N - 1, rate=0.25),
            seed=3,
            max_rounds=10_000,
        ).run()
        assert result.gathered

    benchmark(full_run)
