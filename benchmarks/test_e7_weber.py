"""Benchmark + shape check for experiment E7 (Theorem 3.1 detection)."""

from repro.experiments import e7_weber_detection

from conftest import render


def test_e7_weber_detection(benchmark, quick):
    tables = benchmark.pedantic(
        e7_weber_detection.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    render(tables)
    detection, negatives, invariance = tables

    # Soundness & completeness on generated QR workloads.
    for row in detection.rows:
        workload, n, configs, detected, matched, worst = row
        assert detected == configs, f"{workload} n={n}: missed detections"
        assert matched == configs, f"{workload} n={n}: center != Weber point"
        assert worst <= 1e-6

    # No false positives after macroscopic tangential perturbation.
    for row in negatives.rows:
        assert row[3] == 0, f"false positive in {row[0]} n={row[1]}"

    # Lemma 3.2: centers stay put under partial contraction.
    for row in invariance.rows:
        assert row[3] == 0
