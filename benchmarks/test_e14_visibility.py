"""Benchmark + shape check for experiment E14 (limited visibility).

Pinned shape: success is 100% at (near-)unlimited radii, collapses at
small radii, and success% is monotone non-increasing as the radius
shrinks; at least one small-radius run must end in the global-bivalent
failure mode (the trap limited vision walks into).
"""

from repro.experiments import e14_visibility

from conftest import render


def test_e14_visibility(benchmark, quick):
    tables = benchmark.pedantic(
        e14_visibility.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    render(tables)
    (table,) = tables

    rows = table.rows
    assert rows[0][0] == "unlimited"
    assert rows[0][3] == 100.0, "the paper's model must stay at 100%"
    success = [row[3] for row in rows]
    assert all(a >= b for a, b in zip(success, success[1:])), (
        f"success not monotone in radius: {success}"
    )
    assert success[-1] < 50.0, "smallest radius should break gathering"
    assert any(row[5] > 0 for row in rows), (
        "expected at least one global-bivalent ending at small radii"
    )
