"""Benchmark + shape check for experiment E8 (delta sensitivity)."""

from repro.experiments import e8_delta

from conftest import render


def test_e8_delta(benchmark, quick):
    tables = benchmark.pedantic(
        e8_delta.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    render(tables)
    (table,) = tables

    for row in table.rows:
        delta, runs, gathered, success, mean_rounds, max_rounds = row
        assert success == 100.0, f"delta={delta}: {success}%"

    # Shape: rounds grow as delta shrinks (roughly ~1/delta).
    by_delta = sorted(table.rows, key=lambda r: -r[0])  # large -> small
    rounds = [row[4] for row in by_delta]
    assert rounds == sorted(rounds), (
        "rounds-to-gather must be monotone in 1/delta: "
        f"{[(r[0], r[4]) for r in by_delta]}"
    )
