"""Benchmark + shape check for experiment E16 (sensor noise).

Pinned shape: gathering succeeds at every noise level, and the final
physical diameter of the survivors stays below twice the sensing
resolution — the algorithm degrades gracefully to whatever accuracy the
sensors provide.
"""

from repro.experiments import e16_sensor_noise

from conftest import render


def test_e16_sensor_noise(benchmark, quick):
    tables = benchmark.pedantic(
        e16_sensor_noise.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    render(tables)
    (table,) = tables

    for row in table.rows:
        noise, resolution, runs, gathered, success, rounds, final_spread = row
        assert gathered == runs, f"noise={noise}: {gathered}/{runs}"
        assert final_spread <= 2.0 * resolution + 1e-9, (
            f"noise={noise}: spread {final_spread} vs resolution {resolution}"
        )
    # Exact sensing must remain exact.
    assert table.rows[0][6] == 0.0
