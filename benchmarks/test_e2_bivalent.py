"""Benchmark + shape check for experiment E2 (Lemma 5.2).

Paper prediction: from a bivalent start, the paper's algorithm refuses
(impossibility is decidable from one snapshot); the naive leader freezes
under the cluster-alternating adversary; one robot of asymmetry restores
100% gathering.  The centroid rows document a genuine discretization
effect: in exact reals the half-split chase never terminates, but a
simulation with 1e-9 multiplicity resolution merges the clusters after
~log2(distance/1e-9) halving steps.
"""

from repro.experiments import e2_bivalent

from conftest import render


def test_e2_bivalent(benchmark, quick):
    tables = benchmark.pedantic(
        e2_bivalent.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    render(tables)
    (table,) = tables

    for row in table.rows:
        workload, algorithm, scheduler, n, runs, gathered, impossible, stalled, timeout = row
        if workload == "bivalent" and algorithm == "wait-free-gather":
            assert impossible == runs, "WFG must refuse B outright"
        if workload == "bivalent" and algorithm == "naive-leader":
            assert stalled == runs, "tied election must freeze"
        if workload == "near-bivalent":
            assert gathered == runs, "one stray robot restores gathering"
