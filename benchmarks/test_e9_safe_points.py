"""Benchmark + shape check for experiment E9 (Definition 8 ablation)."""

from repro.experiments import e9_safe_points

from conftest import render


def test_e9_safe_points(benchmark, quick):
    tables = benchmark.pedantic(
        e9_safe_points.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    render(tables)
    static, dynamic = tables

    # Lemmas 4.2 / 4.3 as measured.
    for row in static.rows:
        workload, expected, configs, with_safe, without = row
        if expected == "some":
            assert with_safe == configs, f"{workload}: safe point missing"
        else:
            assert without == configs, f"{workload}: phantom safe point"

    # The ablation: naive straight-line motion is trapped; the paper's
    # side-step rule is immune.
    by_algo = {}
    for row in dynamic.rows:
        by_algo.setdefault(row[0], []).append(row)
    for row in by_algo["wait-free-gather"]:
        assert row[3] == 0, "wait-free-gather entered B"
        assert row[4] == row[2], "wait-free-gather failed to gather"
    trapped = sum(row[3] for row in by_algo["naive-leader"])
    assert trapped > 0, "the ablation never hit the trap - attack broken?"
