"""Benchmark + shape check for experiment E4 (baseline comparison).

Paper prediction (Section I motivation): the paper's algorithm and the
idealized Weber oracle stay at 100% for every fault budget; the classic
sequential algorithm collapses to ~0% the moment one crash is allowed
(deadlock); convergence-only baselines fall behind on gathering.
"""

from repro.experiments import e4_baselines

from conftest import render


def _rows_for(table, algorithm):
    return [row for row in table.rows if row[0] == algorithm]


def test_e4_baselines(benchmark, quick):
    tables = benchmark.pedantic(
        e4_baselines.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    render(tables)
    (table,) = tables

    # The paper's algorithm: clean sweep at every f.
    for row in _rows_for(table, "wait-free-gather"):
        assert row[3] == 100.0, f"wait-free-gather f={row[1]}: {row[3]}%"

    # The idealized Weber oracle also sweeps (it is the upper bound).
    for row in _rows_for(table, "weber-numeric"):
        assert row[3] == 100.0

    # Sequential: fine fault-free, dead with crashes (the crossover that
    # motivates the paper).
    seq = {row[1]: row for row in _rows_for(table, "sequential")}
    assert seq[0][3] == 100.0, "sequential must gather fault-free"
    for f, row in seq.items():
        if f >= 1:
            assert row[3] < 50.0, f"sequential should collapse at f={f}"
            assert row[4] > 0.0, "collapse must manifest as deadlock (stalls)"
