"""Benchmark + shape check for experiment E13 (progress series).

Pinned shapes: every representative run gathers; within class M the
maximum multiplicity never decreases (Lemma 5.3); the series end with
the survivors stacked on one location.
"""

from repro.experiments import e13_progress

from conftest import render


def test_e13_progress(benchmark, quick):
    tables = benchmark.pedantic(
        e13_progress.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    render(tables)
    assert len(tables) == 5

    for table in tables:
        assert "verdict=gathered" in table.caption, table.caption
        assert not any("VIOLATION" in note for note in table.notes)
        # Multiplicity within M never regresses along the printed rows.
        last_mult = None
        for row in table.rows:
            _, cls, max_mult, locations, _, _ = row
            if cls != "M":
                last_mult = None
                continue
            if last_mult is not None:
                assert max_mult >= last_mult
            last_mult = max_mult
