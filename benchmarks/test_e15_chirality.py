"""Benchmark + shape check for experiment E15 (chirality ablation).

Pinned observation: mixed handedness never broke gathering on any
generated workload (agreement only consults orientation in mirror-tied
elections, which the generators do not produce), and a wholly mirrored
world (k = n) matches the untouched world exactly.
"""

from repro.experiments import e15_chirality

from conftest import render


def test_e15_chirality(benchmark, quick):
    tables = benchmark.pedantic(
        e15_chirality.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    render(tables)
    (table,) = tables

    by_workload = {}
    for row in table.rows:
        workload, k, runs, gathered, success, rounds = row
        assert gathered == runs, f"{workload} k={k}: {gathered}/{runs}"
        by_workload.setdefault(workload, {})[k] = rounds
    for workload, per_k in by_workload.items():
        ks = sorted(per_k)
        # k = n (a consistent mirrored world) must match k = 0 exactly.
        assert per_k[ks[0]] == per_k[ks[-1]], workload
