"""Benchmark + shape check for experiment E1 (Theorem 5.1).

Paper prediction: 100% gathering success in every cell — all classes,
all fault budgets up to n - 1, all schedulers, all movement adversaries.
"""

from repro.experiments import e1_main_theorem

from conftest import render


def test_e1_main_theorem(benchmark, quick):
    tables = benchmark.pedantic(
        e1_main_theorem.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    render(tables)
    by_class, by_adversary = tables

    # Shape: every cell of E1a must be a clean sweep.
    for row in by_class.rows:
        workload, n, f, runs, gathered, success, _ = row
        assert runs > 0
        assert gathered == runs, (
            f"Theorem 5.1 violated: {workload} n={n} f={f} "
            f"gathered {gathered}/{runs}"
        )
        assert success == 100.0

    # Shape: the proof-targeted adversaries fare no better.
    for row in by_adversary.rows:
        scheduler, crashes, runs, gathered, success, _ = row
        assert gathered == runs, f"{scheduler}/{crashes}: {gathered}/{runs}"
