"""Benchmark + shape check for experiment E3 (Lemmas 5.3-5.9).

Paper prediction: the observed class-transition graph is a subgraph of
the proved reachability diagram, and no per-round invariant (wait
freedom, Weber invariance, maximum-multiplicity stability, phi progress)
is ever violated — the run itself raises on violation.
"""

from repro.experiments import e3_transitions

from conftest import render


def test_e3_transitions(benchmark, quick):
    tables = benchmark.pedantic(
        e3_transitions.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    render(tables)
    (table,) = tables

    assert table.rows, "no transitions observed - the sweep did not run"
    for row in table.rows:
        source, target, occurrences, allowed = row
        assert occurrences > 0
        assert allowed == "yes", f"forbidden transition {source} -> {target}"
    # M must absorb every run: the most frequent transition is M -> M.
    top = max(table.rows, key=lambda r: r[2])
    assert (top[0], top[1]) == ("M", "M")
