"""Benchmark + shape check for experiment E6 (scalability)."""

from repro.experiments import e6_scalability

from conftest import render


def test_e6_scalability(benchmark, quick):
    tables = benchmark.pedantic(
        e6_scalability.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    render(tables)
    (table,) = tables

    for row in table.rows:
        scheduler, n, runs, gathered, mean_rounds, max_rounds, wall = row
        assert gathered == runs, f"{scheduler} n={n}"

    # Shape: round-robin needs more rounds than FSYNC at equal n (one
    # robot per round versus all of them).
    fsync = {row[1]: row[4] for row in table.rows if row[0] == "fsync"}
    rrobin = {row[1]: row[4] for row in table.rows if row[0] == "round-robin"}
    for n in fsync:
        assert rrobin[n] > fsync[n], f"round-robin not slower at n={n}?"
