"""Benchmark + shape check for experiment E11 (byzantine probing).

Pinned observations: the crash-equivalent ``stationary`` policy gathers
100% (byzantine subsumes crash), and the live disruption strategies
neither prevent gathering nor slow it by more than 2x under identical
adversaries.
"""

from repro.experiments import e11_byzantine

from conftest import render


def test_e11_byzantine(benchmark, quick):
    tables = benchmark.pedantic(
        e11_byzantine.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    render(tables)
    (table,) = tables

    for row in table.rows:
        policy, n, runs, gathered, success, rounds, slowdown = row
        assert gathered == runs, f"{policy} n={n}: {gathered}/{runs}"
        assert slowdown == slowdown and slowdown < 2.0, (
            f"{policy} n={n}: unexpected slowdown {slowdown}"
        )
