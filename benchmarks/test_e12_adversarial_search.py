"""Benchmark + shape check for experiment E12 (adversarial search).

Pinned separation: the greedy joint adversary reaches B against the
ablated naive-leader on unsafe-ray workloads, and never against
wait-free-gather (positive score floor).
"""

from repro.experiments import e12_adversarial_search

from conftest import render


def test_e12_adversarial_search(benchmark, quick):
    tables = benchmark.pedantic(
        e12_adversarial_search.run, kwargs={"quick": quick}, rounds=1,
        iterations=1,
    )
    render(tables)
    (table,) = tables

    for row in table.rows:
        algorithm, workload, n, hunts, reached, min_score = row
        if algorithm == "wait-free-gather":
            assert reached == 0, f"search cracked WFG on {workload}?!"
            assert min_score > 0
        if algorithm == "naive-leader" and workload == "unsafe-ray":
            assert reached == hunts, "search failed to rediscover the trap"
            assert min_score == 0
