"""Benchmark-suite configuration.

Each ``test_eX_*.py`` module regenerates one experiment of DESIGN.md's
index (E1-E9), asserts the *shape* the paper predicts (who wins, what is
impossible, what never happens), and reports its wall time through
pytest-benchmark.  ``test_micro.py`` additionally tracks the hot paths
of the implementation (classification tower, one ATOM round, full runs).

Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_BENCH_FULL=1`` to run the full (paper-scale) parameter
sweeps instead of the quick ones.
"""

import os

import pytest


@pytest.fixture(scope="session")
def quick() -> bool:
    """Quick mode unless the caller asks for the full sweeps."""
    return os.environ.get("REPRO_BENCH_FULL", "") != "1"


def render(tables) -> None:
    """Print experiment tables so `pytest -s` shows the regenerated data."""
    for table in tables:
        print()
        print(table.render())
