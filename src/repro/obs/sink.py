"""Event sinks: in-memory collection and the JSONL archive format.

The JSONL layout mirrors the trace archive's self-description principle:

* line 1 — header: ``{"format": "repro-obs-v1", "meta": {...}}`` where
  ``meta`` is the *same* dict a ``repro-trace-v2`` archive embeds
  (scenario, seeds, backend, tolerance, engine).  An event stream and a
  trace recorded from the same run therefore join on
  ``meta["seed"]`` / ``meta["scenario"]``.
* one line per :class:`~repro.obs.events.RoundEvent`;
* zero or more trailing ``{"run_end": {...}}`` summary lines.

Python floats serialize via ``repr``, which round-trips float64 exactly,
so spreads and target coordinates survive the archive bit for bit.

Crash safety: the sink streams into ``<path>.partial`` and atomically
renames it to ``path`` on :meth:`JsonlSink.close` (after an fsync), so
a finished stream is always whole — a run killed mid-stream leaves only
the ``.partial`` file (whose eagerly-written header still identifies
it), never a truncated artifact at the final path where corpus globs
would pick it up.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, TextIO, Tuple

from ..resilience import TraceFormatError, fsync_handle, promote
from .events import OBS_SCHEMA, RoundEvent

__all__ = ["Collector", "JsonlSink", "read_events"]


class Collector:
    """In-memory ``on_round`` hook: keeps events and per-class counts.

    The CLI ``profile`` command registers one to turn the event stream
    into the per-class round-count table without a file in between.
    """

    def __init__(self) -> None:
        self.events: List[RoundEvent] = []
        self.class_counts: Dict[str, int] = {}

    def __call__(self, event: RoundEvent) -> None:
        self.events.append(event)
        self.class_counts[event.config_class] = (
            self.class_counts.get(event.config_class, 0) + 1
        )

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink:
    """Streaming JSONL writer for round events and run-end summaries.

    The header line is written eagerly on construction so even a stream
    cut short mid-run identifies itself and its provenance (in the
    ``.partial`` file — see the module docstring for the atomic-rename
    crash-safety contract).  ``write`` and ``write_run_end`` match the
    ``on_round`` / ``on_run_end`` hook signatures, so a sink registers
    directly.
    """

    def __init__(self, path: str, meta: Optional[dict] = None) -> None:
        self.path = path
        self.meta = meta
        self._partial_path = path + ".partial"
        self._handle: Optional[TextIO] = open(
            self._partial_path, "w", encoding="utf-8"
        )
        self._write_line({"format": OBS_SCHEMA, "meta": meta})

    def _write_line(self, payload: dict) -> None:
        if self._handle is None:
            raise ValueError(f"sink {self.path!r} is closed")
        self._handle.write(json.dumps(payload))
        self._handle.write("\n")

    def write(self, event: RoundEvent) -> None:
        self._write_line(event.to_dict())

    def write_run_end(self, summary: dict) -> None:
        self._write_line({"run_end": summary})

    def close(self) -> None:
        if self._handle is not None:
            fsync_handle(self._handle)
            self._handle.close()
            self._handle = None
            promote(self._partial_path, self.path)

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_events(
    path: str,
) -> Tuple[Optional[dict], List[RoundEvent], List[dict]]:
    """Read a JSONL event stream: ``(meta, events, run_end_summaries)``.

    Raises :class:`ValueError` on a missing or foreign header so stale
    or truncated-at-birth files fail loudly, and
    :class:`~repro.resilience.errors.TraceFormatError` — carrying the
    path and 1-based line number — on any undecodable or malformed
    payload line, so a corrupted stream is *reported* rather than
    silently skipped over.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            header_line = handle.readline()
        except UnicodeDecodeError:
            raise ValueError(f"{path!r} is not a {OBS_SCHEMA} event stream")
        try:
            header = json.loads(header_line) if header_line.strip() else None
        except json.JSONDecodeError:
            header = None
        if not isinstance(header, dict) or header.get("format") != OBS_SCHEMA:
            raise ValueError(f"{path!r} is not a {OBS_SCHEMA} event stream")
        events: List[RoundEvent] = []
        run_ends: List[dict] = []
        line_no = 1
        while True:
            line_no += 1
            try:
                line = handle.readline()
            except UnicodeDecodeError as exc:
                raise TraceFormatError(
                    f"{path}: undecodable event line {line_no}: binary "
                    f"garbage at byte {exc.start}",
                    path=path,
                    line=line_no,
                    offset=exc.start,
                ) from exc
            if not line:
                break
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"{path}: undecodable event line {line_no}: {exc.msg} "
                    f"(stream truncated or corrupted)",
                    path=path,
                    line=line_no,
                    offset=exc.pos,
                ) from exc
            if not isinstance(payload, dict):
                raise TraceFormatError(
                    f"{path}: event line {line_no} is not an object",
                    path=path,
                    line=line_no,
                )
            if "run_end" in payload:
                run_ends.append(payload["run_end"])
            else:
                try:
                    events.append(RoundEvent.from_dict(payload))
                except (KeyError, TypeError, ValueError) as exc:
                    raise TraceFormatError(
                        f"{path}: malformed event line {line_no}: {exc}",
                        path=path,
                        line=line_no,
                    ) from exc
    return header.get("meta"), events, run_ends
