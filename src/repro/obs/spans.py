"""Span tracing: run -> round -> phase -> kernel on one timeline.

Round events (:mod:`repro.obs.events`) say *what* each round did;
spans say *when* and *inside what*.  A :class:`Span` is a named time
range with an explicit parent/child id link and monotonic nanosecond
timestamps (``time.perf_counter_ns``), forming the hierarchy

* ``run`` — one span per engine run;
* ``round`` — one child per ATOM round / ASYNC tick;
* ``phase`` — the LOOK / COMPUTE / MOVE decomposition.  In ATOM the
  phases are round-global barriers, so each round carries three phase
  children; in ASYNC each *activation* is its own phase span (that
  interleaving is the whole point of the CORDA model);
* ``kernel`` — one leaf per instrumented geometry-kernel call,
  attributed to whatever phase was open when it ran.

Recording goes through the process-wide :data:`tracer` and is guarded
exactly like every other obs signal: call sites check
``obs.state.enabled`` first, so a disabled process allocates no span
objects (the no-alloc regression test covers this).  With observability
on, tracing defaults on too and can be vetoed with ``REPRO_SPANS=0``.

The tracer keeps a bounded in-memory tail (ring buffer) — enough for a
sweep worker to ship its recent spans home in the per-seed result
payload — and optionally streams every finished span to sinks, e.g. a
:class:`SpanJsonlSink` writing the ``repro-spans-v1`` JSONL format:

* line 1 — header ``{"format": "repro-spans-v1", "meta": {...}}`` with
  the same ``repro-trace-v2`` meta block the event sink embeds;
* one line per finished span.

:func:`chrome_trace_events` converts serialized spans into the Chrome
trace-event JSON format (``ph: "X"`` complete events, microsecond
timestamps), which both ``chrome://tracing`` and Perfetto open
directly — that is what ``repro trace-export`` emits.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, TextIO, Tuple

from ..resilience import TraceFormatError, fsync_handle, promote
from .log import get_logger

__all__ = [
    "SPANS_SCHEMA",
    "Span",
    "Tracer",
    "tracer",
    "SpanJsonlSink",
    "read_spans",
    "chrome_trace_events",
]

#: Schema identifier of the spans JSONL stream.
SPANS_SCHEMA = "repro-spans-v1"

#: Finished spans the tracer retains in memory (ring buffer).
DEFAULT_TAIL_CAPACITY = 8192


class Span:
    """One named time range on the trace timeline.

    ``span_id`` / ``parent_id`` encode the hierarchy explicitly (no
    reliance on emission order); ``start_ns`` is monotonic
    (``perf_counter_ns``), comparable within a process only.  ``seq``
    is the tracer-assigned completion number, used to slice per-seed
    tails out of a worker's ring buffer.
    """

    __slots__ = ("span_id", "parent_id", "name", "kind", "start_ns",
                 "duration_ns", "attrs", "seq")

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 kind: str, start_ns: int,
                 attrs: Optional[dict] = None) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.start_ns = start_ns
        self.duration_ns = 0
        self.attrs = attrs
        self.seq = -1

    def to_dict(self) -> dict:
        payload = {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start_ns": self.start_ns,
            "dur_ns": self.duration_ns,
        }
        if self.attrs:
            payload["attrs"] = self.attrs
        return payload


def _env_vetoed(value: Optional[str]) -> bool:
    return (value or "").strip().lower() in ("0", "false", "no", "off")


class Tracer:
    """The process-wide span recorder.

    Single-threaded by design (both engines are): the open-span stack
    *is* the current parent chain, so ``begin``/``end`` pairs nest
    without any caller-side bookkeeping.  ``active`` is a plain
    attribute so the hot-path guard stays one attribute read — call
    sites check ``obs.state.enabled and tracer.active``.
    """

    def __init__(self, capacity: int = DEFAULT_TAIL_CAPACITY) -> None:
        self.active = not _env_vetoed(os.environ.get("REPRO_SPANS"))
        self._next_id = 1
        self._stack: List[Span] = []
        self._tail: Deque[Span] = deque(maxlen=capacity)
        self._sinks: List[Callable[[Span], None]] = []
        self._warned_sinks: set = set()
        #: Completion counter; per-seed payloads slice the tail on it.
        self.seq = 0

    # -- recording ---------------------------------------------------------

    def begin(self, name: str, kind: str,
              attrs: Optional[dict] = None) -> Span:
        """Open a span as a child of the innermost open span."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(self._next_id, parent, name, kind,
                    time.perf_counter_ns(), attrs)
        self._next_id += 1
        self._stack.append(span)
        return span

    def end(self, span: Span) -> Span:
        """Close ``span``, stamp its duration, and emit it."""
        span.duration_ns = time.perf_counter_ns() - span.start_ns
        # Normal callers close in LIFO order; tolerate a missed end()
        # higher up (an engine exception path) by unwinding to the span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self._emit(span)
        return span

    def complete(self, name: str, kind: str, start_ns: int, duration_ns: int,
                 attrs: Optional[dict] = None) -> Span:
        """Record an already-finished leaf span (kernel attribution:
        the timing wrapper only knows the duration after the call)."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(self._next_id, parent, name, kind, start_ns, attrs)
        self._next_id += 1
        span.duration_ns = duration_ns
        self._emit(span)
        return span

    def next_id(self) -> int:
        """Allocate a span id without opening a span.

        Used when grafting externally-recorded spans (a worker's span
        tail shipped home in a result payload) onto this tracer's tree:
        the grafted spans need ids that cannot collide with locally
        recorded ones.
        """
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def adopt(self, span: Span) -> Span:
        """Emit an externally-constructed, already-finished span.

        The span must carry ids from :meth:`next_id`; it gets a
        completion number and flows to the tail and sinks like any
        locally recorded span.
        """
        self._emit(span)
        return span

    def _emit(self, span: Span) -> None:
        self.seq += 1
        span.seq = self.seq
        self._tail.append(span)
        for sink in list(self._sinks):
            try:
                sink(span)
            except Exception as exc:
                # Same contract as the hardened obs hooks: a broken sink
                # is warned about once and removed; it never takes the
                # simulation down with it.
                if id(sink) not in self._warned_sinks:
                    self._warned_sinks.add(id(sink))
                    get_logger("repro.obs.spans").warning(
                        "span_sink.quarantined",
                        f"span sink {sink!r} raised "
                        f"{type(exc).__name__}: {exc}; removing it",
                        sink=repr(sink),
                        error=f"{type(exc).__name__}: {exc}",
                    )
                self.remove_sink(sink)

    # -- sinks & reading ---------------------------------------------------

    def add_sink(self, sink: Callable[[Span], None]) -> Callable[[Span], None]:
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Callable[[Span], None]) -> None:
        while sink in self._sinks:
            self._sinks.remove(sink)

    def tail(self, since_seq: int = 0) -> List[Span]:
        """Finished spans with completion number > ``since_seq`` that
        are still in the ring buffer (oldest first)."""
        return [s for s in self._tail if s.seq > since_seq]

    def reset(self) -> None:
        """Drop all state (test isolation); keeps ``active`` as is."""
        self._next_id = 1
        self._stack.clear()
        self._tail.clear()
        self._sinks.clear()
        self._warned_sinks.clear()
        self.seq = 0


#: The process-wide tracer all span instrumentation records into.
tracer = Tracer()


class SpanJsonlSink:
    """Streaming ``repro-spans-v1`` JSONL writer.

    Mirrors :class:`~repro.obs.sink.JsonlSink`: eager self-describing
    header, stream into ``<path>.partial``, fsync + atomic rename on
    :meth:`close` — a finished spans file is always whole.
    """

    def __init__(self, path: str, meta: Optional[dict] = None) -> None:
        self.path = path
        self.meta = meta
        self._partial_path = path + ".partial"
        self._handle: Optional[TextIO] = open(
            self._partial_path, "w", encoding="utf-8"
        )
        self._write_line({"format": SPANS_SCHEMA, "meta": meta})

    def _write_line(self, payload: dict) -> None:
        if self._handle is None:
            raise ValueError(f"span sink {self.path!r} is closed")
        self._handle.write(json.dumps(payload))
        self._handle.write("\n")

    def write(self, span: Span) -> None:
        self._write_line(span.to_dict())

    def close(self) -> None:
        if self._handle is not None:
            fsync_handle(self._handle)
            self._handle.close()
            self._handle = None
            promote(self._partial_path, self.path)

    def __enter__(self) -> "SpanJsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_spans(path: str) -> Tuple[Optional[dict], List[dict]]:
    """Read a spans JSONL stream: ``(meta, span dicts)``.

    Raises :class:`ValueError` on a missing or foreign header and
    :class:`~repro.resilience.errors.TraceFormatError` (with path and
    1-based line number) on corrupted payload lines — the same loud
    failure contract as the event-stream reader.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            header_line = handle.readline()
        except UnicodeDecodeError:
            raise ValueError(f"{path!r} is not a {SPANS_SCHEMA} stream")
        try:
            header = json.loads(header_line) if header_line.strip() else None
        except json.JSONDecodeError:
            header = None
        if not isinstance(header, dict) or header.get("format") != SPANS_SCHEMA:
            raise ValueError(f"{path!r} is not a {SPANS_SCHEMA} stream")
        spans: List[dict] = []
        line_no = 1
        for line in handle:
            line_no += 1
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"{path}: undecodable span line {line_no}: {exc.msg} "
                    f"(stream truncated or corrupted)",
                    path=path,
                    line=line_no,
                    offset=exc.pos,
                ) from exc
            if not isinstance(payload, dict) or "id" not in payload:
                raise TraceFormatError(
                    f"{path}: span line {line_no} is not a span object",
                    path=path,
                    line=line_no,
                )
            spans.append(payload)
    return header.get("meta"), spans


def chrome_trace_events(
    spans: List[dict],
    pid: int = 0,
    process_name: Optional[str] = None,
) -> List[dict]:
    """Serialized spans -> Chrome trace-event ``traceEvents`` entries.

    Every span becomes one complete event (``ph: "X"``) with
    microsecond timestamps; ``pid`` groups spans from one process onto
    one Perfetto track group (sweep exports use the worker pid).  Span
    and parent ids travel in ``args`` so the hierarchy survives even
    though the viewer nests by time containment.
    """
    events: List[dict] = []
    if process_name is not None:
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        })
    for span in spans:
        args: Dict[str, object] = {
            "span_id": span["id"],
            "parent_id": span["parent"],
        }
        args.update(span.get("attrs") or {})
        events.append({
            "name": span["name"],
            "cat": span["kind"],
            "ph": "X",
            "ts": span["start_ns"] / 1000.0,
            "dur": span["dur_ns"] / 1000.0,
            "pid": pid,
            "tid": 0,
            "args": args,
        })
    return events
