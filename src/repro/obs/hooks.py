"""Profiling hook registration and dispatch.

Three hook points, each a plain list of callables dispatched in
registration order:

``on_round(fn)``
    ``fn(event: RoundEvent)`` after every instrumented engine round.
``on_kernel(fn)``
    ``fn(name: str, seconds: float, backend: str)`` after every
    instrumented geometry-kernel call.
``on_run_end(fn)``
    ``fn(summary: dict)`` when an instrumented run returns its result;
    the summary carries engine kind, verdict, rounds and seed.

Registration returns the callable, so the functions double as
decorators.  Dispatch happens only from the ``record_*`` entry points in
:mod:`repro.obs`, which the call sites guard behind the enabled flag —
a registered hook on a disabled process never fires and costs nothing.

A hook that raises propagates: observability must never *silently*
corrupt a profiling session, and the engines treat hook exceptions
exactly like observer exceptions (they surface out of ``step``).
"""

from __future__ import annotations

from typing import Callable, List

from .events import RoundEvent

__all__ = [
    "on_round",
    "on_kernel",
    "on_run_end",
    "remove_hook",
    "clear_hooks",
    "emit_round",
    "emit_kernel",
    "emit_run_end",
]

RoundHook = Callable[[RoundEvent], None]
KernelHook = Callable[[str, float, str], None]
RunEndHook = Callable[[dict], None]

_round_hooks: List[RoundHook] = []
_kernel_hooks: List[KernelHook] = []
_run_end_hooks: List[RunEndHook] = []


def on_round(fn: RoundHook) -> RoundHook:
    """Register a per-round hook (usable as a decorator)."""
    _round_hooks.append(fn)
    return fn


def on_kernel(fn: KernelHook) -> KernelHook:
    """Register a per-kernel-call hook (usable as a decorator)."""
    _kernel_hooks.append(fn)
    return fn


def on_run_end(fn: RunEndHook) -> RunEndHook:
    """Register a run-end hook (usable as a decorator)."""
    _run_end_hooks.append(fn)
    return fn


def remove_hook(fn: Callable) -> None:
    """Unregister ``fn`` from every hook point it appears in."""
    for hooks in (_round_hooks, _kernel_hooks, _run_end_hooks):
        while fn in hooks:
            hooks.remove(fn)


def clear_hooks() -> None:
    """Unregister everything (test isolation)."""
    _round_hooks.clear()
    _kernel_hooks.clear()
    _run_end_hooks.clear()


def emit_round(event: RoundEvent) -> None:
    for fn in _round_hooks:
        fn(event)


def emit_kernel(name: str, seconds: float, backend: str) -> None:
    for fn in _kernel_hooks:
        fn(name, seconds, backend)


def emit_run_end(summary: dict) -> None:
    for fn in _run_end_hooks:
        fn(summary)
