"""Profiling hook registration and dispatch.

Three hook points, each a plain list of callables dispatched in
registration order:

``on_round(fn)``
    ``fn(event: RoundEvent)`` after every instrumented engine round.
``on_kernel(fn)``
    ``fn(name: str, seconds: float, backend: str)`` after every
    instrumented geometry-kernel call.
``on_run_end(fn)``
    ``fn(summary: dict)`` when an instrumented run returns its result;
    the summary carries engine kind, verdict, rounds and seed.

Registration returns the callable, so the functions double as
decorators.  Dispatch happens only from the ``record_*`` entry points in
:mod:`repro.obs`, which the call sites guard behind the enabled flag —
a registered hook on a disabled process never fires and costs nothing.

A hook that raises is **quarantined**, not propagated: instrumentation
is derived state, so a broken profiling callback must never crash the
simulation mid-round.  The first failure of a hook emits one structured
``hook.quarantined`` warning (:mod:`repro.obs.log`) naming the hook and
the exception, and the hook is removed from every hook point — it will
not fire (or warn) again.  The warning keeps the failure *visible* (a
silently corrupted profiling session would be worse than a crash); the
removal keeps one bad hook from warning once per round for the rest of
a long sweep.  ``KeyboardInterrupt`` and other ``BaseException``s still
propagate.
"""

from __future__ import annotations

from typing import Callable, List

from .events import RoundEvent
from .log import get_logger

__all__ = [
    "on_round",
    "on_kernel",
    "on_run_end",
    "remove_hook",
    "clear_hooks",
    "emit_round",
    "emit_kernel",
    "emit_run_end",
]

RoundHook = Callable[[RoundEvent], None]
KernelHook = Callable[[str, float, str], None]
RunEndHook = Callable[[dict], None]

_round_hooks: List[RoundHook] = []
_kernel_hooks: List[KernelHook] = []
_run_end_hooks: List[RunEndHook] = []


def on_round(fn: RoundHook) -> RoundHook:
    """Register a per-round hook (usable as a decorator)."""
    _round_hooks.append(fn)
    return fn


def on_kernel(fn: KernelHook) -> KernelHook:
    """Register a per-kernel-call hook (usable as a decorator)."""
    _kernel_hooks.append(fn)
    return fn


def on_run_end(fn: RunEndHook) -> RunEndHook:
    """Register a run-end hook (usable as a decorator)."""
    _run_end_hooks.append(fn)
    return fn


def remove_hook(fn: Callable) -> None:
    """Unregister ``fn`` from every hook point it appears in."""
    for hooks in (_round_hooks, _kernel_hooks, _run_end_hooks):
        while fn in hooks:
            hooks.remove(fn)


def clear_hooks() -> None:
    """Unregister everything (test isolation)."""
    _round_hooks.clear()
    _kernel_hooks.clear()
    _run_end_hooks.clear()
    _quarantined.clear()


#: ids of hooks that already failed (warn exactly once per hook even if
#: the same callable is re-registered at several hook points).
_quarantined: set = set()

_log = get_logger("repro.obs.hooks")


def _dispatch(hooks: List[Callable], hook_point: str, *args) -> None:
    """Call every hook, quarantining any that raises.

    Iterates over a copy so removal during dispatch is safe; the other
    hooks of the round still fire after an offender is dropped.
    """
    for fn in list(hooks):
        try:
            fn(*args)
        except Exception as exc:
            if id(fn) not in _quarantined:
                _quarantined.add(id(fn))
                _log.warning(
                    "hook.quarantined",
                    f"{hook_point} hook {fn!r} raised "
                    f"{type(exc).__name__}: {exc}; removing it",
                    hook_point=hook_point,
                    hook=repr(fn),
                    error=f"{type(exc).__name__}: {exc}",
                )
            remove_hook(fn)


def emit_round(event: RoundEvent) -> None:
    _dispatch(_round_hooks, "on_round", event)


def emit_kernel(name: str, seconds: float, backend: str) -> None:
    _dispatch(_kernel_hooks, "on_kernel", name, seconds, backend)


def emit_run_end(summary: dict) -> None:
    _dispatch(_run_end_hooks, "on_run_end", summary)
