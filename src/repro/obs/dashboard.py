"""Live terminal dashboard for ``repro sweep --obs``.

Renders the running :class:`~repro.obs.aggregate.Aggregator` as a small
multi-line block: seeds done/resumed/retried/timed-out, round
throughput, ETA, the per-class round distribution and the verdict
tally.  On a TTY the block repaints in place (cursor-up + clear-line
ANSI codes, throttled to a few frames per second); on anything else —
CI logs, a pipe into ``tee`` — it degrades to plain one-line progress
prints at a gentle interval, so redirected output stays readable
instead of filling with control codes.

The dashboard only *reads* the aggregator; all accounting lives in
:mod:`repro.obs.aggregate`.  Every render goes through the same
:meth:`SweepDashboard.lines` formatter, so the final summary printed
after the sweep is exactly the last frame.
"""

from __future__ import annotations

import sys
import time
from typing import List, Optional, TextIO

from .aggregate import Aggregator

__all__ = ["SweepDashboard", "format_eta"]


def format_eta(seconds: Optional[float]) -> str:
    """``1:23:45`` / ``2:05`` / ``--`` humanized remaining time."""
    if seconds is None:
        return "--"
    seconds = int(seconds)
    hours, rest = divmod(seconds, 3600)
    minutes, secs = divmod(rest, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes}:{secs:02d}"


class SweepDashboard:
    """Renders an :class:`Aggregator` to a stream, live when possible.

    ``live=None`` (the default) auto-detects: in-place repaint on a TTY,
    plain throttled lines otherwise.  ``update()`` is cheap to call per
    completed seed — renders are throttled by ``refresh_s`` (TTY) /
    ``plain_interval_s`` (non-TTY) — and ``finish()`` always renders the
    final state.
    """

    def __init__(
        self,
        aggregator: Aggregator,
        stream: Optional[TextIO] = None,
        live: Optional[bool] = None,
        refresh_s: float = 0.2,
        plain_interval_s: float = 2.0,
    ) -> None:
        self.aggregator = aggregator
        self.stream = stream if stream is not None else sys.stdout
        if live is None:
            live = bool(getattr(self.stream, "isatty", lambda: False)())
        self.live = live
        self.refresh_s = refresh_s
        self.plain_interval_s = plain_interval_s
        self._last_render = 0.0
        self._painted_lines = 0

    # -- formatting --------------------------------------------------------

    def lines(self) -> List[str]:
        agg = self.aggregator
        seeds = (
            f"seeds   : {agg.done}/{agg.total_seeds}"
            f"  (resumed {agg.resumed}, retried {agg.retries}, "
            f"timed out {agg.timeouts})"
        )
        rounds = (
            f"rounds  : {agg.rounds}  ({agg.rounds_per_second():.1f}/s)"
            f"  ETA {format_eta(agg.eta_seconds())}"
        )
        classes = " ".join(
            f"{name}:{count}" for name, count in agg.class_rounds().items()
        )
        verdicts = " ".join(
            f"{name}:{count}"
            for name, count in sorted(agg.verdicts.items())
        )
        detail = (
            f"classes : {classes or '-'}   verdicts: {verdicts or '-'}"
        )
        workers = (
            f"workers : {len(agg.workers)} process(es), "
            f"{agg.span_count} spans collected"
        )
        return [seeds, rounds, detail, workers]

    # -- painting ----------------------------------------------------------

    def _paint(self) -> None:
        lines = self.lines()
        if self.live and self._painted_lines:
            # Repaint in place: climb back over the previous frame.
            self.stream.write(f"\x1b[{self._painted_lines}F")
        if self.live:
            for line in lines:
                self.stream.write(f"\x1b[2K{line}\n")
            self._painted_lines = len(lines)
        else:
            agg = self.aggregator
            self.stream.write(
                f"sweep progress: {agg.done}/{agg.total_seeds} seeds, "
                f"{agg.rounds} rounds ({agg.rounds_per_second():.1f}/s), "
                f"retried {agg.retries}, timed out {agg.timeouts}, "
                f"ETA {format_eta(agg.eta_seconds())}\n"
            )
        self.stream.flush()

    def update(self, force: bool = False) -> None:
        """Render if the throttle interval elapsed (or ``force``)."""
        interval = self.refresh_s if self.live else self.plain_interval_s
        now = time.monotonic()
        if not force and now - self._last_render < interval:
            return
        self._last_render = now
        self._paint()

    def finish(self) -> None:
        """Render the terminal frame (the post-sweep summary block)."""
        if self.live:
            self.update(force=True)
        else:
            for line in self.lines():
                self.stream.write(line + "\n")
            self.stream.flush()
