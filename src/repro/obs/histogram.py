"""Fixed log-spaced latency histograms — mergeable across processes.

Running aggregates (:class:`~repro.obs.metrics.Stat`) answer "how much,
how often, how extreme"; they cannot answer "what does the distribution
look like", which is the question sweep-scale telemetry actually asks
(is the round latency bimodal? did one worker's kernels fall off a
cliff?).  A :class:`Histogram` records each observation into one of a
*fixed* set of log-spaced buckets, so

* recording is two arithmetic operations and one list increment —
  cheap enough for per-round and per-kernel-call paths;
* two histograms recorded in different worker processes merge by
  element-wise addition of their counts, with no resolution loss and no
  coordination, because every process uses the *same* boundaries.

The boundaries span 1 microsecond to 1000 seconds at four buckets per
decade (36 buckets plus an underflow and an overflow bucket), which
covers everything from a single NumPy kernel call to a pathological
multi-minute round.  The boundaries are part of the serialized form, so
a merge across *versions* fails loudly instead of silently misbinning.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

__all__ = ["Histogram", "DEFAULT_BOUNDS", "latency_bounds"]


def latency_bounds(
    lo: float = 1e-6, hi: float = 1e3, per_decade: int = 4
) -> List[float]:
    """Log-spaced bucket upper bounds from ``lo`` to ``hi`` inclusive.

    Computed from integer decade exponents (not cumulative
    multiplication), so every process derives bit-identical boundaries —
    the precondition for merge-by-addition.
    """
    decades = int(round(math.log10(hi / lo)))
    return [
        lo * 10.0 ** (i / per_decade) for i in range(decades * per_decade + 1)
    ]


#: The shared latency boundaries (seconds) every histogram uses unless
#: a caller supplies its own.
DEFAULT_BOUNDS = latency_bounds()


class Histogram:
    """Counts of observations per fixed log-spaced bucket.

    ``counts[0]`` is the underflow bucket (values <= ``bounds[0]``),
    ``counts[i]`` counts values in ``(bounds[i-1], bounds[i]]`` and
    ``counts[-1]`` is the overflow bucket (values > ``bounds[-1]``).
    """

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        self.bounds: List[float] = list(bounds) if bounds is not None else DEFAULT_BOUNDS
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def add(self, value: float) -> None:
        """Record one observation (seconds)."""
        self.counts[self._index(value)] += 1
        self.count += 1
        self.total += value

    def _index(self, value: float) -> int:
        bounds = self.bounds
        if value <= bounds[0]:
            return 0
        if value > bounds[-1]:
            return len(bounds)
        # Log-spaced bounds admit a direct O(1) index, but a binary
        # search is branch-identical across platforms and immune to
        # float-log edge cases at the boundaries.
        lo, hi = 0, len(bounds) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Approximate quantile: the upper bound of the bucket holding
        the ``q``-th observation (``None`` when empty)."""
        if not self.count:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (element-wise addition)."""
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total

    def to_dict(self) -> dict:
        return {
            "bounds": self.bounds,
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        hist = cls(data["bounds"])
        counts = list(data["counts"])
        if len(counts) != len(hist.counts):
            raise ValueError("histogram counts do not match its bounds")
        hist.counts = counts
        hist.count = data["count"]
        hist.total = data["total"]
        return hist

    def delta(self, earlier: "Histogram") -> "Histogram":
        """The observations recorded since ``earlier`` (a snapshot of
        this histogram taken before some window of work)."""
        if self.bounds != earlier.bounds:
            raise ValueError("cannot diff histograms with different bounds")
        out = Histogram(self.bounds)
        out.counts = [a - b for a, b in zip(self.counts, earlier.counts)]
        out.count = self.count - earlier.count
        out.total = self.total - earlier.total
        return out
