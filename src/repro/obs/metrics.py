"""Process-wide counters and timers for the observability layer.

One :class:`Metrics` registry per process (:data:`metrics`), holding

* **counters** — monotonically increasing integers (`inc`), e.g.
  ``rounds.class.A`` or ``runs.verdict.gathered``;
* **stats** — running aggregates of observed values (`observe`):
  count / total / min / max, e.g. ``weber.iterations`` or
  ``runner.run_seconds``;
* **kernel timers** — per ``(kernel, backend)`` call counts and summed
  wall time (`record_kernel`), fed by the instrumented geometry kernels;
* **histograms** — fixed log-spaced latency distributions (`observe_hist`),
  e.g. ``round_seconds`` and ``kernel_seconds``.  Because every process
  bins into the same boundaries (:mod:`repro.obs.histogram`), the
  sweep-level aggregator merges worker histograms by plain addition.

Everything is plain dictionaries updated in-line: recording one value is
a couple of dict operations, cheap enough to sit inside instrumented
kernels.  The registry is process-local by design — worker processes of
a parallel sweep each accumulate their own view, and the runner folds
what matters (per-worker throughput) into result-independent summaries.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .histogram import Histogram

__all__ = ["Stat", "Metrics", "metrics"]


class Stat:
    """Running aggregate of a stream of observations."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class Metrics:
    """A registry of counters, stats, and kernel timers."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._stats: Dict[str, Stat] = {}
        self._kernels: Dict[Tuple[str, str], Stat] = {}
        self._hists: Dict[str, Histogram] = {}

    # -- recording -----------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        """Bump counter ``name`` by ``value``."""
        self._counters[name] = self._counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into the running aggregate ``name``."""
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = Stat()
        stat.add(value)

    def record_kernel(self, name: str, seconds: float, backend: str) -> None:
        """Account one call of kernel ``name`` on ``backend``."""
        key = (name, backend)
        stat = self._kernels.get(key)
        if stat is None:
            stat = self._kernels[key] = Stat()
        stat.add(seconds)

    def observe_hist(self, name: str, value: float) -> None:
        """Bin ``value`` into the fixed log-spaced histogram ``name``."""
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = Histogram()
        hist.add(value)

    # -- reading -------------------------------------------------------------

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        """Copy of all counters (stable for iteration while recording)."""
        return dict(self._counters)

    def stats(self) -> Dict[str, Stat]:
        return dict(self._stats)

    def kernels(self) -> List[dict]:
        """Kernel timer rows sorted by total time, descending."""
        rows = [
            {
                "kernel": name,
                "backend": backend,
                "calls": stat.count,
                "total_s": stat.total,
                "mean_s": stat.mean,
            }
            for (name, backend), stat in self._kernels.items()
        ]
        rows.sort(key=lambda row: row["total_s"], reverse=True)
        return rows

    def hists(self) -> Dict[str, Histogram]:
        return dict(self._hists)

    def snapshot(self) -> dict:
        """One JSON-ready dict of everything recorded so far."""
        return {
            "counters": dict(self._counters),
            "stats": {name: s.to_dict() for name, s in self._stats.items()},
            "kernels": self.kernels(),
            "hists": {name: h.to_dict() for name, h in self._hists.items()},
        }

    def reset(self) -> None:
        """Drop everything (profiling sessions start from zero)."""
        self._counters.clear()
        self._stats.clear()
        self._kernels.clear()
        self._hists.clear()


#: The process-wide registry all instrumentation records into.
metrics = Metrics()
