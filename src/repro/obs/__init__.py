"""Observability: structured events, counters/timers, profiling hooks.

A single process-wide toggle gates the whole subsystem.  When **off**
(the default) nothing is allocated, recorded or dispatched: call sites
guard on one attribute read (``state.enabled``), so the simulation hot
loop pays a few nanoseconds per round and the kernels one branch per
call.  When **on** (``REPRO_OBS=1`` in the environment, ``--obs`` on the
CLI, or :func:`enable` / :func:`observability` in code) three signal
streams light up:

events
    Both engines emit one :class:`~repro.obs.events.RoundEvent` per
    round/tick — the Section IV configuration class, multiplicity and
    spread, the elected target and whether it was a safe point, and the
    activated / crashed / moved sets.  Events flow to the registered
    ``on_round`` hooks and to per-class round counters in
    :data:`metrics`.

metrics
    A process-wide registry of counters and running aggregates
    (:mod:`repro.obs.metrics`).  The geometry kernels record per-kernel
    call counts and wall time with the active backend label, the Weber
    solver records Weiszfeld iteration counts and convergence residuals,
    and the experiment runner records per-worker throughput.

hooks
    :func:`~repro.obs.hooks.on_round` / ``on_kernel`` / ``on_run_end``
    registration (:mod:`repro.obs.hooks`), plus a JSONL sink
    (:class:`~repro.obs.sink.JsonlSink`) whose header carries the same
    meta block as a ``repro-trace-v2`` archive, so an event stream can
    be joined to its trace by seed and scenario.

Layering: this package imports nothing from the rest of ``repro``, so
the engines, kernels and runner can all import it without cycles.
``RoundEvent.from_record`` defers its ``repro.core`` / ``repro.sim``
imports to call time for the same reason.

The toggle is exported to ``REPRO_OBS`` in the environment on
:func:`enable`, mirroring the kernel-backend pinning of the experiment
runner: worker subprocesses resolve the flag at import time, so a sweep
profiled with ``--workers N`` instruments every worker.

Instrumentation never changes results: events and metrics are derived
from values the simulation already computed, and the CI ``obs`` job
replays the committed corpus with ``REPRO_OBS=1`` to prove instrumented
executions stay bit-identical to uninstrumented ones.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from .events import OBS_SCHEMA, RoundEvent
from .hooks import (
    clear_hooks,
    emit_kernel,
    emit_round,
    emit_run_end,
    on_kernel,
    on_round,
    on_run_end,
    remove_hook,
)
from .metrics import Metrics, metrics
from .sink import Collector, JsonlSink, read_events

__all__ = [
    "OBS_SCHEMA",
    "RoundEvent",
    "Metrics",
    "metrics",
    "Collector",
    "JsonlSink",
    "read_events",
    "on_round",
    "on_kernel",
    "on_run_end",
    "remove_hook",
    "clear_hooks",
    "emit_round",
    "emit_kernel",
    "emit_run_end",
    "state",
    "is_enabled",
    "enable",
    "disable",
    "observability",
    "record_round",
    "record_kernel",
    "record_run_end",
]


class _ObsState:
    """The toggle, as one attribute read on a slotted singleton.

    Call sites in per-round and per-kernel-call paths check
    ``state.enabled`` directly rather than calling :func:`is_enabled`:
    an attribute read is the cheapest guard Python offers, which is what
    makes the disabled path genuinely free.
    """

    __slots__ = ("enabled",)

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled


def _env_truthy(value: Optional[str]) -> bool:
    return (value or "").strip().lower() in ("1", "true", "yes", "on")


#: The process-wide toggle; seeded from ``REPRO_OBS`` at import time.
state = _ObsState(_env_truthy(os.environ.get("REPRO_OBS")))


def is_enabled() -> bool:
    """Is the observability layer currently recording?"""
    return state.enabled


def enable() -> None:
    """Turn observability on, process-wide.

    Also exports ``REPRO_OBS=1`` so worker subprocesses started after
    this call (the experiment runner's pool, the differential checker's
    recorders) come up instrumented too.
    """
    state.enabled = True
    os.environ["REPRO_OBS"] = "1"


def disable() -> None:
    """Turn observability off and clear the environment export."""
    state.enabled = False
    os.environ.pop("REPRO_OBS", None)


@contextmanager
def observability(
    jsonl: Optional[str] = None, meta: Optional[dict] = None
) -> Iterator[Metrics]:
    """Enable observability for a block, optionally sinking to JSONL.

    Yields the process-wide :data:`metrics` registry.  With ``jsonl``
    a :class:`JsonlSink` is opened at that path, registered for round
    events and run-end summaries, and closed on exit; ``meta`` (a
    ``repro-trace-v2`` meta dict) becomes the sink's join header.  The
    previous toggle value is restored on exit.
    """
    sink = JsonlSink(jsonl, meta=meta) if jsonl else None
    if sink is not None:
        on_round(sink.write)
        on_run_end(sink.write_run_end)
    previous = state.enabled
    enable()
    try:
        yield metrics
    finally:
        if not previous:
            disable()
        if sink is not None:
            remove_hook(sink.write)
            remove_hook(sink.write_run_end)
            sink.close()


# -- recording entry points (callers guard on ``state.enabled``) -------------


def record_round(event: RoundEvent) -> None:
    """Account a round event in the metrics and dispatch round hooks."""
    metrics.inc("rounds.total")
    metrics.inc(f"rounds.class.{event.config_class}")
    if event.crashed:
        metrics.inc("rounds.crashes", len(event.crashed))
    emit_round(event)


def record_kernel(name: str, seconds: float, backend: str) -> None:
    """Account one kernel call and dispatch kernel hooks."""
    metrics.record_kernel(name, seconds, backend)
    emit_kernel(name, seconds, backend)


def record_run_end(summary: dict) -> None:
    """Account a finished run and dispatch run-end hooks."""
    metrics.inc("runs.total")
    verdict = summary.get("verdict")
    if verdict:
        metrics.inc(f"runs.verdict.{verdict}")
    emit_run_end(summary)
