"""Observability: structured events, counters/timers, profiling hooks.

A single process-wide toggle gates the whole subsystem.  When **off**
(the default) nothing is allocated, recorded or dispatched: call sites
guard on one attribute read (``state.enabled``), so the simulation hot
loop pays a few nanoseconds per round and the kernels one branch per
call.  When **on** (``REPRO_OBS=1`` in the environment, ``--obs`` on the
CLI, or :func:`enable` / :func:`observability` in code) three signal
streams light up:

events
    Both engines emit one :class:`~repro.obs.events.RoundEvent` per
    round/tick — the Section IV configuration class, multiplicity and
    spread, the elected target and whether it was a safe point, and the
    activated / crashed / moved sets.  Events flow to the registered
    ``on_round`` hooks and to per-class round counters in
    :data:`metrics`.

metrics
    A process-wide registry of counters and running aggregates
    (:mod:`repro.obs.metrics`).  The geometry kernels record per-kernel
    call counts and wall time with the active backend label, the Weber
    solver records Weiszfeld iteration counts and convergence residuals,
    and the experiment runner records per-worker throughput.

hooks
    :func:`~repro.obs.hooks.on_round` / ``on_kernel`` / ``on_run_end``
    registration (:mod:`repro.obs.hooks`), plus a JSONL sink
    (:class:`~repro.obs.sink.JsonlSink`) whose header carries the same
    meta block as a ``repro-trace-v2`` archive, so an event stream can
    be joined to its trace by seed and scenario.

spans
    A span tracer (:mod:`repro.obs.spans`): run -> round -> phase
    (look/compute/move) -> kernel time ranges with explicit
    parent/child ids and monotonic timestamps, kept in a bounded ring
    and optionally streamed as ``repro-spans-v1`` JSONL.  ``repro
    trace-export`` converts any of it to the Chrome trace-event format
    for Perfetto.  Tracing rides the same enabled guard (veto with
    ``REPRO_SPANS=0``).

For sweep-scale runs, :mod:`repro.obs.aggregate` ships each worker's
registry snapshot and span tail home inside the per-seed result payload
and merges them — counters, stats, kernel timers and the fixed-bucket
histograms of :mod:`repro.obs.histogram` — into one ``sweep-metrics``
document; :mod:`repro.obs.dashboard` renders the merge live.

Layering: this package imports nothing from the rest of ``repro``, so
the engines, kernels and runner can all import it without cycles.
``RoundEvent.from_record`` defers its ``repro.core`` / ``repro.sim``
imports to call time for the same reason.

The toggle is exported to ``REPRO_OBS`` in the environment on
:func:`enable`, mirroring the kernel-backend pinning of the experiment
runner: worker subprocesses resolve the flag at import time, so a sweep
profiled with ``--workers N`` instruments every worker.

Instrumentation never changes results: events and metrics are derived
from values the simulation already computed, and the CI ``obs`` job
replays the committed corpus with ``REPRO_OBS=1`` to prove instrumented
executions stay bit-identical to uninstrumented ones.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from .aggregate import (
    SWEEP_METRICS_SCHEMA,
    Aggregator,
    write_sweep_metrics,
)
from .dashboard import SweepDashboard
from .events import OBS_SCHEMA, RoundEvent
from .histogram import Histogram
from .hooks import (
    clear_hooks,
    emit_kernel,
    emit_round,
    emit_run_end,
    on_kernel,
    on_round,
    on_run_end,
    remove_hook,
)
from .log import (
    LOG_SCHEMA,
    LogJsonlSink,
    StructuredLogger,
    get_logger,
    read_log,
    summarize_log,
)
from .log import hub as log_hub
from .metrics import Metrics, metrics
from .sink import Collector, JsonlSink, read_events
from .spans import (
    SPANS_SCHEMA,
    Span,
    SpanJsonlSink,
    Tracer,
    chrome_trace_events,
    read_spans,
    tracer,
)

__all__ = [
    "OBS_SCHEMA",
    "SPANS_SCHEMA",
    "SWEEP_METRICS_SCHEMA",
    "LOG_SCHEMA",
    "StructuredLogger",
    "LogJsonlSink",
    "get_logger",
    "log_hub",
    "read_log",
    "summarize_log",
    "Aggregator",
    "SweepDashboard",
    "write_sweep_metrics",
    "RoundEvent",
    "Metrics",
    "metrics",
    "Histogram",
    "Collector",
    "JsonlSink",
    "read_events",
    "Span",
    "Tracer",
    "tracer",
    "SpanJsonlSink",
    "read_spans",
    "chrome_trace_events",
    "on_round",
    "on_kernel",
    "on_run_end",
    "remove_hook",
    "clear_hooks",
    "emit_round",
    "emit_kernel",
    "emit_run_end",
    "state",
    "is_enabled",
    "enable",
    "disable",
    "observability",
    "record_round",
    "record_kernel",
    "record_run_end",
]


class _ObsState:
    """The toggle, as one attribute read on a slotted singleton.

    Call sites in per-round and per-kernel-call paths check
    ``state.enabled`` directly rather than calling :func:`is_enabled`:
    an attribute read is the cheapest guard Python offers, which is what
    makes the disabled path genuinely free.
    """

    __slots__ = ("enabled",)

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled


def _env_truthy(value: Optional[str]) -> bool:
    return (value or "").strip().lower() in ("1", "true", "yes", "on")


#: The process-wide toggle; seeded from ``REPRO_OBS`` at import time.
state = _ObsState(_env_truthy(os.environ.get("REPRO_OBS")))


def is_enabled() -> bool:
    """Is the observability layer currently recording?"""
    return state.enabled


def enable() -> None:
    """Turn observability on, process-wide.

    Also exports ``REPRO_OBS=1`` so worker subprocesses started after
    this call (the experiment runner's pool, the differential checker's
    recorders) come up instrumented too.
    """
    state.enabled = True
    os.environ["REPRO_OBS"] = "1"


def disable() -> None:
    """Turn observability off and clear the environment export."""
    state.enabled = False
    os.environ.pop("REPRO_OBS", None)


@contextmanager
def observability(
    jsonl: Optional[str] = None,
    meta: Optional[dict] = None,
    spans_jsonl: Optional[str] = None,
) -> Iterator[Metrics]:
    """Enable observability for a block, optionally sinking to JSONL.

    Yields the process-wide :data:`metrics` registry.  With ``jsonl``
    a :class:`JsonlSink` is opened at that path, registered for round
    events and run-end summaries, and closed on exit; with
    ``spans_jsonl`` a :class:`SpanJsonlSink` streams every finished
    span the same way.  ``meta`` (a ``repro-trace-v2`` meta dict)
    becomes the sinks' join header.  The previous toggle value is
    restored on exit.
    """
    sink = JsonlSink(jsonl, meta=meta) if jsonl else None
    if sink is not None:
        on_round(sink.write)
        on_run_end(sink.write_run_end)
    span_sink = SpanJsonlSink(spans_jsonl, meta=meta) if spans_jsonl else None
    if span_sink is not None:
        tracer.add_sink(span_sink.write)
    previous = state.enabled
    enable()
    try:
        yield metrics
    finally:
        if not previous:
            disable()
        if sink is not None:
            remove_hook(sink.write)
            remove_hook(sink.write_run_end)
            sink.close()
        if span_sink is not None:
            tracer.remove_sink(span_sink.write)
            span_sink.close()


# -- recording entry points (callers guard on ``state.enabled``) -------------


def record_round(event: RoundEvent, seconds: Optional[float] = None) -> None:
    """Account a round event in the metrics and dispatch round hooks.

    ``seconds`` (wall time of the round, when the engine measured it)
    feeds the fixed-bucket ``round_seconds`` latency histogram that the
    sweep aggregator merges across workers.
    """
    metrics.inc("rounds.total")
    metrics.inc(f"rounds.class.{event.config_class}")
    if event.crashed:
        metrics.inc("rounds.crashes", len(event.crashed))
    if seconds is not None:
        metrics.observe_hist("round_seconds", seconds)
    emit_round(event)


def record_kernel(name: str, seconds: float, backend: str) -> None:
    """Account one kernel call and dispatch kernel hooks.

    Also bins the latency into the ``kernel_seconds`` histogram and,
    when tracing is active, records a leaf ``kernel`` span attributed
    to the innermost open span (the phase that issued the call).
    """
    metrics.record_kernel(name, seconds, backend)
    metrics.observe_hist("kernel_seconds", seconds)
    if tracer.active:
        duration_ns = int(seconds * 1e9)
        tracer.complete(
            name,
            "kernel",
            time.perf_counter_ns() - duration_ns,
            duration_ns,
            attrs={"backend": backend},
        )
    emit_kernel(name, seconds, backend)


def record_run_end(summary: dict) -> None:
    """Account a finished run and dispatch run-end hooks."""
    metrics.inc("runs.total")
    verdict = summary.get("verdict")
    if verdict:
        metrics.inc(f"runs.verdict.{verdict}")
    emit_run_end(summary)
