"""Structured, process-wide JSONL logging (``repro-log-v1``).

The repo's other observability streams — events, spans, metrics — are
machine-first: schema-versioned JSONL with a header line, readable by the
same CLI that wrote them.  Operational logging historically was not: a
handful of ad-hoc ``logging.warning(... "(warning once)")`` and
``warnings.warn`` sites scattered across the pool, the hook dispatcher,
and the result store, none of which land anywhere a tool can read.  This
module gives those sites one structured hub:

* **leveled records** — ``debug/info/warning/error``, each a JSON dict
  with ``ts`` (wall clock), ``level``, ``logger``, ``event`` (a stable
  machine key like ``store.write_error``), ``msg`` (human text), and
  free-form ``fields``;
* **warn-once dedup** — :meth:`StructuredLogger.warn_once` emits the
  first record for a key and counts the rest, replacing the scattered
  module-level ``_warned`` sets;
* **rate limiting** — per ``(logger, event)`` token budget per interval;
  suppressed records are counted and surface as one ``log.suppressed``
  notice when the window rolls, so a hot failure path cannot flood disk;
* **quarantining sinks** — a sink that raises is disabled after one
  structured complaint, same contract as span/event sinks.

Records always mirror to the stdlib :mod:`logging` tree (logger name =
record's ``logger``), so existing handlers, ``caplog``, and operator
habits keep working; attached JSONL sinks additionally get the dict.

The module is intentionally **stdlib-only with no intra-repo imports**:
``repro.obs`` imports from ``repro.resilience``, and the pool needs to
log — keeping this leaf module dependency-free lets every layer use it
(the pool imports it lazily to stay clear of the package cycle).
"""

from __future__ import annotations

import io
import json
import logging
import threading
import time
from typing import Callable, Dict, List, Optional, TextIO, Tuple

__all__ = [
    "LOG_SCHEMA",
    "LEVELS",
    "LogHub",
    "StructuredLogger",
    "LogJsonlSink",
    "get_logger",
    "hub",
    "read_log",
]

LOG_SCHEMA = "repro-log-v1"

#: Level names in severity order; records carry the name, not a number.
LEVELS = ("debug", "info", "warning", "error")

_STDLIB_LEVEL = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

#: Default rate limit: at most this many records per (logger, event) key
#: per interval; the first overflow in a window is announced once.
RATE_LIMIT_BURST = 50
RATE_LIMIT_INTERVAL_S = 60.0


class LogHub:
    """Process-wide fan-out point for structured log records.

    One instance (:data:`hub`) serves the whole process.  It owns the
    sink list, the warn-once registry, and the rate limiter; loggers
    obtained via :func:`get_logger` are thin named fronts over it.
    Thread-safe: serve handlers log from concurrent threads.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sinks: List[Callable[[dict], None]] = []
        self._quarantined: set = set()
        self._warned: Dict[str, int] = {}
        self._windows: Dict[Tuple[str, str], Tuple[float, int]] = {}
        self.rate_burst = RATE_LIMIT_BURST
        self.rate_interval_s = RATE_LIMIT_INTERVAL_S
        self.mirror_stdlib = True
        #: Events never rate-limited.  The limiter protects against hot
        #: *failure* paths flooding disk; per-request records like an
        #: access log are complete by contract, so their emitters opt
        #: out here (survives :meth:`reset`, like the rate knobs).
        self.rate_exempt: set = set()

    # -- wiring --------------------------------------------------------------

    def add_sink(self, sink: Callable[[dict], None]) -> None:
        with self._lock:
            self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[dict], None]) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)
            self._quarantined.discard(id(sink))

    def reset(self) -> None:
        """Drop sinks, warn-once memory, and rate windows (tests)."""
        with self._lock:
            self._sinks.clear()
            self._quarantined.clear()
            self._warned.clear()
            self._windows.clear()

    def warned_keys(self) -> Dict[str, int]:
        """Copy of the warn-once registry: key → times seen."""
        with self._lock:
            return dict(self._warned)

    # -- emission ------------------------------------------------------------

    def emit(self, logger: str, level: str, event: str, msg: str, fields: dict) -> None:
        """Build, rate-limit, mirror, and fan out one record."""
        now = time.time()
        suppressed_notice = None
        if event not in self.rate_exempt:
            with self._lock:
                key = (logger, event)
                start, count = self._windows.get(key, (now, 0))
                if now - start >= self.rate_interval_s:
                    if count > self.rate_burst:
                        suppressed_notice = (key, count - self.rate_burst, start)
                    start, count = now, 0
                count += 1
                self._windows[key] = (start, count)
                if count > self.rate_burst:
                    return
        if suppressed_notice is not None:
            (s_logger, s_event), dropped, since = suppressed_notice
            self._fan_out(
                {
                    "ts": now,
                    "level": "warning",
                    "logger": s_logger,
                    "event": "log.suppressed",
                    "msg": f"rate limit: suppressed {dropped} {s_event!r} records",
                    "fields": {
                        "suppressed_event": s_event,
                        "dropped": dropped,
                        "window_s": round(now - since, 3),
                    },
                }
            )
        record = {
            "ts": now,
            "level": level,
            "logger": logger,
            "event": event,
            "msg": msg,
        }
        if fields:
            record["fields"] = fields
        self._fan_out(record)

    def warn_once(self, logger: str, key: str, event: str, msg: str, fields: dict) -> bool:
        """Emit a warning for ``key`` the first time only; count repeats.

        Returns True when the record was emitted (first sighting).
        """
        with self._lock:
            seen = self._warned.get(key, 0)
            self._warned[key] = seen + 1
            if seen:
                return False
        merged = dict(fields)
        merged["warn_once_key"] = key
        self.emit(logger, "warning", event, msg + " (warning once)", merged)
        return True

    def _fan_out(self, record: dict) -> None:
        if self.mirror_stdlib:
            logging.getLogger(record["logger"]).log(
                _STDLIB_LEVEL.get(record["level"], logging.INFO),
                "%s: %s",
                record["event"],
                record["msg"],
            )
        with self._lock:
            sinks = list(self._sinks)
        for sink in sinks:
            if id(sink) in self._quarantined:
                continue
            try:
                sink(record)
            except Exception as exc:  # noqa: BLE001 - sink bugs must not kill callers
                with self._lock:
                    self._quarantined.add(id(sink))
                logging.getLogger("repro.obs.log").warning(
                    "log sink %r raised %s: %s; quarantining it", sink, type(exc).__name__, exc
                )


#: The process-wide hub all structured loggers emit through.
hub = LogHub()


class StructuredLogger:
    """Named front over the hub; create via :func:`get_logger`."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def debug(self, event: str, msg: str, **fields) -> None:
        hub.emit(self.name, "debug", event, msg, fields)

    def info(self, event: str, msg: str, **fields) -> None:
        hub.emit(self.name, "info", event, msg, fields)

    def warning(self, event: str, msg: str, **fields) -> None:
        hub.emit(self.name, "warning", event, msg, fields)

    def error(self, event: str, msg: str, **fields) -> None:
        hub.emit(self.name, "error", event, msg, fields)

    def warn_once(self, key: str, event: str, msg: str, **fields) -> bool:
        """Warn for ``key`` exactly once per process; count repeats."""
        return hub.warn_once(self.name, key, event, msg, fields)


_loggers: Dict[str, StructuredLogger] = {}
_loggers_lock = threading.Lock()


def get_logger(name: str) -> StructuredLogger:
    """Return the process-wide structured logger called ``name``."""
    with _loggers_lock:
        logger = _loggers.get(name)
        if logger is None:
            logger = _loggers[name] = StructuredLogger(name)
        return logger


class LogJsonlSink:
    """Append records to a ``repro-log-v1`` JSONL file, line-buffered.

    Unlike the span/event sinks (which write ``.partial`` then promote on
    close — right for run artifacts), a log file must be *tailable while
    the process runs*: the header and every record are flushed as they
    are written, straight to the final path.
    """

    def __init__(self, path, meta: Optional[dict] = None) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._handle: TextIO = io.open(path, "w", encoding="utf-8")
        header = {"format": LOG_SCHEMA, "meta": dict(meta or {})}
        self._handle.write(json.dumps(header, sort_keys=True) + "\n")
        self._handle.flush()

    def __call__(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()


def read_log(path) -> Tuple[dict, List[dict]]:
    """Read a ``repro-log-v1`` file → ``(meta, records)``.

    Mirrors :func:`repro.obs.spans.read_spans`.  Raises ``ValueError``
    on a missing or foreign header so callers can fall through to other
    readers; tolerates a truncated trailing line (the process may have
    died mid-write — logs are flushed per line, not atomically).
    """
    with io.open(path, "r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line.strip():
            raise ValueError(f"{path}: empty file, expected {LOG_SCHEMA} header")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not a {LOG_SCHEMA} file: {exc}") from exc
        if not isinstance(header, dict) or header.get("format") != LOG_SCHEMA:
            raise ValueError(f"{path}: header format is not {LOG_SCHEMA!r}")
        records: List[dict] = []
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                break  # truncated tail: keep what parsed
    return header.get("meta", {}), records


def summarize_log(records: List[dict]) -> dict:
    """Aggregate counts the ``repro stats`` CLI prints for a log file."""
    by_level: Dict[str, int] = {}
    by_event: Dict[str, int] = {}
    warn_once: Dict[str, int] = {}
    for record in records:
        level = record.get("level", "?")
        by_level[level] = by_level.get(level, 0) + 1
        event = record.get("event", "?")
        by_event[event] = by_event.get(event, 0) + 1
        fields = record.get("fields") or {}
        key = fields.get("warn_once_key")
        if key:
            warn_once[key] = warn_once.get(key, 0) + 1
    return {"levels": by_level, "events": by_event, "warn_once": warn_once}
