"""Cross-worker metric aggregation for sweep-scale telemetry.

A parallel sweep runs every seed in whichever worker process the pool
hands it to, and each worker accumulates its *own* process-local
:class:`~repro.obs.metrics.Metrics` registry — none of which the parent
ever sees.  This module closes that gap without any shared memory or
side channels: the runner snapshots the worker's registry around each
seed, attaches the exact **delta** (what this seed contributed) plus the
seed's span tail to the result object, and the parent folds every
payload into one :class:`Aggregator`.

Why deltas rather than resets: a worker's registry also feeds the
cumulative ``repro experiment --obs`` display, so the per-seed capture
must not clear it.  Counters, stat count/total, kernel calls/total and
histogram buckets subtract exactly; stat min/max are carried from the
cumulative snapshot (a min over a superset is still a lower bound, so
the merged bounds stay correct).

The merge is associative and order-independent for everything except
stat min/max (which are still correct bounds), so the aggregate of a
chaotic, retried, out-of-order parallel sweep equals the aggregate of a
clean serial one — the same determinism contract the result values
themselves carry.  Histograms merge by element-wise addition because
every process derives bit-identical bucket bounds
(:mod:`repro.obs.histogram`).

The aggregate serializes as a ``repro-sweep-metrics-v1`` document,
written atomically next to the sweep journal by ``repro sweep --obs``
and rendered live by :mod:`repro.obs.dashboard`.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Tuple

from ..resilience import SeedTimeoutError, atomic_write
from .histogram import Histogram
from .metrics import metrics
from .spans import tracer

__all__ = [
    "SWEEP_METRICS_SCHEMA",
    "snapshot_delta",
    "capture_before",
    "seed_payload",
    "namespace_delta",
    "Aggregator",
    "write_sweep_metrics",
]

#: Schema identifier of the persisted sweep-metrics document.
SWEEP_METRICS_SCHEMA = "repro-sweep-metrics-v1"


# -- per-seed capture (worker side) -------------------------------------------


def capture_before() -> Tuple[dict, int]:
    """Worker-side capture point taken just before a seed runs.

    Returns ``(registry snapshot, span completion seq)`` — the inputs
    :func:`seed_payload` needs to compute the seed's exact contribution
    afterwards.
    """
    return metrics.snapshot(), tracer.seq


def snapshot_delta(after: dict, before: dict) -> dict:
    """The exact contribution between two registry snapshots.

    Counters, stat count/total, kernel calls/total and histogram
    buckets are monotone, so ``after - before`` is the precise work of
    the window; entries that did not move are dropped.  Stat min/max
    come from ``after`` (cumulative — still correct bounds under merge).
    """
    counters = {}
    before_counters = before.get("counters", {})
    for name, value in after.get("counters", {}).items():
        moved = value - before_counters.get(name, 0)
        if moved:
            counters[name] = moved

    stats = {}
    before_stats = before.get("stats", {})
    for name, stat in after.get("stats", {}).items():
        prior = before_stats.get(name, {"count": 0, "total": 0.0})
        moved = stat["count"] - prior["count"]
        if moved:
            stats[name] = {
                "count": moved,
                "total": stat["total"] - prior["total"],
                "min": stat["min"],
                "max": stat["max"],
            }

    before_kernels = {
        (row["kernel"], row["backend"]): row
        for row in before.get("kernels", [])
    }
    kernels = []
    for row in after.get("kernels", []):
        prior = before_kernels.get((row["kernel"], row["backend"]))
        calls = row["calls"] - (prior["calls"] if prior else 0)
        if calls:
            kernels.append(
                {
                    "kernel": row["kernel"],
                    "backend": row["backend"],
                    "calls": calls,
                    "total_s": row["total_s"]
                    - (prior["total_s"] if prior else 0.0),
                }
            )

    hists = {}
    before_hists = before.get("hists", {})
    for name, data in after.get("hists", {}).items():
        hist = Histogram.from_dict(data)
        prior = before_hists.get(name)
        if prior is not None:
            hist = hist.delta(Histogram.from_dict(prior))
        if hist.count:
            hists[name] = hist.to_dict()

    return {
        "counters": counters,
        "stats": stats,
        "kernels": kernels,
        "hists": hists,
    }


def seed_payload(before: Tuple[dict, int]) -> dict:
    """The observability payload one finished seed ships home.

    ``before`` is the :func:`capture_before` pair taken when the seed
    started in this process.  The payload carries the worker pid (so
    the aggregate can report which processes contributed), the exact
    registry delta, and — when tracing is active — the seed's finished
    spans still in the tracer's ring buffer.
    """
    snapshot_before, seq_before = before
    payload = {
        "pid": os.getpid(),
        "metrics": snapshot_delta(metrics.snapshot(), snapshot_before),
    }
    if tracer.active:
        payload["spans"] = [
            span.to_dict() for span in tracer.tail(since_seq=seq_before)
        ]
    return payload


def namespace_delta(delta: dict, prefix: str) -> dict:
    """The same registry delta with every metric name prefixed.

    ``repro serve`` aggregates work from *many independent requests*
    into one long-lived registry; prefixing each request's delta with
    its endpoint (``serve.run.``, ``serve.sweep.``) keeps per-endpoint
    counters and latency histograms separable in the ``/metrics``
    document without teaching the registry itself about namespaces.
    Kernel rows keep their kernel/backend identity (they are already a
    two-level namespace and the bench compares them across contexts).
    """
    if not prefix.endswith("."):
        prefix += "."
    return {
        "counters": {
            prefix + name: value
            for name, value in delta.get("counters", {}).items()
        },
        "stats": {
            prefix + name: stat
            for name, stat in delta.get("stats", {}).items()
        },
        "kernels": delta.get("kernels", []),
        "hists": {
            prefix + name: data
            for name, data in delta.get("hists", {}).items()
        },
    }


# -- sweep-level merge (parent side) ------------------------------------------


class Aggregator:
    """Folds per-seed payloads into one sweep-level view.

    Fed from two callbacks of the resilient sweep: ``seed_done`` per
    completed seed (payload merge + verdict/round accounting) and
    ``failure`` per failed attempt (retry/timeout accounting).  All
    fields are parent-process state; nothing here is shared with
    workers.
    """

    def __init__(self, total_seeds: int = 0) -> None:
        self.total_seeds = total_seeds
        self.done = 0
        self.resumed = 0
        self.retries = 0
        self.timeouts = 0
        self.rounds = 0
        self.verdicts: Dict[str, int] = {}
        self.workers: set = set()
        self.counters: Dict[str, int] = {}
        self.stats: Dict[str, dict] = {}
        self.kernels: Dict[Tuple[str, str], dict] = {}
        self.hists: Dict[str, Histogram] = {}
        self.span_count = 0
        self.started = time.monotonic()

    # -- feeding -----------------------------------------------------------

    def seed_done(self, seed: int, result) -> None:
        """Account one completed seed (journal-resumed or fresh)."""
        self.done += 1
        self.rounds += result.rounds
        self.verdicts[result.verdict] = (
            self.verdicts.get(result.verdict, 0) + 1
        )
        payload = getattr(result, "obs", None)
        if payload is None:
            # A journal-resumed seed (or an obs-disabled worker): its
            # result counts, but it carries no registry contribution.
            self.resumed += 1
            return
        self.workers.add(payload.get("pid"))
        self.span_count += len(payload.get("spans", ()))
        self.add_metrics(payload.get("metrics", {}))

    def failure(self, key: str, exc: BaseException, strike: bool) -> None:
        """Account one failed attempt (the item will be retried unless
        its budget is exhausted)."""
        self.retries += 1
        if isinstance(exc, SeedTimeoutError):
            self.timeouts += 1

    def add_metrics(self, delta: dict) -> None:
        """Merge one registry delta (associative, commutative)."""
        for name, value in delta.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, stat in delta.get("stats", {}).items():
            into = self.stats.get(name)
            if into is None:
                self.stats[name] = dict(stat)
            else:
                into["count"] += stat["count"]
                into["total"] += stat["total"]
                into["min"] = min(into["min"], stat["min"])
                into["max"] = max(into["max"], stat["max"])
        for row in delta.get("kernels", []):
            key = (row["kernel"], row["backend"])
            into = self.kernels.get(key)
            if into is None:
                self.kernels[key] = {
                    "calls": row["calls"],
                    "total_s": row["total_s"],
                }
            else:
                into["calls"] += row["calls"]
                into["total_s"] += row["total_s"]
        for name, data in delta.get("hists", {}).items():
            hist = Histogram.from_dict(data)
            into = self.hists.get(name)
            if into is None:
                self.hists[name] = hist
            else:
                into.merge(hist)

    # -- reading -----------------------------------------------------------

    def elapsed(self) -> float:
        return time.monotonic() - self.started

    def rounds_per_second(self) -> float:
        elapsed = self.elapsed()
        return self.rounds / elapsed if elapsed > 0 else 0.0

    def class_rounds(self) -> Dict[str, int]:
        """Per-configuration-class round counts from merged counters."""
        return {
            name.rsplit(".", 1)[-1]: value
            for name, value in sorted(self.counters.items())
            if name.startswith("rounds.class.")
        }

    def eta_seconds(self) -> Optional[float]:
        """Naive remaining-time estimate from the per-seed pace."""
        if not self.done or not self.total_seeds:
            return None
        remaining = self.total_seeds - self.done
        if remaining <= 0:
            return 0.0
        return self.elapsed() / self.done * remaining

    def to_dict(self) -> dict:
        """The JSON-ready ``repro-sweep-metrics-v1`` document."""
        kernel_rows = [
            {
                "kernel": kernel,
                "backend": backend,
                "calls": row["calls"],
                "total_s": row["total_s"],
                "mean_s": row["total_s"] / row["calls"],
            }
            for (kernel, backend), row in self.kernels.items()
        ]
        kernel_rows.sort(key=lambda row: row["total_s"], reverse=True)
        hists = {}
        for name, hist in self.hists.items():
            data = hist.to_dict()
            data["mean"] = hist.mean
            data["p50"] = hist.quantile(0.5)
            data["p90"] = hist.quantile(0.9)
            data["p99"] = hist.quantile(0.99)
            hists[name] = data
        stats = {}
        for name, stat in sorted(self.stats.items()):
            entry = dict(stat)
            entry["mean"] = (
                entry["total"] / entry["count"] if entry["count"] else 0.0
            )
            stats[name] = entry
        return {
            "schema": SWEEP_METRICS_SCHEMA,
            "seeds": {
                "total": self.total_seeds,
                "done": self.done,
                "resumed": self.resumed,
                "retried": self.retries,
                "timed_out": self.timeouts,
            },
            "rounds": {
                "total": self.rounds,
                "per_second": self.rounds_per_second(),
                "by_class": self.class_rounds(),
            },
            "verdicts": dict(sorted(self.verdicts.items())),
            "workers": sorted(pid for pid in self.workers if pid is not None),
            "span_count": self.span_count,
            "elapsed_s": self.elapsed(),
            "counters": dict(sorted(self.counters.items())),
            "stats": stats,
            "kernels": kernel_rows,
            "hists": hists,
        }


def write_sweep_metrics(aggregator: Aggregator, path: str) -> None:
    """Persist the aggregate atomically (temp + fsync + rename), so a
    killed sweep leaves either the previous document or the new one —
    never a truncated JSON."""
    atomic_write(
        path, json.dumps(aggregator.to_dict(), indent=2, sort_keys=False) + "\n"
    )
