"""Structured per-round events — the observable skeleton of a run.

A :class:`RoundEvent` is the per-round cross-section the Section IV case
analysis argues about: which configuration class was active, how large
the maximum multiplicity was, how far apart the robots still were
(spread), which point the movers were sent to and whether it was a safe
point, and which robots were activated, crashed or actually moved.  Both
engines emit one per round/tick when observability is enabled; the
stream serializes to JSONL (:mod:`repro.obs.sink`) and joins to an
archived ``repro-trace-v2`` trace by seed and scenario.

The event is intentionally *flat* (strings, ints, floats, tuples): it
must round-trip JSON exactly, diff cleanly between two runs, and never
hold references into live simulation state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["OBS_SCHEMA", "RoundEvent"]

#: Schema identifier of the JSONL event stream.
OBS_SCHEMA = "repro-obs-v1"


@dataclass(frozen=True)
class RoundEvent:
    """Everything per-round observability records about one round.

    ``elected_target`` is the unique destination assigned to robots not
    already standing on it (the class-``A`` election, recovered exactly
    as :func:`repro.analysis.invariants.elected_target` does);
    ``target_is_safe`` is Definition 8 evaluated on that target when it
    is an occupied position, ``None`` when there was no election.
    ``spread`` is the diameter of the post-round configuration.
    """

    round_index: int
    engine: str  # "atom" | "async"
    config_class: str  # B / M / L1W / L2W / QR / A
    support: int  # distinct occupied locations after the round
    max_multiplicity: int
    spread: float
    elected_target: Optional[Tuple[float, float]]
    target_is_safe: Optional[bool]
    active: Tuple[int, ...]
    crashed: Tuple[int, ...]
    moved: Tuple[int, ...]

    @classmethod
    def from_record(cls, record, engine: str = "atom") -> "RoundEvent":
        """Build the event for one engine round record.

        Imports are deferred to call time: this module must stay
        import-leaf so the engines and kernels can import ``repro.obs``
        without cycles, but the derivation needs the core layer (safe
        points), the invariant helpers (election recovery) and the
        metrics helper (spread).  Only ever called with observability
        enabled, so the disabled hot path never pays for any of it.
        """
        from ..analysis.invariants import elected_target
        from ..core import is_safe_point
        from ..sim.metrics import spread

        before = record.config_before
        after = record.config_after
        target = elected_target(record)
        target_is_safe: Optional[bool] = None
        if target is not None and before.locate(target) is not None:
            target_is_safe = is_safe_point(before, target)
        return cls(
            round_index=record.round_index,
            engine=engine,
            config_class=record.config_class.value,
            support=len(after.support),
            max_multiplicity=after.max_multiplicity(),
            spread=spread(after.support),
            elected_target=target.as_tuple() if target is not None else None,
            target_is_safe=target_is_safe,
            active=tuple(record.active),
            crashed=tuple(record.crashed_now),
            moved=tuple(record.moved),
        )

    def to_dict(self) -> dict:
        """JSON-ready form; floats survive via ``repr`` round-tripping."""
        return {
            "round": self.round_index,
            "engine": self.engine,
            "class": self.config_class,
            "support": self.support,
            "max_mult": self.max_multiplicity,
            "spread": self.spread,
            "target": list(self.elected_target)
            if self.elected_target is not None
            else None,
            "target_safe": self.target_is_safe,
            "active": list(self.active),
            "crashed": list(self.crashed),
            "moved": list(self.moved),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RoundEvent":
        """Inverse of :meth:`to_dict` (exact round-trip)."""
        target = data.get("target")
        return cls(
            round_index=data["round"],
            engine=data.get("engine", "atom"),
            config_class=data["class"],
            support=data["support"],
            max_multiplicity=data["max_mult"],
            spread=data["spread"],
            elected_target=tuple(target) if target is not None else None,
            target_is_safe=data.get("target_safe"),
            active=tuple(data["active"]),
            crashed=tuple(data["crashed"]),
            moved=tuple(data["moved"]),
        )
