"""Experiment E11 — byzantine robots: the fault model the paper rules out.

Section I recalls the Agmon–Peleg result that even a *single* byzantine
robot can prevent gathering (their impossibility is the reason the paper
restricts itself to crash faults).  We probe `WAIT-FREE-GATHER` against a
library of byzantine strategies:

* ``stationary`` — behaves exactly like a crashed robot.  Sanity row:
  byzantine subsumes crash, so gathering must still succeed, at
  crash-level speed.
* ``oscillating`` / ``anti-gather`` / ``election-thief`` — live
  disruption strategies, the last one specifically targeting the
  election rule (camp at the distance-sum minimum, flee when approached).

**What we measure**: with strong multiplicity detection, none of these
*natural* strategies prevents gathering — the first merge of two correct
robots creates a multiplicity point the byzantine robot (multiplicity 1
wherever it goes) can never contest, and class ``M`` absorbs the run.
Remarkably, they do not even meaningfully *delay* it: the slowdown
column (relative to the crash-equivalent ``stationary`` baseline under
identical scheduler and movement adversaries) hovers around 1.0, because
whenever the byzantine robot leaves the scene to avoid being gathered
onto, the correct robots simply elect one of their own and make
progress towards each other.

**Honest caveat**: the cited impossibility quantifies over coordinated
scheduler+byzantine adversaries constructed per-algorithm; our policy
library does not realize such a joint adversary against this specific
election rule, so E11 is evidence about the cost of byzantine behaviour,
not a refutation (nor confirmation) of the impossibility in our exact
capability mix.  EXPERIMENTS.md discusses this.
"""

from __future__ import annotations

from typing import List

from ..algorithms import WaitFreeGather
from ..geometry import Point
from ..sim import (
    AdversarialStop,
    AntiGatherByzantine,
    ElectionThiefByzantine,
    OscillatingByzantine,
    RoundRobin,
    Simulation,
    StationaryByzantine,
    summarize_runs,
)
from ..workloads import generate
from .report import Table

__all__ = ["run"]


def _policy(name: str):
    if name == "stationary":
        return StationaryByzantine()
    if name == "oscillating":
        return OscillatingByzantine(Point(-5.0, -5.0), Point(15.0, 15.0))
    if name == "anti-gather":
        return AntiGatherByzantine()
    if name == "election-thief":
        return ElectionThiefByzantine(flee_radius=2.0)
    raise ValueError(name)


POLICIES = ["stationary", "oscillating", "anti-gather", "election-thief"]


def run(quick: bool = True) -> List[Table]:
    seeds = range(6) if quick else range(30)
    sizes = [3, 5, 8] if quick else [3, 4, 5, 8, 12]

    table = Table(
        "E11",
        "One byzantine robot vs wait-free-gather (round-robin scheduler, "
        "adversarial move cut-offs): success and slowdown",
        [
            "byzantine policy",
            "n",
            "runs",
            "gathered",
            "success%",
            "mean rounds",
            "slowdown vs stationary",
        ],
    )
    baseline_rounds = {}
    for policy_name in POLICIES:
        for n in sizes:
            results = []
            for seed in seeds:
                sim = Simulation(
                    WaitFreeGather(),
                    generate("random", n, seed),
                    byzantine={0: _policy(policy_name)},
                    scheduler=RoundRobin(),
                    movement=AdversarialStop(0.5),
                    seed=seed,
                    max_rounds=20_000,
                    halt_on_bivalent=False,
                )
                results.append(sim.run())
            summary = summarize_runs(results)
            if policy_name == "stationary":
                baseline_rounds[n] = summary.mean_rounds_gathered
            slowdown = (
                summary.mean_rounds_gathered / baseline_rounds[n]
                if baseline_rounds.get(n)
                else float("nan")
            )
            table.add_row(
                policy_name,
                n,
                summary.runs,
                summary.gathered,
                100.0 * summary.success_rate,
                summary.mean_rounds_gathered,
                slowdown,
            )
    table.add_note(
        "stationary = crash-equivalent baseline under the same scheduler "
        "and movement adversary; slowdown ~1.0 means the live strategies "
        "neither prevent nor delay gathering - they cannot undo a "
        "multiplicity point once two correct robots merge, and fleeing "
        "cedes the election back to the correct robots."
    )
    return [table]
