"""Experiment E17 — the scheduler/model matrix opened by the unified engine.

The unified LCM engine (:mod:`repro.sim.engine` + :mod:`repro.sim.lcm`)
runs ATOM and ASYNC as two activation models of one loop, which makes
new model axes directly comparable across both:

* **Poisson activation timing** — per-robot exponential clocks
  (:class:`~repro.sim.PoissonScheduler`) instead of per-round coins:
  activations cluster and starve stochastically, the discretized form
  of the LCMmodel continuous-time scheduler.
* **Per-robot speeds** — heterogeneous speed caps
  (:class:`~repro.sim.PerRobotSpeed`): the fastest robot covers 20x the
  slowest per activation.  Not an adversary; the ``delta`` guarantee
  holds with ``delta = min(speeds)``.
* **Limited visibility** — every LOOK truncated to a radius, threaded
  through the shared LOOK phase of both activation models (the paper
  requires unlimited visibility).

Each axis is measured for where WAIT-FREE-GATHER degrades, under the
full crash budget ``f = n - 1``, on both activation models.  The paper
claims nothing outside ATOM with unlimited visibility; rows that stay at
100% are empirical observations, rows that drop localize the assumption
that actually carries the proof.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim import summarize_runs
from .report import Table
from .runner import Scenario, run_scenario

__all__ = ["run"]

WORKLOADS = [
    "asymmetric",
    "multiple",
    "linear-unique",
    "regular-polygon",
    "near-bivalent",
]

#: The matrix cells: (axis label, scheduler, movement, visibility).
#: The first row of each pair is the baseline the axis perturbs.
CELLS = [
    ("baseline", "random", "random-stop", None),
    ("poisson-timing", "poisson", "random-stop", None),
    ("per-robot-speed", "random", "per-robot-speed", None),
    ("visibility=8", "random", "random-stop", 8.0),
    ("visibility=3", "random", "random-stop", 3.0),
]


def _cell_results(
    engine: str,
    scheduler: str,
    movement: str,
    visibility: Optional[float],
    n: int,
    seeds,
):
    results = []
    for workload in WORKLOADS:
        scenario = Scenario(
            workload=workload,
            n=n,
            scheduler=scheduler,
            crashes="random",
            f=n - 1,
            movement=movement,
            engine=engine,
            visibility=visibility,
            max_rounds=100_000,
        )
        for seed in seeds:
            results.append(run_scenario(scenario, seed))
    return results


def run(quick: bool = True) -> List[Table]:
    seeds = range(3) if quick else range(12)
    sizes = [6] if quick else [6, 8, 12]
    engines = ["atom", "async"]

    table = Table(
        "E17",
        "scheduler/model matrix under f = n - 1 crashes: Poisson "
        "activation timing, per-robot speeds and limited visibility, "
        "on both activation models of the unified LCM engine",
        [
            "axis",
            "engine",
            "n",
            "runs",
            "gathered",
            "success%",
            "mean rounds",
        ],
    )
    for axis, scheduler, movement, visibility in CELLS:
        for engine in engines:
            for n in sizes:
                results = _cell_results(
                    engine, scheduler, movement, visibility, n, seeds
                )
                summary = summarize_runs(results)
                table.add_row(
                    axis,
                    engine,
                    n,
                    summary.runs,
                    summary.gathered,
                    100.0 * summary.success_rate,
                    summary.mean_rounds_gathered,
                )
    table.add_note(
        "baseline = random scheduler, random-stop movement, unlimited "
        "visibility; ATOM baseline is the paper's proven setting.  "
        "Poisson timing and heterogeneous speeds preserve the fairness "
        "and delta assumptions, so degradation there would be a bug; "
        "small visibility radii violate a stated assumption and are "
        "where WAIT-FREE-GATHER is expected to degrade (robots outside "
        "each other's radius can gather to different components)."
    )
    return [table]
