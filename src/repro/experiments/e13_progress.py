"""Experiment E13 — the proofs' progress measures, as time series.

A systems paper would plot these as figures; we print the series.  For
one representative execution per starting class (with crashes and
interrupted moves), the table shows round-by-round: the configuration
class, the maximum multiplicity (Lemma 5.3: never decreases within
``M``), the number of distinct locations, the spread (diameter), and the
phi pair of Lemma 5.6.

*Shape predictions*: max multiplicity is non-decreasing once the run
enters ``M`` and ends at the number of robots gathered at the rally
point; spread hits (near) zero; the class column walks monotonically
down the reachability diagram.
"""

from __future__ import annotations

from typing import List

from ..algorithms import WaitFreeGather
from ..analysis.progress import ProgressTracker
from ..sim import RandomCrashes, RandomStop, RandomSubset, Simulation
from ..workloads import generate
from .report import Table

__all__ = ["run"]

STARTS = [
    ("asymmetric", 2),
    ("regular-polygon", 1),
    ("linear-interval", 0),
    ("multiple", 3),
    ("unsafe-ray", 1),
]


def run(quick: bool = True) -> List[Table]:
    n = 8
    rows_budget = 12 if quick else 25
    tables: List[Table] = []
    for workload, seed in STARTS:
        tracker = ProgressTracker()
        sim = Simulation(
            WaitFreeGather(),
            generate(workload, n, seed),
            scheduler=RandomSubset(0.5),
            crash_adversary=RandomCrashes(f=n // 2, rate=0.2),
            movement=RandomStop(0.05),
            seed=seed * 7 + 1,
            max_rounds=20_000,
        )
        sim.add_observer(tracker)
        result = sim.run()

        table = Table(
            f"E13-{workload}",
            f"progress series from a {workload} start "
            f"(n={n}, f={n // 2}, verdict={result.verdict}, "
            f"{result.rounds} rounds)",
            ["round", "class", "max mult", "locations", "spread", "phi sum"],
        )
        for sample in tracker.downsample(rows_budget):
            table.add_row(
                sample.round_index,
                str(sample.config_class),
                sample.max_multiplicity,
                sample.distinct_locations,
                sample.spread,
                sample.phi_distance_sum,
            )
        if not tracker.max_multiplicity_monotone():
            table.add_note("VIOLATION: max multiplicity regressed inside M")
        tables.append(table)
    return tables
