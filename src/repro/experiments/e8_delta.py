"""Experiment E8 — sensitivity to the movement guarantee ``delta``.

The model only promises progress of at least ``delta`` per interrupted
move; correctness must hold for **every** ``delta > 0``.  We sweep
``delta`` across four orders of magnitude under the worst-case
``AdversarialStop`` model (every long move cut at exactly ``delta``) and
expect: success stays at 100%, while rounds-to-gather grows roughly like
``distance/delta`` (the progress arguments consume one ``delta`` of
potential per activation).
"""

from __future__ import annotations

from typing import List

from ..algorithms import WaitFreeGather
from ..sim import AdversarialStop, RandomCrashes, Simulation, summarize_runs
from ..workloads import generate
from .report import Table
from .runner import make_scheduler

__all__ = ["run"]


def run(quick: bool = True) -> List[Table]:
    deltas = [1.0, 0.1, 0.01] if quick else [2.0, 1.0, 0.1, 0.01, 0.001]
    seeds = range(4) if quick else range(20)
    n = 8

    table = Table(
        "E8",
        f"delta sweep under adversarial move interruption (n={n}, "
        "f=n/2, random scheduler; success must stay 100%)",
        ["delta", "runs", "gathered", "success%", "mean rounds", "max rounds"],
    )
    for delta in deltas:
        results = []
        for seed in seeds:
            sim = Simulation(
                WaitFreeGather(),
                generate("random", n, seed),
                scheduler=make_scheduler("random"),
                crash_adversary=RandomCrashes(f=n // 2, rate=0.2),
                movement=AdversarialStop(delta),
                seed=seed * 13 + 5,
                max_rounds=200_000,
            )
            results.append(sim.run())
        summary = summarize_runs(results)
        table.add_row(
            delta,
            summary.runs,
            summary.gathered,
            100.0 * summary.success_rate,
            summary.mean_rounds_gathered,
            summary.max_rounds_gathered,
        )
    table.add_note(
        "rounds scale ~ 1/delta: each activation is only guaranteed "
        "delta of progress, exactly as the proofs assume."
    )
    return [table]
