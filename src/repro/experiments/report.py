"""Text rendering of experiment tables.

No plotting libraries are available offline, so figures are rendered as
aligned text tables / series — the same rows a paper table would hold.
``Table`` is the single currency between experiment modules, the CLI,
the benchmark suite and EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Union

__all__ = ["Table", "format_cell"]

Cell = Union[str, int, float, None]


def format_cell(value: Cell) -> str:
    """Uniform cell formatting: floats to 3 significant decimals,
    NaN/None as '-'."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if value == int(value) and abs(value) < 1e12:
            return str(int(value))
        return f"{value:.3f}"
    return str(value)


@dataclass
class Table:
    """An experiment table: id, caption, named columns, rows of cells."""

    table_id: str
    caption: str
    columns: Sequence[str]
    rows: List[Sequence[Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table {self.table_id} has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        """Aligned monospace rendering, ready for a terminal or a README."""
        header = [str(c) for c in self.columns]
        body = [[format_cell(c) for c in row] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [
            f"[{self.table_id}] {self.caption}",
            " | ".join(h.ljust(w) for h, w in zip(header, widths)),
            sep,
        ]
        for row in body:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Comma-separated rendering for downstream tooling."""
        out = [",".join(str(c) for c in self.columns)]
        for row in self.rows:
            out.append(",".join(format_cell(c) for c in row))
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()
