"""Experiment E6 — scalability: rounds and wall time versus team size.

The paper gives no complexity analysis beyond termination; this
experiment characterizes the implementation: rounds to gather should
grow mildly with ``n`` under FSYNC (a constant number of class phases,
each contracting all robots), roughly linearly under round-robin (one
robot per round), and wall time per round is dominated by the
classification tower (views are O(n^2 log n)).
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from ..algorithms import WaitFreeGather
from ..sim import Simulation, SimulationResult, summarize_runs
from ..workloads import generate
from .report import Table
from .runner import (
    executor,
    make_crashes,
    make_movement,
    make_scheduler,
    parallel_map,
)

__all__ = ["run"]


def _run_one(cell: Tuple[str, int, int]) -> Tuple[SimulationResult, float]:
    """One (scheduler, n, seed) run plus its own wall time.

    Module-level so it pickles for the worker pool; the wall time is
    measured inside the worker so the per-run compute cost stays
    meaningful under parallel execution.
    """
    scheduler, n, seed = cell
    sim = Simulation(
        WaitFreeGather(),
        generate("random", n, seed),
        scheduler=make_scheduler(scheduler),
        crash_adversary=make_crashes("random", n // 2),
        movement=make_movement("random-stop"),
        seed=seed + 1,
        max_rounds=30_000,
    )
    start = time.perf_counter()
    result = sim.run()
    return result, time.perf_counter() - start


def run(quick: bool = True, workers: Optional[int] = None) -> List[Table]:
    sizes = [4, 8, 16] if quick else [4, 8, 16, 32, 64]
    seeds = range(3) if quick else range(10)

    table = Table(
        "E6",
        "Scalability of wait-free-gather on random workloads "
        "(f = n/2 random crashes, interruptible moves)",
        [
            "scheduler",
            "n",
            "runs",
            "gathered",
            "mean rounds",
            "max rounds",
            "mean wall s/run",
        ],
    )
    with executor(workers) as pool:
        for scheduler in ("fsync", "round-robin"):
            for n in sizes:
                outcomes = parallel_map(
                    _run_one,
                    [(scheduler, n, seed) for seed in seeds],
                    pool=pool,
                )
                results = [result for result, _ in outcomes]
                elapsed = sum(wall for _, wall in outcomes)
                summary = summarize_runs(results)
                table.add_row(
                    scheduler,
                    n,
                    summary.runs,
                    summary.gathered,
                    summary.mean_rounds_gathered,
                    summary.max_rounds_gathered,
                    elapsed / len(results),
                )
    return [table]
