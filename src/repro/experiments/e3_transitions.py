"""Experiment E3 — the class-transition lemmas (5.3–5.9), executed.

*Claims*: under one round of ``WAIT-FREE-GATHER``

* ``M -> M`` and the unique maximum point never changes (Lemma 5.3 C1);
* ``L1W -> {M, L1W}`` with the Weber point invariant (Lemma 5.4 C1);
* ``QR -> {M, L1W, QR}`` with the Weber point invariant (Lemma 5.5 C1);
* ``A  -> {M, L1W, QR, A}`` with the ``phi`` measure non-regressing
  (Lemma 5.6 C1-C2);
* ``L2W`` never transitions to ``B`` (Lemma 5.7).

*Design*: run every workload class under every scheduler with heavy
fault injection, attach the :class:`InvariantMonitor` (which raises on
any violated obligation), and additionally histogram the observed
transitions so the table shows the reachability diagram as measured.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple

from ..algorithms import WaitFreeGather
from ..analysis import ALLOWED_TRANSITIONS, InvariantMonitor
from ..core import ConfigClass, classify
from ..sim import Simulation
from ..workloads import generate
from .report import Table
from .runner import make_crashes, make_movement, make_scheduler

__all__ = ["run"]

WORKLOADS = {
    "multiple": "M",
    "linear-unique": "L1W",
    "linear-interval": "L2W",
    "regular-polygon": "QR",
    "biangular": "QR",
    "qr-occupied-center": "QR",
    "asymmetric": "A",
    "near-bivalent": "M/A",
}


def run(quick: bool = True) -> List[Table]:
    seeds = range(4) if quick else range(20)
    sizes = [6, 8] if quick else [6, 8, 12]
    schedulers = ["fsync", "random"] if quick else [
        "fsync",
        "round-robin",
        "random",
        "laggard",
    ]

    transitions: Counter = Counter()
    checked_rounds = 0
    violations = 0

    def observer_factory(monitor: InvariantMonitor):
        def observe(record) -> None:
            monitor(record)
            before = record.config_class
            after = classify(record.config_after)
            transitions[(before, after)] += 1

        return observe

    for workload in WORKLOADS:
        for n in sizes:
            for seed in seeds:
                points = generate(workload, n, seed)
                for scheduler in schedulers:
                    monitor = InvariantMonitor()
                    sim = Simulation(
                        WaitFreeGather(),
                        points,
                        scheduler=make_scheduler(scheduler),
                        crash_adversary=make_crashes("random", n - 1),
                        movement=make_movement("random-stop"),
                        seed=seed * 101 + 17,
                        max_rounds=10_000,
                    )
                    sim.add_observer(observer_factory(monitor))
                    sim.run()
                    checked_rounds += monitor.rounds_checked

    table = Table(
        "E3",
        "Lemmas 5.3-5.9: observed class transitions under "
        "wait-free-gather (every row must be paper-allowed)",
        ["from", "to", "occurrences", "allowed by paper"],
    )
    for (before, after), count in sorted(
        transitions.items(), key=lambda kv: (-kv[1], kv[0][0].value)
    ):
        allowed = after in ALLOWED_TRANSITIONS[before]
        if not allowed:
            violations += 1
        table.add_row(str(before), str(after), count, "yes" if allowed else "NO")
    table.add_note(
        f"{checked_rounds} rounds passed the full invariant monitor "
        "(wait-freedom, Weber invariance, max-multiplicity stability, "
        "phi progress); the monitor raises on any violation."
    )
    table.add_note(f"forbidden transitions observed: {violations}")
    return [table]
