"""Experiment E15 — ablating the chirality assumption.

The paper's robots agree on "clockwise".  Here we flip the handedness of
``k`` of the ``n`` robots (their private frames mirror the world) and
measure gathering across the workloads — including the ones that
exercise every chirality-consuming code path (side-steps in ``M``, line
escapes in ``L2W``, view tie-breaks in ``A``).

*What theory predicts*: reflections preserve incidence, so a mirrored
robot's collision-avoidance reasoning (side-step onto an unoccupied ray,
leave the line) remains *individually safe* — mirroring can only break
**agreement**, and the only agreement that consults orientation is the
election's view tie-break, which is reached only when the leading
candidates are mirror twins of each other (an axially symmetric
configuration whose twins beat every axis point — our generators almost
never produce one, and perturbations destroy it).  So the measured
table should read 100% everywhere, with the caveat that a hand-built
mirror-tied configuration could in principle split the election.

This is exactly the nuance the paper states in Section I: chirality is
a *much weaker* assumption than a common coordinate system — E15 shows
how little of even that weak assumption the algorithm consumes outside
the symmetric tie-breaks.
"""

from __future__ import annotations

from typing import List

from ..algorithms import WaitFreeGather
from ..sim import AdversarialStop, RoundRobin, Simulation, summarize_runs
from ..workloads import generate
from .report import Table

__all__ = ["run"]

WORKLOADS = [
    "random",
    "unsafe-ray",        # exercises the M-case side-step
    "linear-interval",   # exercises the L2W line escape
    "regular-polygon",   # exercises QR (orientation-free by design)
    "near-bivalent",
]


def run(quick: bool = True) -> List[Table]:
    seeds = range(5) if quick else range(25)
    n = 8

    table = Table(
        "E15",
        f"chirality ablation: k of {n} robots with mirrored handedness "
        "(round-robin scheduler, adversarial stops)",
        ["workload", "mirrored k", "runs", "gathered", "success%", "mean rounds"],
    )
    for workload in WORKLOADS:
        for k in (0, 1, n // 2, n):
            results = []
            for seed in seeds:
                sim = Simulation(
                    WaitFreeGather(),
                    generate(workload, n, seed),
                    scheduler=RoundRobin(),
                    movement=AdversarialStop(0.3),
                    mirrored=set(range(k)),
                    seed=seed,
                    max_rounds=8_000,
                )
                results.append(sim.run())
            summary = summarize_runs(results)
            table.add_row(
                workload,
                k,
                summary.runs,
                summary.gathered,
                100.0 * summary.success_rate,
                summary.mean_rounds_gathered,
            )
    table.add_note(
        "k = n is a consistent (wholly mirrored) world and must match "
        "k = 0 exactly; intermediate k mixes handedness.  Reflections "
        "preserve incidence, so mirrored side-steps stay collision-free; "
        "only mirror-tied elections could split, and no generated "
        "workload reaches one."
    )
    table.add_note(
        "identical round counts across k are real, not a plumbing bug: "
        "trajectories do diverge mid-run (mirrored robots side-step the "
        "other way), but the detours are duration-symmetric, so the "
        "runs re-synchronize on the same gathering point in the same "
        "number of rounds."
    )
    return [table]
