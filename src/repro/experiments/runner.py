"""Shared experiment plumbing: build-and-run simulation batches.

Experiments declare *scenarios* (workload kind, team size, fault budget,
scheduler, movement model, algorithm) and the runner executes them over a
seed range, returning raw results for the experiment module to fold into
its table.  Everything is deterministic in the seed.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from functools import partial
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from ..algorithms import ALGORITHMS, GatheringAlgorithm
from ..geometry import kernels
from ..sim import (
    AdversarialStop,
    CollusiveStop,
    HalfSplitAdversary,
    CrashAfterMove,
    CrashAtRounds,
    CrashElected,
    FullySynchronous,
    LaggardAdversary,
    NoCrashes,
    RandomCrashes,
    RandomStop,
    RandomSubset,
    RigidMovement,
    RoundRobin,
    Simulation,
    SimulationResult,
)
from ..workloads import generate

__all__ = [
    "Scenario",
    "run_scenario",
    "run_batch",
    "parallel_map",
    "executor",
    "make_scheduler",
    "make_crashes",
    "make_movement",
]


#: Scheduler factories by name; fresh instances per run (schedulers may
#: be stateful).
_SCHEDULERS: Dict[str, Callable[[], object]] = {
    "fsync": FullySynchronous,
    "round-robin": RoundRobin,
    "random": lambda: RandomSubset(0.5),
    "laggard": LaggardAdversary,
    "half-split": HalfSplitAdversary,
}

_MOVEMENTS: Dict[str, Callable[[], object]] = {
    "rigid": RigidMovement,
    "adversarial-stop": lambda: AdversarialStop(0.2),
    "random-stop": lambda: RandomStop(0.05),
    "collusive-stop": lambda: CollusiveStop(0.2),
}


def make_scheduler(name: str):
    """Fresh scheduler instance by registry name."""
    return _SCHEDULERS[name]()


def make_movement(name: str):
    """Fresh movement model instance by registry name."""
    return _MOVEMENTS[name]()


def make_crashes(kind: str, f: int):
    """Fresh crash adversary: ``none | random | after-move | elected``."""
    if f == 0 or kind == "none":
        return NoCrashes()
    if kind == "random":
        return RandomCrashes(f=f, rate=0.25)
    if kind == "after-move":
        return CrashAfterMove(f=f)
    if kind == "elected":
        return CrashElected(f=f)
    raise ValueError(f"unknown crash adversary kind {kind!r}")


@dataclass(frozen=True)
class Scenario:
    """One cell of an experiment matrix."""

    workload: str
    n: int
    algorithm: str = "wait-free-gather"
    scheduler: str = "random"
    crashes: str = "random"
    f: int = 0
    movement: str = "random-stop"
    max_rounds: int = 20_000
    frames: str = "random"
    halt_on_bivalent: bool = True

    def label(self) -> str:
        return (
            f"{self.workload}/n={self.n}/f={self.f}/{self.scheduler}/"
            f"{self.crashes}/{self.movement}"
        )


def run_scenario(scenario: Scenario, seed: int) -> SimulationResult:
    """Execute one scenario with one seed (fully deterministic)."""
    points = generate(scenario.workload, scenario.n, seed)
    algorithm: GatheringAlgorithm = ALGORITHMS[scenario.algorithm]()
    sim = Simulation(
        algorithm,
        points,
        scheduler=make_scheduler(scenario.scheduler),
        crash_adversary=make_crashes(scenario.crashes, scenario.f),
        movement=make_movement(scenario.movement),
        seed=seed * 2654435761 % (2**31),
        frames=scenario.frames,
        max_rounds=scenario.max_rounds,
        halt_on_bivalent=scenario.halt_on_bivalent,
    )
    return sim.run()


@contextmanager
def executor(workers: Optional[int]) -> Iterator[Optional[ProcessPoolExecutor]]:
    """Shared worker pool for a series of batches (``None`` = sequential).

    Creating a process pool costs real time, so experiments that call
    :func:`run_batch` per matrix cell open one pool here and thread it
    through every call.  The initializer propagates the parent's kernel
    backend choice so worker processes compute on the same backend even
    when it was selected via :func:`repro.geometry.kernels.set_backend`
    rather than the environment variable.
    """
    if not workers or workers <= 1:
        yield None
        return
    pool = ProcessPoolExecutor(
        max_workers=workers,
        initializer=kernels.set_backend,
        initargs=(kernels.get_backend(),),
    )
    try:
        yield pool
    finally:
        pool.shutdown()


def parallel_map(
    fn: Callable,
    items: Sequence,
    workers: Optional[int] = None,
    pool: Optional[ProcessPoolExecutor] = None,
) -> List:
    """``[fn(x) for x in items]``, optionally across worker processes.

    Results come back in input order regardless of completion order, so
    parallel execution is a pure wall-clock optimization: every item is
    computed by a deterministic function of its own arguments, and the
    returned list is bit-identical to the sequential one.
    """
    items = list(items)
    if pool is not None:
        return list(pool.map(fn, items))
    if workers and workers > 1 and len(items) > 1:
        with executor(workers) as p:
            return list(p.map(fn, items))
    return [fn(x) for x in items]


def run_batch(
    scenario: Scenario,
    seeds: Sequence[int],
    workers: Optional[int] = None,
    pool: Optional[ProcessPoolExecutor] = None,
) -> List[SimulationResult]:
    """Run a scenario over a seed range (optionally in parallel).

    Each seed is an independent deterministic simulation, so sharding by
    seed across processes preserves the exact sequential results.
    """
    return parallel_map(
        partial(run_scenario, scenario), seeds, workers=workers, pool=pool
    )
