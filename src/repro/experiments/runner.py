"""Shared experiment plumbing: build-and-run simulation batches.

Experiments declare *scenarios* (workload kind, team size, fault budget,
scheduler, movement model, algorithm) and the runner executes them over a
seed range, returning raw results for the experiment module to fold into
its table.  Everything is deterministic in the seed.

Execution is *wait-free* (see :mod:`repro.resilience`): a crashed,
killed or hung worker never loses the batch — incomplete seeds are
retried with backoff, broken pools are rebuilt, and with a checkpoint
journal (``journal_path``) an interrupted ``run_batch`` resumes without
re-running completed seeds.  Because every seed is a pure function of
``(scenario, seed)``, retried and resumed results are bit-identical to
a clean sequential run.
"""

from __future__ import annotations

import os
import re
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field, fields, replace
from functools import partial
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union

from .. import obs as _obs
from ..obs import aggregate
from ..resilience import (
    ChaosPolicy,
    ResilientExecutor,
    RunPolicy,
    SweepJournal,
    atomic_write,
)
from ..algorithms import ALGORITHMS, GatheringAlgorithm
from ..geometry import kernels
from ..sim import (
    AdversarialStop,
    CollusiveStop,
    HalfSplitAdversary,
    CrashAfterMove,
    CrashAtRounds,
    CrashElected,
    FullySynchronous,
    LaggardAdversary,
    NoCrashes,
    PerRobotSpeed,
    PoissonScheduler,
    RandomCrashes,
    RandomStop,
    RandomSubset,
    BatchedSimulation,
    RigidMovement,
    RoundRobin,
    Simulation,
    SimulationResult,
)
from ..sim.async_engine import AsyncSimulation
from ..sim.trace import TraceMeta
from ..workloads import generate

__all__ = [
    "Scenario",
    "build_simulation",
    "run_scenario",
    "run_batch",
    "run_batched",
    "DEFAULT_BATCH_SIZE",
    "parallel_map",
    "executor",
    "make_scheduler",
    "make_crashes",
    "make_movement",
]

#: Seeds stepped together per :class:`~repro.sim.BatchedSimulation` in a
#: batched sweep.  Large enough to amortize the per-round kernel calls,
#: small enough that a chunk retry after a worker crash stays cheap.
DEFAULT_BATCH_SIZE = 64


#: Scheduler factories by name; fresh instances per run (schedulers may
#: be stateful).
_SCHEDULERS: Dict[str, Callable[[], object]] = {
    "fsync": FullySynchronous,
    "round-robin": RoundRobin,
    "random": lambda: RandomSubset(0.5),
    "laggard": LaggardAdversary,
    "half-split": HalfSplitAdversary,
    "poisson": lambda: PoissonScheduler(0.5),
}

_MOVEMENTS: Dict[str, Callable[[], object]] = {
    "rigid": RigidMovement,
    "adversarial-stop": lambda: AdversarialStop(0.2),
    "random-stop": lambda: RandomStop(0.05),
    "collusive-stop": lambda: CollusiveStop(0.2),
    # Three speed tiers cycled over robot ids: the fastest robot covers
    # 20x the slowest per activation — wide enough to surface the
    # heterogeneity effects E17 measures, with delta = 0.05 preserved.
    "per-robot-speed": lambda: PerRobotSpeed((1.0, 0.25, 0.05)),
}


def make_scheduler(name: str):
    """Fresh scheduler instance by registry name."""
    return _SCHEDULERS[name]()


def make_movement(name: str):
    """Fresh movement model instance by registry name."""
    return _MOVEMENTS[name]()


def make_crashes(kind: str, f: int):
    """Fresh crash adversary: ``none | random | after-move | elected``."""
    if f == 0 or kind == "none":
        return NoCrashes()
    if kind == "random":
        return RandomCrashes(f=f, rate=0.25)
    if kind == "after-move":
        return CrashAfterMove(f=f)
    if kind == "elected":
        return CrashElected(f=f)
    raise ValueError(f"unknown crash adversary kind {kind!r}")


@dataclass(frozen=True)
class Scenario:
    """One cell of an experiment matrix."""

    workload: str
    n: int
    algorithm: str = "wait-free-gather"
    scheduler: str = "random"
    crashes: str = "random"
    f: int = 0
    movement: str = "random-stop"
    max_rounds: int = 20_000
    frames: str = "random"
    halt_on_bivalent: bool = True
    #: Execution model: ``"atom"`` (the paper's semi-synchronous rounds),
    #: ``"async"`` (the CORDA tick engine; ``max_rounds`` then bounds
    #: ticks) or ``"batched"`` (the structure-of-arrays engine stepping
    #: many seeds per vectorized round, seed-equivalent to ``"atom"``).
    #: Part of the scenario — and therefore of the trace schema — so
    #: archived ASYNC runs replay on the right engine.
    engine: str = "atom"
    #: Finite visibility radius threaded into every LOOK snapshot
    #: (``None`` = the paper's unlimited visibility).  A new field with a
    #: default, so traces archived before it existed keep loading.
    visibility: Optional[float] = None

    def label(self) -> str:
        prefix = "" if self.engine == "atom" else f"{self.engine}/"
        suffix = (
            "" if self.visibility is None else f"/vis={self.visibility:g}"
        )
        return (
            f"{prefix}{self.workload}/n={self.n}/f={self.f}/{self.scheduler}/"
            f"{self.crashes}/{self.movement}{suffix}"
        )

    def to_dict(self) -> dict:
        """Canonical JSON-ready form — the trace schema's scenario block."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        """Inverse of :meth:`to_dict`; rejects unknown keys loudly so a
        trace written by a newer schema never half-loads."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown Scenario fields: {sorted(unknown)}")
        return cls(**data)

    def engine_seed(self, seed: int) -> int:
        """The engine seed derived from a sweep seed (Knuth multiplicative
        hash, decorrelating neighbouring sweep seeds)."""
        return seed * 2654435761 % (2**31)


def build_simulation(
    scenario: Scenario,
    seed: int,
    *,
    engine_seed: Optional[int] = None,
    record_trace: bool = False,
) -> Union[Simulation, AsyncSimulation]:
    """The one construction path from a scenario to an engine instance.

    ``repro check --replay`` rebuilds archived runs through this exact
    function, so anything that influences the execution must flow from
    the :class:`Scenario` (plus the two seeds) — never from ambient
    state.  ``engine_seed`` defaults to :meth:`Scenario.engine_seed`;
    the CLI ``simulate`` command passes the raw user seed instead.
    ``scenario.engine`` selects the execution model; for ``"async"``
    the scenario's ``max_rounds`` bounds scheduler ticks.
    """
    points = generate(scenario.workload, scenario.n, seed)
    algorithm: GatheringAlgorithm = ALGORITHMS[scenario.algorithm]()
    resolved_seed = (
        scenario.engine_seed(seed) if engine_seed is None else engine_seed
    )
    if scenario.engine == "async":
        return AsyncSimulation(
            algorithm,
            points,
            scheduler=make_scheduler(scenario.scheduler),
            crash_adversary=make_crashes(scenario.crashes, scenario.f),
            movement=make_movement(scenario.movement),
            seed=resolved_seed,
            frames=scenario.frames,
            max_ticks=scenario.max_rounds,
            halt_on_bivalent=scenario.halt_on_bivalent,
            record_trace=record_trace,
            visibility=scenario.visibility,
        )
    if scenario.engine == "batched":
        raise ValueError(
            "the batched engine steps many seeds per instance; build it "
            "through run_batched()/run_batch(), not build_simulation()"
        )
    if scenario.engine != "atom":
        raise ValueError(f"unknown engine {scenario.engine!r}")
    return Simulation(
        algorithm,
        points,
        scheduler=make_scheduler(scenario.scheduler),
        crash_adversary=make_crashes(scenario.crashes, scenario.f),
        movement=make_movement(scenario.movement),
        seed=resolved_seed,
        frames=scenario.frames,
        max_rounds=scenario.max_rounds,
        halt_on_bivalent=scenario.halt_on_bivalent,
        record_trace=record_trace,
        visibility=scenario.visibility,
    )


def run_scenario(
    scenario: Scenario,
    seed: int,
    *,
    engine_seed: Optional[int] = None,
    record_trace: bool = False,
) -> SimulationResult:
    """Execute one scenario with one seed (fully deterministic).

    With ``record_trace`` the result's trace carries a full
    :class:`~repro.sim.trace.TraceMeta` block, which is what makes the
    archive self-describing: ``repro check`` can re-simulate it from the
    JSON alone.

    A ``"batched"`` scenario runs the seed through a one-sim
    :class:`~repro.sim.BatchedSimulation` (seed-equivalent to the scalar
    engine).  The batched engine keeps no per-round trace, so
    ``record_trace`` is rejected — replay with ``engine="atom"`` instead,
    which reproduces the same run.
    """
    if scenario.engine == "batched":
        if record_trace:
            raise ValueError(
                "the batched engine records no trace; replay with "
                "engine='atom' (seed-equivalent by the equivalence suite)"
            )
        before = aggregate.capture_before() if _obs.state.enabled else None
        engine_seeds = None if engine_seed is None else [engine_seed]
        result = run_batched(scenario, [seed], engine_seeds=engine_seeds)[0]
        if _obs.state.enabled:
            _obs.metrics.inc("runner.runs")
            _obs.metrics.inc("runner.rounds", result.rounds)
            result.obs = aggregate.seed_payload(before)
        return result
    # The capture point precedes the build: workload generation and
    # algorithm setup do real geometry, and that work belongs to the
    # seed's delta — otherwise it vanishes between payload windows.
    before = aggregate.capture_before() if _obs.state.enabled else None
    sim = build_simulation(
        scenario, seed, engine_seed=engine_seed, record_trace=record_trace
    )
    started = time.perf_counter() if _obs.state.enabled else 0.0
    result = sim.run()
    if _obs.state.enabled:
        # Per-worker throughput: keyed by pid so a pooled sweep shows one
        # row per worker process when snapshots are merged by the CLI.
        elapsed = time.perf_counter() - started
        _obs.metrics.inc("runner.runs")
        _obs.metrics.inc("runner.rounds", result.rounds)
        _obs.metrics.observe("runner.run_seconds", elapsed)
        _obs.metrics.observe(f"runner.worker.{os.getpid()}.run_seconds", elapsed)
        # The seed's exact registry delta + span tail rides home on the
        # result, so a pooled sweep's parent can aggregate what each
        # worker recorded (repro sweep --obs).  Computed from snapshots,
        # never by resetting the registry — the cumulative view that
        # `repro experiment --obs` prints must survive.
        result.obs = aggregate.seed_payload(before)
    if result.trace is not None:
        result.trace.meta = TraceMeta.for_run(
            scenario=scenario.to_dict(),
            seed=seed,
            engine_seed=sim.seed,
            tol=sim.tol,
            engine=scenario.engine,
        )
    return result


def _run_batched_chunk(
    scenario: Scenario,
    seeds: Sequence[int],
    engine_seeds: Optional[Sequence[int]] = None,
) -> List[SimulationResult]:
    """One :class:`~repro.sim.BatchedSimulation` over ``seeds``.

    Module-level so a pooled batched sweep can pickle
    ``partial(_run_batched_chunk, scenario)`` to its workers.  Per-sim
    results depend only on that sim's own seed (the batched kernels are
    padding-invariant), so chunk composition never affects results —
    which is what lets ``--resume`` re-chunk the remaining seeds freely.

    ``scenario.frames`` is deliberately ignored: the algorithm is frame
    equivariant (checked by the invariance suite), so the batched engine
    computes every snapshot in the global frame once per sim instead of
    once per robot.
    """
    seeds = list(seeds)
    if scenario.visibility is not None:
        raise ValueError(
            "the batched engine computes one global snapshot per sim and "
            "cannot truncate per-robot views; run visibility scenarios on "
            "engine='atom' or 'async'"
        )
    if engine_seeds is None:
        engine_seeds = [scenario.engine_seed(seed) for seed in seeds]
    sim = BatchedSimulation(
        [ALGORITHMS[scenario.algorithm]() for _ in seeds],
        [generate(scenario.workload, scenario.n, seed) for seed in seeds],
        schedulers=[make_scheduler(scenario.scheduler) for _ in seeds],
        crash_adversaries=[
            make_crashes(scenario.crashes, scenario.f) for _ in seeds
        ],
        movements=[make_movement(scenario.movement) for _ in seeds],
        seeds=list(engine_seeds),
        max_rounds=scenario.max_rounds,
        halt_on_bivalent=scenario.halt_on_bivalent,
    )
    return sim.run_all()


def run_batched(
    scenario: Scenario,
    seeds: Sequence[int],
    *,
    batch_size: Optional[int] = None,
    engine_seeds: Optional[Sequence[int]] = None,
) -> List[SimulationResult]:
    """Run a scenario over ``seeds`` on the batched engine, in seed order.

    Seeds are stepped ``batch_size`` (default
    :data:`DEFAULT_BATCH_SIZE`) at a time through
    :class:`~repro.sim.BatchedSimulation`; each result is
    seed-equivalent to :func:`run_scenario` on the ``"atom"`` engine and
    independent of the chunking (kernel padding is inert), so any
    ``batch_size`` returns the same results.
    """
    seeds = list(seeds)
    size = batch_size or DEFAULT_BATCH_SIZE
    if size <= 0:
        raise ValueError(f"batch_size must be positive, got {size}")
    results: List[SimulationResult] = []
    for i in range(0, len(seeds), size):
        chunk_engine_seeds = (
            None if engine_seeds is None else list(engine_seeds[i : i + size])
        )
        results.extend(
            _run_batched_chunk(
                scenario, seeds[i : i + size], chunk_engine_seeds
            )
        )
    return results


def _pin_backend(name: str) -> None:
    """Worker-side backend pin: process state *and* environment.

    Exporting ``REPRO_BACKEND`` matters beyond documentation — any
    grandchild process a worker spawns (the differential checker, a
    nested pool on a spawn-start platform) resolves its backend from the
    environment at import time, so a worker that only called
    :func:`set_backend` would hand its children the wrong default.
    """
    os.environ["REPRO_BACKEND"] = name
    kernels.set_backend(name)


def _call_pinned(fn: Callable, backend_name: str, item):
    """Run ``fn(item)`` with the kernel backend pinned to the *caller's*
    choice at submission time (module-level so it pickles)."""
    if kernels.get_backend() != backend_name:
        _pin_backend(backend_name)
    return fn(item)


@contextmanager
def executor(
    workers: Optional[int], policy: Optional[RunPolicy] = None
) -> Iterator[Optional[ResilientExecutor]]:
    """Shared worker pool for a series of batches (``None`` = sequential).

    Creating a process pool costs real time, so experiments that call
    :func:`run_batch` per matrix cell open one pool here and thread it
    through every call.  The yielded object is a
    :class:`~repro.resilience.ResilientExecutor`: it rebuilds its
    underlying pool transparently when a worker dies or hangs, and its
    teardown cancels queued futures so Ctrl-C never hangs behind a full
    queue.  The initializer pins the parent's kernel backend choice
    (state + ``REPRO_BACKEND``) so worker processes compute on the same
    backend even on spawn-start platforms and even when it was selected
    via :func:`repro.geometry.kernels.set_backend` rather than the
    environment variable.  :func:`parallel_map` additionally re-pins per
    call, so a backend switch between batches (as in the differential
    checker) reaches workers created earlier.
    """
    if not workers or workers <= 1:
        yield None
        return
    pool = ResilientExecutor(
        workers,
        policy=policy,
        initializer=_pin_backend,
        initargs=(kernels.get_backend(),),
    )
    try:
        yield pool
    finally:
        pool.shutdown(cancel=True)


def parallel_map(
    fn: Callable,
    items: Sequence,
    workers: Optional[int] = None,
    pool: Optional[ResilientExecutor] = None,
    *,
    policy: Optional[RunPolicy] = None,
    chaos: Optional[ChaosPolicy] = None,
    keys: Optional[Sequence[str]] = None,
    on_result: Optional[Callable[[int, object], None]] = None,
    on_failure: Optional[Callable[[str, BaseException, bool], None]] = None,
) -> List:
    """``[fn(x) for x in items]``, optionally across worker processes.

    Results come back in input order regardless of completion order, so
    parallel execution is a pure wall-clock optimization: every item is
    computed by a deterministic function of its own arguments, and the
    returned list is bit-identical to the sequential one — including
    under retries, timeouts and pool rebuilds (``policy``) and injected
    chaos faults (``chaos``, default: parsed from ``REPRO_CHAOS``).
    The backend active in the calling process at call time is pinned
    around every worker-side invocation, so long-lived pools never
    compute on a backend the caller has since switched away from.

    ``on_result(index, value)`` fires as items complete (completion
    order) — the checkpoint journal of :func:`run_batch` hangs off it.
    ``on_failure(key, exc, strike)`` fires per failed attempt — the
    sweep dashboard's retry/timeout counters hang off it.  A plain
    legacy :class:`concurrent.futures.ProcessPoolExecutor` is still
    accepted as ``pool`` and used via ``pool.map`` (no resilience).
    """
    items = list(items)
    call = partial(_call_pinned, fn, kernels.get_backend())
    if chaos is None:
        chaos = ChaosPolicy.from_env()
    if isinstance(pool, ProcessPoolExecutor):
        return list(pool.map(call, items))
    if isinstance(pool, ResilientExecutor):
        return pool.map_resilient(
            call, items, keys=keys, chaos=chaos, on_result=on_result,
            on_failure=on_failure, policy=policy,
        )
    if workers and workers > 1 and len(items) > 1:
        with executor(workers, policy=policy) as shared:
            return shared.map_resilient(
                call, items, keys=keys, chaos=chaos, on_result=on_result,
                on_failure=on_failure, policy=policy,
            )
    if policy is not None or on_result is not None or (
        chaos is not None and chaos.enabled
    ):
        # Serial but resilient: same retry/chaos/checkpoint machinery,
        # no process pool (chaos kills become in-process exceptions).
        serial = ResilientExecutor(None, policy=policy)
        return serial.map_resilient(
            call, items, keys=keys, chaos=chaos, on_result=on_result,
            on_failure=on_failure, policy=policy,
        )
    return [fn(x) for x in items]


def _archive_slug(label: str) -> str:
    """Filesystem-safe corpus file stem for a scenario label."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", label).strip("_")


def run_batch(
    scenario: Scenario,
    seeds: Sequence[int],
    workers: Optional[int] = None,
    pool: Optional[ResilientExecutor] = None,
    archive_dir: Optional[str] = None,
    archive_if: Optional[Callable[[SimulationResult], bool]] = None,
    *,
    policy: Optional[RunPolicy] = None,
    chaos: Optional[ChaosPolicy] = None,
    journal_path: Optional[str] = None,
    resume: bool = False,
    batch_size: Optional[int] = None,
    on_seed_result: Optional[
        Callable[[int, SimulationResult], None]
    ] = None,
    on_failure: Optional[Callable[[str, BaseException, bool], None]] = None,
) -> List[SimulationResult]:
    """Run a scenario over a seed range (optionally in parallel).

    Each seed is an independent deterministic simulation, so sharding by
    seed across processes preserves the exact sequential results —
    including under the resilience machinery: ``policy`` configures
    per-seed timeouts, bounded retries with backoff, and pool-rebuild
    limits; ``chaos`` (default: ``REPRO_CHAOS``) injects deterministic
    faults for the chaos suite.

    ``journal_path`` turns on crash-safe checkpointing: every completed
    seed is appended (fsynced) to a ``repro-sweep-v1`` JSONL journal the
    moment it finishes, and with ``resume=True`` seeds already in the
    journal are *not* re-run — their recorded results (bit-identical by
    float64 round-trip) are returned in place.  A sweep killed at any
    point therefore resumes from its last checkpoint.

    ``archive_dir`` (or the ``REPRO_ARCHIVE_DIR`` environment variable)
    turns on failure archiving: every seed whose result satisfies
    ``archive_if`` (default: did not gather and was not a detected
    impossibility) is re-simulated with trace recording — bit-identical
    to the sweep run, by determinism — and written atomically to the
    directory as a self-describing trace JSON that ``repro check
    --replay`` accepts.  The archived corpus is what CI replays on both
    backends.

    ``on_seed_result(seed, result)`` fires per completed seed —
    journal-resumed seeds first (their recorded results), then fresh
    seeds in completion order; ``on_failure(key, exc, strike)`` fires
    per failed attempt.  The live sweep dashboard hangs off both.

    A ``"batched"`` scenario shards the seed range into chunks of
    ``batch_size`` (default :data:`DEFAULT_BATCH_SIZE`) and steps each
    chunk through one :class:`~repro.sim.BatchedSimulation` — the work
    unit distributed to the pool, retried, and journalled is the chunk,
    but the journal records and ``on_seed_result`` fires per seed, so
    dashboard/aggregator/resume behave exactly as on the scalar engines
    (a resume re-chunks the remaining seeds; results are
    chunk-invariant).  Failure archiving replays on ``engine="atom"``:
    the batched engine keeps no trace, and the equivalence suite makes
    the scalar replay reproduce the batched run.
    """
    seeds = list(seeds)
    completed: Dict[int, SimulationResult] = {}
    journal: Optional[SweepJournal] = None
    if journal_path:
        journal = SweepJournal.open(
            journal_path, scenario.to_dict(), resume=resume
        )
        completed = journal.completed() if resume else {}
    todo = [seed for seed in seeds if seed not in completed]
    label = scenario.label()

    if on_seed_result is not None:
        for seed in seeds:
            if seed in completed:
                on_seed_result(seed, completed[seed])

    def checkpoint(index: int, result: SimulationResult) -> None:
        if journal is not None:
            journal.append(todo[index], result)
        if on_seed_result is not None:
            on_seed_result(todo[index], result)

    try:
        if scenario.engine == "batched":
            size = batch_size or DEFAULT_BATCH_SIZE
            chunks = [todo[i : i + size] for i in range(0, len(todo), size)]

            def checkpoint_chunk(index: int, results) -> None:
                for seed, result in zip(chunks[index], results):
                    if journal is not None:
                        journal.append(seed, result)
                    if on_seed_result is not None:
                        on_seed_result(seed, result)

            fresh_chunks = parallel_map(
                partial(_run_batched_chunk, scenario),
                chunks,
                workers=workers,
                pool=pool,
                policy=policy,
                chaos=chaos,
                keys=[
                    f"{label}#seeds{chunk[0]}..{chunk[-1]}"
                    for chunk in chunks
                ],
                on_result=checkpoint_chunk,
                on_failure=on_failure,
            )
            # Chunks are contiguous slices of ``todo``, so flattening
            # restores exact todo order for the zip below.
            fresh = [r for chunk in fresh_chunks for r in chunk]
        else:
            fresh = parallel_map(
                partial(run_scenario, scenario),
                todo,
                workers=workers,
                pool=pool,
                policy=policy,
                chaos=chaos,
                keys=[f"{label}#seed{seed}" for seed in todo],
                on_result=checkpoint,
                on_failure=on_failure,
            )
    finally:
        if journal is not None:
            journal.close()

    by_seed = dict(completed)
    by_seed.update(zip(todo, fresh))
    results = [by_seed[seed] for seed in seeds]

    archive_dir = archive_dir or os.environ.get("REPRO_ARCHIVE_DIR")
    if archive_dir:
        should_archive = archive_if or (
            lambda r: not r.gathered and r.verdict != "impossible"
        )
        # The batched engine keeps no trace; archive the seed-equivalent
        # scalar run instead (the trace then replays on the atom engine).
        replay_scenario = (
            replace(scenario, engine="atom")
            if scenario.engine == "batched"
            else scenario
        )
        for seed, result in zip(seeds, results):
            if not should_archive(result):
                continue
            replayed = run_scenario(replay_scenario, seed, record_trace=True)
            path = os.path.join(
                archive_dir,
                f"{_archive_slug(scenario.label())}-seed{seed}.json",
            )
            atomic_write(path, replayed.trace.to_json(indent=2))
    return results
