"""Shared experiment plumbing: build-and-run simulation batches.

Experiments declare *scenarios* (workload kind, team size, fault budget,
scheduler, movement model, algorithm) and the runner executes them over a
seed range, returning raw results for the experiment module to fold into
its table.  Everything is deterministic in the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from ..algorithms import ALGORITHMS, GatheringAlgorithm
from ..sim import (
    AdversarialStop,
    CollusiveStop,
    HalfSplitAdversary,
    CrashAfterMove,
    CrashAtRounds,
    CrashElected,
    FullySynchronous,
    LaggardAdversary,
    NoCrashes,
    RandomCrashes,
    RandomStop,
    RandomSubset,
    RigidMovement,
    RoundRobin,
    Simulation,
    SimulationResult,
)
from ..workloads import generate

__all__ = ["Scenario", "run_scenario", "run_batch", "make_scheduler", "make_crashes", "make_movement"]


#: Scheduler factories by name; fresh instances per run (schedulers may
#: be stateful).
_SCHEDULERS: Dict[str, Callable[[], object]] = {
    "fsync": FullySynchronous,
    "round-robin": RoundRobin,
    "random": lambda: RandomSubset(0.5),
    "laggard": LaggardAdversary,
    "half-split": HalfSplitAdversary,
}

_MOVEMENTS: Dict[str, Callable[[], object]] = {
    "rigid": RigidMovement,
    "adversarial-stop": lambda: AdversarialStop(0.2),
    "random-stop": lambda: RandomStop(0.05),
    "collusive-stop": lambda: CollusiveStop(0.2),
}


def make_scheduler(name: str):
    """Fresh scheduler instance by registry name."""
    return _SCHEDULERS[name]()


def make_movement(name: str):
    """Fresh movement model instance by registry name."""
    return _MOVEMENTS[name]()


def make_crashes(kind: str, f: int):
    """Fresh crash adversary: ``none | random | after-move | elected``."""
    if f == 0 or kind == "none":
        return NoCrashes()
    if kind == "random":
        return RandomCrashes(f=f, rate=0.25)
    if kind == "after-move":
        return CrashAfterMove(f=f)
    if kind == "elected":
        return CrashElected(f=f)
    raise ValueError(f"unknown crash adversary kind {kind!r}")


@dataclass(frozen=True)
class Scenario:
    """One cell of an experiment matrix."""

    workload: str
    n: int
    algorithm: str = "wait-free-gather"
    scheduler: str = "random"
    crashes: str = "random"
    f: int = 0
    movement: str = "random-stop"
    max_rounds: int = 20_000
    frames: str = "random"
    halt_on_bivalent: bool = True

    def label(self) -> str:
        return (
            f"{self.workload}/n={self.n}/f={self.f}/{self.scheduler}/"
            f"{self.crashes}/{self.movement}"
        )


def run_scenario(scenario: Scenario, seed: int) -> SimulationResult:
    """Execute one scenario with one seed (fully deterministic)."""
    points = generate(scenario.workload, scenario.n, seed)
    algorithm: GatheringAlgorithm = ALGORITHMS[scenario.algorithm]()
    sim = Simulation(
        algorithm,
        points,
        scheduler=make_scheduler(scenario.scheduler),
        crash_adversary=make_crashes(scenario.crashes, scenario.f),
        movement=make_movement(scenario.movement),
        seed=seed * 2654435761 % (2**31),
        frames=scenario.frames,
        max_rounds=scenario.max_rounds,
        halt_on_bivalent=scenario.halt_on_bivalent,
    )
    return sim.run()


def run_batch(scenario: Scenario, seeds: Sequence[int]) -> List[SimulationResult]:
    """Run a scenario over a seed range."""
    return [run_scenario(scenario, seed) for seed in seeds]
