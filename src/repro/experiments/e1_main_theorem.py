"""Experiment E1 — Theorem 5.1, the headline claim.

*Claim*: ``WAIT-FREE-GATHER`` gathers all correct robots from **any**
non-bivalent initial configuration, for **any** number of crashes
``f < n``, under every fair ATOM schedule and movement adversary.

*Design*: a full factorial over configuration classes x team sizes x
fault budgets x schedulers, with randomized movement interruptions, many
seeds per cell.  The paper predicts a success rate of exactly 100% in
every cell; any other number is a reproduction failure.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim import summarize_runs
from .report import Table
from .runner import Scenario, executor, run_batch

__all__ = ["run"]

WORKLOADS = [
    "asymmetric",
    "multiple",
    "linear-unique",
    "linear-interval",
    "regular-polygon",
    "biangular",
    "qr-occupied-center",
    "near-bivalent",
]

SCHEDULERS = ["fsync", "round-robin", "random", "laggard"]


def run(quick: bool = True, workers: Optional[int] = None) -> List[Table]:
    """Return the E1 tables (success by class/f, success by scheduler).

    ``workers`` shards the seed sweeps of every matrix cell over that
    many processes (one shared pool for the whole experiment); results
    are identical to the sequential run.
    """
    if quick:
        sizes, seeds, schedulers = [6, 8], range(5), ["fsync", "random"]
    else:
        sizes, seeds, schedulers = [6, 8, 12, 16], range(30), SCHEDULERS

    with executor(workers) as pool:
        return _run_tables(sizes, seeds, schedulers, pool)


def _run_tables(sizes, seeds, schedulers, pool) -> List[Table]:
    by_class = Table(
        "E1a",
        "Theorem 5.1: gathering success rate by initial class and fault "
        "budget (wait-free-gather; paper predicts 100% everywhere)",
        ["workload", "n", "f", "runs", "gathered", "success%", "mean rounds"],
    )
    for workload in WORKLOADS:
        for n in sizes:
            for f in (0, 1, n // 2, n - 1):
                results = []
                for scheduler in schedulers:
                    scenario = Scenario(
                        workload=workload,
                        n=n,
                        f=f,
                        scheduler=scheduler,
                        crashes="random",
                        movement="random-stop",
                    )
                    results.extend(run_batch(scenario, seeds, pool=pool))
                summary = summarize_runs(results)
                by_class.add_row(
                    workload,
                    n,
                    f,
                    summary.runs,
                    summary.gathered,
                    100.0 * summary.success_rate,
                    summary.mean_rounds_gathered,
                )

    by_adversary = Table(
        "E1b",
        "Theorem 5.1: success under proof-targeted adversaries "
        "(crash-after-move with adversarial-stop moves; crash-elected "
        "with rigid moves), f = n - 1",
        ["scheduler", "crash adversary", "runs", "gathered", "success%", "mean rounds"],
    )
    n = sizes[-1]
    for scheduler in schedulers:
        for crashes, movement in (
            ("after-move", "adversarial-stop"),
            ("elected", "rigid"),
        ):
            results = []
            for workload in ("asymmetric", "regular-polygon", "near-bivalent"):
                scenario = Scenario(
                    workload=workload,
                    n=n,
                    f=n - 1,
                    scheduler=scheduler,
                    crashes=crashes,
                    movement=movement,
                )
                results.extend(run_batch(scenario, seeds, pool=pool))
            summary = summarize_runs(results)
            by_adversary.add_row(
                scheduler,
                crashes,
                summary.runs,
                summary.gathered,
                100.0 * summary.success_rate,
                summary.mean_rounds_gathered,
            )
    return [by_class, by_adversary]
