"""Experiment E2 — Lemma 5.2: the bivalent configuration is hopeless.

*Claims validated*:

1. ``WAIT-FREE-GATHER`` recognizes a bivalent snapshot and refuses
   (engine verdict ``impossible``) instead of thrashing.
2. The impossibility is adversary-driven, exactly as in the paper's
   ``n = 2`` argument: under the cluster-alternating ``half-split``
   scheduler no baseline ever gathers from ``B`` (the centroid chaser
   stays bivalent forever, the naive leader election ties and freezes)
   — while under FSYNC the centroid baseline *does* escape, showing the
   scheduler, not the geometry, is what kills determinism.
3. One robot of asymmetry suffices: ``near-bivalent`` starts gather
   100% of the time with the paper's algorithm.
"""

from __future__ import annotations

from typing import List

from ..sim import summarize_runs
from .report import Table
from .runner import Scenario, run_batch

__all__ = ["run"]


def run(quick: bool = True) -> List[Table]:
    seeds = range(5) if quick else range(30)
    sizes = [6, 8] if quick else [4, 6, 8, 12]

    table = Table(
        "E2",
        "Lemma 5.2: behaviour from bivalent starts, and recovery one "
        "robot away from them",
        [
            "workload",
            "algorithm",
            "scheduler",
            "n",
            "runs",
            "gathered",
            "impossible",
            "stalled",
            "timeout",
        ],
    )
    for n in sizes:
        cells = [
            # The paper's algorithm refuses B outright.
            ("bivalent", "wait-free-gather", "fsync", True),
            # Baselines observed from B: the adversarial half-split
            # schedule preserves bivalence forever ...
            ("bivalent", "naive-leader", "half-split", False),
            ("bivalent", "centroid", "half-split", False),
            # ... while full synchrony lets the centroid rule collapse
            # both clusters onto one point in a single round.
            ("bivalent", "centroid", "fsync", False),
            # One stray robot of asymmetry: gathering is back (Thm 5.1).
            ("near-bivalent", "wait-free-gather", "fsync", True),
            ("near-bivalent", "wait-free-gather", "half-split", True),
        ]
        for workload, algorithm, scheduler, halt in cells:
            scenario = Scenario(
                workload=workload,
                n=n,
                algorithm=algorithm,
                scheduler=scheduler,
                crashes="none",
                f=0,
                movement="rigid",
                max_rounds=2_000,
                halt_on_bivalent=halt,
            )
            summary = summarize_runs(run_batch(scenario, seeds))
            table.add_row(
                workload,
                algorithm,
                scheduler,
                n,
                summary.runs,
                summary.gathered,
                summary.impossible,
                summary.stalled,
                summary.timed_out,
            )
    table.add_note(
        "half-split activates one bivalent cluster per round - the "
        "adversary from the paper's two-robot impossibility argument."
    )
    return [table]
