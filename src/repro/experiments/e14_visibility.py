"""Experiment E14 — ablating the unlimited-visibility assumption.

The paper's robots see the *entire* configuration; it explicitly leaves
limited-visibility models out of scope (Section I).  This experiment
truncates every snapshot to a visibility radius ``R`` and sweeps ``R``
downwards to find where — and how — the algorithm breaks.

*Expected shape*: a sharp crossover around the workload's connectivity
scale.  Above it, missing a few far robots is harmless (they are still
headed for the same invariant targets).  Below it, the visibility graph
disconnects and each component gathers *separately* — and when two
components happen to contract to equal-sized stacks, the global
configuration becomes exactly the bivalent ``B``: the algorithm walks
into the trap it provably avoids with full vision.  The table counts
those endings separately because they are the interesting failure mode.
"""

from __future__ import annotations

from typing import List, Optional

from ..algorithms import WaitFreeGather
from ..sim import RandomSubset, Simulation, summarize_runs
from ..workloads import generate
from .report import Table

__all__ = ["run"]

#: Radii swept; None = the paper's unlimited visibility.  Workloads are
#: drawn in a 10 x 10 box (diameter ~14).
RADII = [None, 14.0, 8.0, 6.0, 4.0, 2.0]


def run(quick: bool = True) -> List[Table]:
    seeds = range(6) if quick else range(30)
    n = 8

    table = Table(
        "E14",
        f"visibility-radius sweep (random workloads in a 10x10 box, "
        f"n={n}, random scheduler)",
        [
            "radius",
            "runs",
            "gathered",
            "success%",
            "stalled",
            "global bivalent",
            "timeout",
        ],
    )
    for radius in RADII:
        results = []
        for seed in seeds:
            sim = Simulation(
                WaitFreeGather(),
                generate("random", n, seed),
                scheduler=RandomSubset(0.6),
                visibility=radius,
                seed=seed,
                max_rounds=3_000,
            )
            results.append(sim.run())
        summary = summarize_runs(results)
        table.add_row(
            "unlimited" if radius is None else radius,
            summary.runs,
            summary.gathered,
            100.0 * summary.success_rate,
            summary.stalled,
            summary.impossible,
            summary.timed_out,
        )
    table.add_note(
        "'global bivalent' counts runs where disconnected components "
        "each gathered and their stacks balanced into the configuration "
        "B - limited vision walks the algorithm into the very trap "
        "unlimited vision provably avoids."
    )
    table.add_note(
        "the paper assumes unlimited visibility and claims nothing "
        "below the first row; the crossover locates how much of that "
        "assumption the algorithm actually consumes on this workload "
        "scale."
    )
    return [table]
