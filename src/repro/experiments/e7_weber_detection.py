"""Experiment E7 — Theorem 3.1: quasi-regularity detection, validated.

*Claims*:

1. **Soundness & completeness**: every generated quasi-regular
   configuration (rotationally symmetric, biangular, occupied-center
   wildcard) is detected, and its reported center matches the certified
   numerical Weber point to solver precision (Lemma 3.3).
2. **No false positives**: macroscopically perturbing one robot of a
   quasi-regular configuration destroys detection.
3. **Lemma 3.2 in motion**: moving random subsets of robots part-way
   towards the Weber point leaves the detected center unchanged.
"""

from __future__ import annotations

import random
from typing import List

from ..core import Configuration, classify, quasi_regularity
from ..geometry import Point, geometric_median
from ..workloads import break_symmetry, generate
from .report import Table

__all__ = ["run"]

QR_WORKLOADS = ["regular-polygon", "biangular", "qr-occupied-center"]


def _move_towards(points: List[Point], target: Point, rng: random.Random) -> List[Point]:
    out: List[Point] = []
    for p in points:
        if rng.random() < 0.5:
            t = rng.uniform(0.0, 0.9)
            out.append(p + (target - p) * t)
        else:
            out.append(p)
    return out


def run(quick: bool = True) -> List[Table]:
    seeds = range(10) if quick else range(50)
    sizes = [6, 8] if quick else [6, 8, 10, 12, 14]

    detection = Table(
        "E7a",
        "Theorem 3.1: quasi-regularity detection vs certified numerical "
        "Weber point",
        [
            "workload",
            "n",
            "configs",
            "detected QR",
            "center = WP",
            "max |center - WP|",
        ],
    )
    for workload in QR_WORKLOADS:
        for n in sizes:
            detected = 0
            matched = 0
            worst = 0.0
            count = 0
            for seed in seeds:
                points = generate(workload, n, seed)
                config = Configuration(points)
                count += 1
                qr = quasi_regularity(config)
                if not qr.is_quasi_regular:
                    continue
                detected += 1
                web = geometric_median(points)
                err = qr.center.distance_to(web.point)
                worst = max(worst, err)
                if web.certified and err <= 1e-6:
                    matched += 1
            detection.add_row(workload, n, count, detected, matched, worst)

    negatives = Table(
        "E7b",
        "No false positives: one robot nudged *tangentially* off its ray "
        "must break detection",
        ["workload", "n", "configs", "still detected QR (must be 0)"],
    )
    for workload in QR_WORKLOADS:
        for n in sizes:
            false_pos = 0
            count = 0
            for seed in seeds:
                original = generate(workload, n, seed)
                center = quasi_regularity(Configuration(original)).center
                # Tangential nudge: regularity is purely angular, so a
                # radial displacement would (correctly!) leave the
                # configuration quasi-regular.  Only the perpendicular
                # component is a genuine negative.
                # Occupied-center configurations hold a wildcard robot
                # that can legitimately absorb one dislodged ray
                # (Lemma 3.4), so they need two nudges to become a true
                # negative; the unoccupied-center workloads need one.
                nudges = 2 if workload == "qr-occupied-center" else 1
                points = break_symmetry(
                    original,
                    magnitude=0.3,
                    seed=seed,
                    tangential_about=center,
                    count=nudges,
                )
                config = Configuration(points)
                count += 1
                qr = quasi_regularity(config)
                if qr.is_quasi_regular:
                    false_pos += 1
            negatives.add_row(workload, n, count, false_pos)
    negatives.add_note(
        "a 0.3-unit tangential nudge is ~8 orders of magnitude above the "
        "angular tolerance; surviving detection would mean the detector "
        "rounds noise into structure."
    )

    invariance = Table(
        "E7c",
        "Lemma 3.2: the detected center is invariant under partial "
        "moves towards it",
        ["workload", "n", "move trials", "center drift > 1e-6 (must be 0)"],
    )
    for workload in QR_WORKLOADS:
        for n in sizes:
            drifts = 0
            trials = 0
            for seed in seeds:
                points = generate(workload, n, seed)
                config = Configuration(points)
                qr = quasi_regularity(config)
                if not qr.is_quasi_regular:
                    continue
                rng = random.Random(seed)
                moved = _move_towards(points, qr.center, rng)
                trials += 1
                after = geometric_median(moved)
                if after.point.distance_to(qr.center) > 1e-6:
                    drifts += 1
            invariance.add_row(workload, n, trials, drifts)
    return [detection, negatives, invariance]
