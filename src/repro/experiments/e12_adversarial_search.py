"""Experiment E12 — adversarial *search* for the bivalent trap.

E9 demonstrates the bivalent trap with a hand-crafted attack; E12
removes the hand: a greedy joint adversary (scheduler + all movement
cut-offs, with the collusive stacking primitive in its toolbox) actively
searches for a move sequence leading to ``B``.

*Predictions*:

* against the ablated ``naive-leader`` the search rediscovers the attack
  on the ``unsafe-ray`` workloads (reaches ``B``, score 0);
* against ``WAIT-FREE-GATHER`` the paper proves ``B`` unreachable
  (Lemmas 4.3, 5.6 C1, 5.7): the search must fail on every workload, and
  the minimum bivalence score it ever achieves is the measured safety
  margin (> 0).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..algorithms import ALGORITHMS
from ..analysis.adversary_search import BivalentHunt
from ..workloads import generate
from .report import Table
from .runner import executor, parallel_map

__all__ = ["run"]

WORKLOADS = ["unsafe-ray", "near-bivalent", "multiple", "random"]


def _hunt_one(cell: Tuple[str, str, int, int, int]) -> Tuple[bool, float]:
    """One adversarial hunt, reduced to its two summary fields.

    Module-level so it pickles for the worker pool; only the picklable
    summary crosses the process boundary, not the hunt object.
    """
    algorithm, workload, n, seed, rounds = cell
    hunt = BivalentHunt(
        ALGORITHMS[algorithm](),
        generate(workload, n, seed),
        seed=seed,
        subset_budget=6,
    )
    result = hunt.run(max_rounds=rounds)
    return result.reached_bivalent, result.best_score


def run(quick: bool = True, workers: Optional[int] = None) -> List[Table]:
    seeds = range(4) if quick else range(15)
    sizes = [8] if quick else [6, 8, 12]
    rounds = 40 if quick else 80

    table = Table(
        "E12",
        "Greedy joint-adversary search for the bivalent configuration "
        "(one-step lookahead + collusive stacking primitive)",
        [
            "algorithm",
            "workload",
            "n",
            "hunts",
            "reached B",
            "min score seen",
        ],
    )
    with executor(workers) as pool:
        for algorithm in ("naive-leader", "wait-free-gather"):
            for workload in WORKLOADS:
                for n in sizes:
                    outcomes = parallel_map(
                        _hunt_one,
                        [
                            (algorithm, workload, n, seed, rounds)
                            for seed in seeds
                        ],
                        pool=pool,
                    )
                    reached = sum(1 for hit, _ in outcomes if hit)
                    min_score = min(score for _, score in outcomes)
                    table.add_row(
                        algorithm,
                        workload,
                        n,
                        len(outcomes),
                        reached,
                        min_score,
                    )
    table.add_note(
        "score 0 = bivalent reached; wait-free-gather rows must show "
        "'reached B' = 0 with a strictly positive score floor."
    )
    return [table]
