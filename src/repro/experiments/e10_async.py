"""Experiment E10 — beyond the paper: full asynchrony (ASYNC/CORDA).

The paper proves Theorem 5.1 in the ATOM model only and leaves ASYNC
open.  Here we decouple Look and Move (robots act on stale snapshots;
see :mod:`repro.sim.async_engine`) and measure whether the algorithm
still gathers.

This is an *exploration*, not a reproduction: the paper makes no claim
either way.  Empirical expectation from the structure of the algorithm:
the gathering targets of three of the four cases are stable under
concurrent motion (the max-multiplicity point of ``M`` never loses its
status — Lemma 5.3 C1; the Weber point of ``QR``/``L1W`` is
motion-invariant — Lemma 3.2), and the ``A``-case election converges by
the phi argument, so stale targets mostly remain correct targets.  The
table records gathering rates and the volume of genuinely stale moves.
"""

from __future__ import annotations

from typing import List

from ..algorithms import WaitFreeGather
from ..sim import AsyncSimulation, summarize_runs
from ..workloads import generate
from .report import Table
from .runner import make_crashes, make_movement, make_scheduler

__all__ = ["run"]

WORKLOADS = [
    "asymmetric",
    "multiple",
    "linear-unique",
    "linear-interval",
    "regular-polygon",
    "biangular",
    "near-bivalent",
    "unsafe-ray",
]


def run(quick: bool = True) -> List[Table]:
    seeds = range(4) if quick else range(20)
    sizes = [6, 8] if quick else [6, 8, 12]
    schedulers = ["random", "round-robin"] if quick else [
        "random",
        "round-robin",
        "laggard",
        "half-split",
    ]

    table = Table(
        "E10",
        "ASYNC (stale-snapshot) executions of wait-free-gather with "
        "f = n - 1 crashes - beyond the paper's ATOM guarantee",
        [
            "scheduler",
            "n",
            "runs",
            "gathered",
            "success%",
            "mean ticks",
            "stale moves/run",
        ],
    )
    for scheduler in schedulers:
        for n in sizes:
            results = []
            stale_total = 0
            for workload in WORKLOADS:
                for seed in seeds:
                    sim = AsyncSimulation(
                        WaitFreeGather(),
                        generate(workload, n, seed),
                        scheduler=make_scheduler(scheduler),
                        crash_adversary=make_crashes("random", n - 1),
                        movement=make_movement("random-stop"),
                        seed=seed * 17 + 3,
                        max_ticks=100_000,
                    )
                    results.append(sim.run())
                    stale_total += sim.stale_moves
            summary = summarize_runs(results)
            table.add_row(
                scheduler,
                n,
                summary.runs,
                summary.gathered,
                100.0 * summary.success_rate,
                summary.mean_rounds_gathered,
                stale_total / summary.runs,
            )
    table.add_note(
        "the paper claims nothing here; 100% rows are an empirical "
        "observation, explained by the motion-invariance of the "
        "algorithm's targets (Lemmas 3.2, 5.3 C1)."
    )
    return [table]
