"""Experiment E4 — baseline comparison (the paper's motivation, measured).

*Claims*:

* the classic sequential algorithm gathers fault-free but **deadlocks**
  with a single crash (why [1] was needed);
* the centroid rule converges but does not gather — and with crashes the
  survivors end up far from each other for longer (convergence is not
  gathering, Section I);
* the idealized Weber baseline and the paper's algorithm both gather
  under every fault budget, with comparable round counts — the paper's
  algorithm loses nothing for being finitely computable.

*Shape expectation*: success columns read 100/100/.../100 for
``wait-free-gather`` at every ``f``, and drop to ~0 for ``sequential``
as soon as ``f >= 1``.
"""

from __future__ import annotations

import math
from typing import List

from ..sim import spread, summarize_runs
from .report import Table
from .runner import Scenario, run_batch

__all__ = ["run"]

ALGOS = ["wait-free-gather", "weber-numeric", "sequential", "naive-leader", "centroid"]


def run(quick: bool = True) -> List[Table]:
    seeds = range(5) if quick else range(30)
    n = 8
    budgets = [0, 1, 2] if quick else [0, 1, 2, 4, n - 1]

    table = Table(
        "E4",
        f"Baseline comparison on random workloads (n={n}, random "
        "scheduler, interruptible moves, random crashes)",
        [
            "algorithm",
            "f",
            "runs",
            "gathered%",
            "stalled%",
            "timeout%",
            "mean rounds",
            "final spread",
        ],
    )
    for algorithm in ALGOS:
        for f in budgets:
            scenario = Scenario(
                workload="random",
                n=n,
                algorithm=algorithm,
                scheduler="random",
                crashes="random",
                f=f,
                movement="random-stop",
                max_rounds=1_500,
            )
            results = run_batch(scenario, seeds)
            summary = summarize_runs(results)
            live_spreads = [
                spread(
                    [res.final_positions[rid] for rid in res.live_ids]
                )
                for res in results
            ]
            table.add_row(
                algorithm,
                f,
                summary.runs,
                100.0 * summary.success_rate,
                100.0 * summary.stalled / summary.runs,
                100.0 * summary.timed_out / summary.runs,
                summary.mean_rounds_gathered,
                sum(live_spreads) / len(live_spreads),
            )
    table.add_note(
        "'final spread' is the diameter of the correct robots at the end "
        "- zero means they met even if the verdict timed out."
    )
    table.add_note(
        "sequential deadlocks (stalls) whenever its designated mover "
        "crashes; centroid converges (spread ~ merge tolerance) but only "
        "counts as gathered once within the 1e-9 quantization."
    )
    return [table]
