"""Experiment E16 — sensor noise: how much inaccuracy does the paper's
algorithm absorb?

The paper's robots measure positions exactly.  Physical robots do not:
every LOOK here perturbs each observed teammate position by an isotropic
error of up to ``noise`` (the observer knows itself exactly — it is its
own origin).  Coherently, a sensor that errs by ``noise`` cannot
*resolve* two robots closer than ~``2 * noise`` either, so the observed
multiplicity detection and the gathered predicate run at that effective
resolution ("gathered" = together as far as anyone can tell).

*Measured questions*: does gathering still succeed, at what slowdown,
and how tight is the final physical cluster relative to the resolution?
The structural reason robustness is plausible: every case's target is a
*location of robots* or a robust geometric center, and all of them move
continuously by O(noise) under O(noise) input perturbation — the robots
chase a jittering but convergent target.  The discontinuous parts
(classification flips) produce wrong-but-safe moves for a round: every
class's move is a contraction towards some robot location.
"""

from __future__ import annotations

from typing import List

from ..algorithms import WaitFreeGather
from ..sim import RandomSubset, Simulation, spread, summarize_runs
from ..workloads import generate
from .report import Table

__all__ = ["run"]

NOISES = [0.0, 0.001, 0.01, 0.05, 0.2, 1.0, 2.0]


def run(quick: bool = True) -> List[Table]:
    seeds = range(6) if quick else range(30)
    n = 8

    table = Table(
        "E16",
        f"sensor-noise sweep (random workloads in a 10x10 box, n={n}, "
        "f=2 random crashes, random scheduler)",
        [
            "noise",
            "resolution",
            "runs",
            "gathered",
            "success%",
            "mean rounds",
            "mean final spread",
        ],
    )
    for noise in NOISES:
        results = []
        spreads = []
        for seed in seeds:
            sim = Simulation(
                WaitFreeGather(),
                generate("random", n, seed),
                scheduler=RandomSubset(0.6),
                crash_adversary=None,
                sensor_noise=noise,
                seed=seed,
                max_rounds=5_000,
            )
            result = sim.run()
            results.append(result)
            spreads.append(
                spread([result.final_positions[r] for r in result.live_ids])
            )
        summary = summarize_runs(results)
        table.add_row(
            noise,
            max(1e-9, 2.1 * noise),
            summary.runs,
            summary.gathered,
            100.0 * summary.success_rate,
            summary.mean_rounds_gathered,
            sum(spreads) / len(spreads),
        )
    table.add_note(
        "'resolution' is the coherent sensing limit (2.1 x noise): "
        "multiplicity detection and the gathered predicate both operate "
        "at it; 'final spread' is the true physical diameter of the "
        "correct robots — 'together' means pairwise within resolution "
        "of a common robot, so the diameter stays below 2 x resolution."
    )
    table.add_note(
        "the paper assumes exact sensing and claims only the noise=0 "
        "row; the rest measures the algorithm's practical margin."
    )
    return [table]
