"""Experiment suite — empirical validation of every claim in the paper.

The paper is a theory paper with no measured tables or figures; the
experiments validate its theorem and lemmas on the simulator and
regenerate the tables recorded in EXPERIMENTS.md (index in DESIGN.md
section 5): E1-E9 cover every paper claim, E12/E13 strengthen them
(adversarial search, progress series), and E10/E11/E14-E17 probe beyond
the paper (ASYNC, byzantine, limited visibility, chirality violations,
sensor noise, the scheduler/model matrix).  Each module exposes
``run(quick)`` -> list of :class:`~repro.experiments.report.Table`.
"""

import inspect

from . import (
    e1_main_theorem,
    e10_async,
    e11_byzantine,
    e12_adversarial_search,
    e13_progress,
    e14_visibility,
    e15_chirality,
    e16_sensor_noise,
    e17_model_matrix,
    e2_bivalent,
    e3_transitions,
    e4_baselines,
    e5_waitfree,
    e6_scalability,
    e7_weber_detection,
    e8_delta,
    e9_safe_points,
)
from .report import Table
from .runner import Scenario, run_batch, run_batched, run_scenario

__all__ = [
    "EXPERIMENTS",
    "Table",
    "Scenario",
    "run_batch",
    "run_batched",
    "run_scenario",
    "run_experiment",
]

#: Registry: experiment id -> (module, one-line description).
EXPERIMENTS = {
    "e1": (e1_main_theorem, "Theorem 5.1: gathering with f < n crashes"),
    "e2": (e2_bivalent, "Lemma 5.2: bivalent impossibility"),
    "e3": (e3_transitions, "Lemmas 5.3-5.9: class transitions + invariants"),
    "e4": (e4_baselines, "Baseline comparison (motivation)"),
    "e5": (e5_waitfree, "Lemma 5.1: wait-freedom"),
    "e6": (e6_scalability, "Scalability: rounds/wall-time vs n"),
    "e7": (e7_weber_detection, "Theorem 3.1: quasi-regularity detection"),
    "e8": (e8_delta, "delta-sensitivity of the movement model"),
    "e9": (e9_safe_points, "Definition 8 ablation: safe points"),
    "e10": (e10_async, "Beyond the paper: ASYNC (stale snapshots)"),
    "e11": (e11_byzantine, "Beyond the paper: one byzantine robot"),
    "e12": (e12_adversarial_search, "Adversarial search for the bivalent trap"),
    "e13": (e13_progress, "Progress measures over time (figure series)"),
    "e14": (e14_visibility, "Assumption ablation: limited visibility"),
    "e15": (e15_chirality, "Assumption ablation: chirality violations"),
    "e16": (e16_sensor_noise, "Assumption ablation: sensor noise"),
    "e17": (e17_model_matrix, "Scheduler/model matrix: timing, speeds, visibility"),
}


def run_experiment(experiment_id: str, quick: bool = True, workers=None):
    """Run one experiment by id; returns its list of tables.

    ``workers`` is forwarded to experiments whose ``run`` accepts it
    (the seed-sweep-heavy ones); the rest run sequentially as before.
    """
    try:
        module, _ = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ValueError(f"unknown experiment {experiment_id!r}; known: {known}")
    if workers and "workers" in inspect.signature(module.run).parameters:
        return module.run(quick=quick, workers=workers)
    return module.run(quick=quick)
