"""Experiment E9 — ablation of safe points (Definition 8).

*Claim*: restricting the election to *safe* points is what prevents
``WAIT-FREE-GATHER`` from ever creating a bivalent configuration.  The
ablated ``naive-leader`` algorithm (same election, no safety filter, no
class special-casing) can be driven into ``B`` — we run it from
near-bivalent starts under the cluster-alternating adversary with
adversarial move cut-offs and count how many executions *enter* the
bivalent class.  The paper's algorithm, on the same workloads and
adversaries, must never enter ``B`` (Lemma 5.6 C1 + Lemma 4.3).

Additionally we validate the static lemmas:

* Lemma 4.2 — every non-linear configuration has a safe point;
* Lemma 4.3 — ``B`` and ``L2W`` configurations have none.
"""

from __future__ import annotations

from typing import List

from ..algorithms import ALGORITHMS
from ..core import ConfigClass, Configuration, classify, safe_points
from ..sim import Simulation
from ..workloads import generate
from .report import Table
from .runner import make_crashes, make_movement, make_scheduler

__all__ = ["run"]


def run(quick: bool = True) -> List[Table]:
    seeds = range(10) if quick else range(50)
    sizes = [6, 8] if quick else [6, 8, 12]

    static = Table(
        "E9a",
        "Lemmas 4.2/4.3: existence of safe points by configuration class",
        ["workload", "expected", "configs", "with safe point", "without"],
    )
    expectations = [
        ("asymmetric", "some"),
        ("regular-polygon", "some"),
        ("multiple", "some"),
        ("near-bivalent", "some"),
        ("bivalent", "none"),
        ("linear-interval", "none"),
    ]
    for workload, expected in expectations:
        have = 0
        count = 0
        for n in sizes:
            for seed in seeds:
                config = Configuration(generate(workload, n, seed))
                count += 1
                if safe_points(config):
                    have += 1
        static.add_row(workload, expected, count, have, count - have)

    dynamic = Table(
        "E9b",
        "Ablation: the collusive-stop adversary vs an unsafe gathering "
        "target (unsafe-ray workload, FSYNC) - executions entering B",
        ["algorithm", "n", "runs", "entered B", "gathered", "stalled"],
    )
    for name in ("naive-leader", "wait-free-gather"):
        for n in sizes:
            entered_b = 0
            gathered = 0
            stalled = 0
            for seed in seeds:
                saw_b = False

                def observe(record) -> None:
                    nonlocal saw_b
                    if classify(record.config_after) is ConfigClass.BIVALENT:
                        saw_b = True

                sim = Simulation(
                    ALGORITHMS[name](),
                    generate("unsafe-ray", n, seed),
                    scheduler=make_scheduler("fsync"),
                    crash_adversary=make_crashes("none", 0),
                    movement=make_movement("collusive-stop"),
                    seed=seed * 11 + 1,
                    max_rounds=3_000,
                    halt_on_bivalent=False,
                )
                sim.add_observer(observe)
                result = sim.run()
                if saw_b:
                    entered_b += 1
                if result.gathered:
                    gathered += 1
                if result.verdict == "stalled":
                    stalled += 1
            dynamic.add_row(
                name, n, len(list(seeds)), entered_b, gathered, stalled
            )
    dynamic.add_note(
        "unsafe-ray puts ceil(n/2) robots on one ray towards the "
        "maximum-multiplicity point; naive straight-line motion lets the "
        "collusive stop stack them into the bivalent trap (then the "
        "election ties forever: stalled).  The side-step rule of case M "
        "(and Def. 8 in case A) is what makes wait-free-gather immune."
    )
    return [static, dynamic]
