"""Experiment E5 — Lemma 5.1: wait-freedom, necessary and satisfied.

*Claims*:

1. ``WAIT-FREE-GATHER`` satisfies the necessary condition at every
   reachable configuration: at most one occupied location is instructed
   to stay (``|U(P \\ M(P, A))| <= 1``).
2. The condition is *necessary*: the sequential baseline violates it
   (many waiting locations), and a single well-placed crash converts
   each violation into a permanent deadlock.  We crash exactly the
   designated mover at round 0 and count deadlocks.
"""

from __future__ import annotations

from typing import List

from ..algorithms import ALGORITHMS, SequentialGather, WaitFreeGather
from ..core import Configuration
from ..geometry import Point
from ..sim import CrashAtRounds, Simulation, summarize_runs
from ..workloads import generate
from .report import Table
from .runner import Scenario, make_movement, make_scheduler, run_batch

__all__ = ["run", "count_staying_locations"]


def count_staying_locations(algorithm, config: Configuration) -> int:
    """``|U(P \\ M(P, A))|`` for an arbitrary algorithm."""
    stays = 0
    for p in config.support:
        if algorithm.compute(config, p).close_to(p, config.tol):
            stays += 1
    return stays


def _mover_of_sequential(config: Configuration) -> int:
    """Index of a robot the sequential algorithm designates to move."""
    algo = SequentialGather()
    for index, p in enumerate(config.points):
        if not algo.compute(config, p).close_to(p, config.tol):
            return index
    return 0


def run(quick: bool = True) -> List[Table]:
    seeds = range(10) if quick else range(50)
    sizes = [5, 8] if quick else [5, 8, 12, 16]

    condition = Table(
        "E5a",
        "Lemma 5.1: staying locations |U(P \\ M(P,A))| over random "
        "configurations (must be <= 1 for crash tolerance)",
        ["algorithm", "n", "configs", "max stays", "mean stays", "violations"],
    )
    for name in ("wait-free-gather", "sequential"):
        algo_cls = ALGORITHMS[name]
        for n in sizes:
            counts = []
            for seed in seeds:
                config = Configuration(generate("random", n, seed))
                counts.append(count_staying_locations(algo_cls(), config))
            condition.add_row(
                name,
                n,
                len(counts),
                max(counts),
                sum(counts) / len(counts),
                sum(1 for c in counts if c > 1),
            )

    deadlock = Table(
        "E5b",
        "The violation bites: crash the sequential mover at round 0 "
        "(f = 1) and watch for deadlock; wait-free-gather shrugs it off",
        ["algorithm", "n", "runs", "gathered", "stalled (deadlock)"],
    )
    for name in ("sequential", "wait-free-gather"):
        algo_cls = ALGORITHMS[name]
        for n in sizes:
            results = []
            for seed in seeds:
                points = generate("random", n, seed)
                mover = _mover_of_sequential(Configuration(points))
                sim = Simulation(
                    algo_cls(),
                    points,
                    scheduler=make_scheduler("random"),
                    crash_adversary=CrashAtRounds({mover: 0}),
                    movement=make_movement("rigid"),
                    seed=seed,
                    max_rounds=2_000,
                )
                results.append(sim.run())
            summary = summarize_runs(results)
            deadlock.add_row(
                name, n, summary.runs, summary.gathered, summary.stalled
            )
    deadlock.add_note(
        "the crashed robot is the one the *sequential* algorithm would "
        "move first; for wait-free-gather the same crash is harmless."
    )
    return [condition, deadlock]
