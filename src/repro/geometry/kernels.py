"""Vectorized geometry kernels behind a runtime backend switch.

The simulation rebuilds the full analysis tower every ATOM round — the
tolerant cluster merge of :class:`~repro.core.configuration.Configuration`,
the O(n^2) polar view table, the per-support-point ray structure behind
safe-point detection, and the Weiszfeld iteration for numerical Weber
points.  All of those are per-tick geometry loops over small dense float
data: exactly the shape NumPy batch kernels excel at.

This module provides NumPy implementations of those hot primitives behind
a process-wide backend switch:

* ``REPRO_BACKEND=python`` (the default) — every call site uses the
  original pure-Python code.  That code is the **reference backend**: it
  is the semantics, the NumPy kernels merely have to match it.
* ``REPRO_BACKEND=numpy`` — call sites route their inner loops through
  the kernels below.  NumPy remains an optional dependency: when the
  import fails the switch silently falls back to ``python``.

Equivalence contract
--------------------
Kernels replicate the reference computations operation for operation
(same ``fmod`` normalization, same banker's-rounding quantization, same
cluster-chaining rules), so results agree with the pure-Python backend
within the :class:`~repro.geometry.tolerance.Tolerance` quantum and all
*combinatorial* outputs — cluster merges, quantized views, ray loads,
Weber certificates — are identical.  ``tests/property/test_prop_kernels.py``
asserts this over random, biangular and linear workloads up to n = 256.

Kernels accept plain Python data (lists of ``(x, y)`` tuples) and return
plain Python data, so call sites never leak ``numpy`` scalars into the
tolerance-quantized pipeline.
"""

from __future__ import annotations

import functools
import math
import os
import time
import warnings
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Tuple

from .. import obs as _obs

__all__ = [
    "BACKENDS",
    "available_backends",
    "get_backend",
    "set_backend",
    "backend",
    "numpy_enabled",
    "enabled_for",
    "near_pairs",
    "batch_polar_views",
    "max_ray_loads",
    "distance_sums",
    "unit_vector_sum",
    "weiszfeld",
    "pairwise_diameter",
    "batched_polar_views",
    "batched_max_ray_loads",
    "batched_weiszfeld",
    "batched_gather_candidates",
]

# NumPy is optional; the pure-Python backend needs nothing.  Only a
# *missing* NumPy is tolerated — a present-but-broken install raising
# e.g. SystemError must surface, not masquerade as "not installed".
try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

#: Recognized backend names.
BACKENDS = ("python", "numpy")

#: Below this problem size the NumPy call overhead outweighs the win and
#: call sites stay on the pure-Python path even under the numpy backend.
KERNEL_MIN_N = 8

_TWO_PI = 2.0 * math.pi

#: Dense pairwise-distance matrices are used up to this many points; the
#: grid-bucketed path takes over beyond it.
_DENSE_PAIRS_MAX = 1024


#: Set once the numpy->python degradation has been reported, so a sweep
#: that resolves the backend thousands of times warns exactly once.
_fallback_warned = False


def _resolve(name: str) -> str:
    """Validate a backend name, degrading ``numpy`` -> ``python`` when
    the import failed (NumPy is optional by design).

    The degradation is announced with a one-time :class:`RuntimeWarning`:
    silently computing a whole sweep on the wrong backend is exactly the
    kind of divergence ``repro check --diff`` exists to catch, so the
    fallback must at least be visible.
    """
    global _fallback_warned
    name = name.strip().lower() or "python"
    if name not in BACKENDS:
        raise ValueError(
            f"unknown REPRO_BACKEND {name!r}; expected one of {BACKENDS}"
        )
    if name == "numpy" and _np is None:
        if not _fallback_warned:
            _fallback_warned = True
            warnings.warn(
                "REPRO_BACKEND=numpy requested but NumPy is not "
                "importable; falling back to the pure-Python backend",
                RuntimeWarning,
                stacklevel=3,
            )
        return "python"
    return name


_backend: str = _resolve(os.environ.get("REPRO_BACKEND", "python"))


def available_backends() -> Tuple[str, ...]:
    """Backends usable in this process (``numpy`` only when importable)."""
    return BACKENDS if _np is not None else ("python",)


def get_backend() -> str:
    """The currently active backend name."""
    return _backend


def set_backend(name: str) -> str:
    """Switch the process-wide backend; returns the previous one.

    Requesting ``numpy`` without NumPy installed silently keeps the
    pure-Python backend (mirroring the ``REPRO_BACKEND`` env behaviour).
    """
    global _backend
    previous = _backend
    _backend = _resolve(name)
    return previous


@contextmanager
def backend(name: str) -> Iterator[str]:
    """Context manager pinning the backend for a block (tests, benches)."""
    previous = set_backend(name)
    try:
        yield _backend
    finally:
        set_backend(previous)


def numpy_enabled() -> bool:
    """True when the numpy backend is active (and NumPy importable)."""
    return _backend == "numpy"


def enabled_for(n: int) -> bool:
    """Should a call site with problem size ``n`` use the kernels?"""
    return _backend == "numpy" and n >= KERNEL_MIN_N


def _timed(fn):
    """Per-kernel observability: call count + wall time + backend label.

    With observability disabled (the default) the wrapper is one
    attribute read and a tail call — no timer, no allocation.  Enabled,
    each call is timed with ``perf_counter`` and recorded under the
    kernel's name and the active backend, feeding ``repro profile``,
    the ``kernel_seconds`` latency histogram, any registered
    ``on_kernel`` hooks, and — when span tracing is active — a leaf
    ``kernel`` span attributed to whatever phase span was open when
    the call ran (see :mod:`repro.obs.spans`).
    """
    name = fn.__name__

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        if not _obs.state.enabled:
            return fn(*args, **kwargs)
        start = time.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            _obs.record_kernel(name, time.perf_counter() - start, _backend)

    return wrapper


# -- array plumbing ----------------------------------------------------------


def _as_xy(coords: Sequence[Tuple[float, float]]) -> "Tuple[_np.ndarray, _np.ndarray]":
    arr = _np.asarray(coords, dtype=_np.float64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError("coords must be a sequence of (x, y) pairs")
    return arr[:, 0], arr[:, 1]


def _normalize_angles(theta: "_np.ndarray") -> "_np.ndarray":
    """Vector twin of :func:`repro.geometry.angles.normalize_angle`."""
    theta = _np.fmod(theta, _TWO_PI)
    theta = _np.where(theta < 0.0, theta + _TWO_PI, theta)
    # fmod of a value infinitesimally below 0 can round to 2*pi exactly.
    return _np.where(theta >= _TWO_PI, theta - _TWO_PI, theta)


# -- tolerant cluster merge --------------------------------------------------


@_timed
def near_pairs(
    coords: Sequence[Tuple[float, float]], eps: float
) -> List[Tuple[int, int]]:
    """All index pairs ``(i, j)``, ``i < j``, with distance at most ``eps``.

    This feeds the union-find cluster merge of ``Configuration``.  Small
    multisets use one dense pairwise-distance matrix; larger ones are
    grid-bucketed first: with cell size ``eps`` two points within ``eps``
    are always in the same or an adjacent cell, so only points sharing a
    crowded 3x3 neighbourhood need exact distance checks.
    """
    n = len(coords)
    if n < 2:
        return []
    xs, ys = _as_xy(coords)

    if n > _DENSE_PAIRS_MAX:
        candidates = _grid_candidates(xs, ys, eps)
        if len(candidates) < 2:
            return []
        sub = sorted(candidates)
        idx = _np.asarray(sub, dtype=_np.intp)
        xs, ys = xs[idx], ys[idx]
    else:
        sub = None

    dx = xs[:, None] - xs[None, :]
    dy = ys[:, None] - ys[None, :]
    d = _np.hypot(dx, dy)
    iu, ju = _np.triu_indices(len(xs), k=1)
    mask = d[iu, ju] <= eps
    ii = iu[mask].tolist()
    jj = ju[mask].tolist()
    if sub is not None:
        ii = [sub[i] for i in ii]
        jj = [sub[j] for j in jj]
    return list(zip(ii, jj))


def _grid_candidates(xs: "_np.ndarray", ys: "_np.ndarray", eps: float) -> List[int]:
    """Indices of points whose 3x3 cell neighbourhood holds another point."""
    cx = _np.floor(xs / eps).astype(_np.int64)
    cy = _np.floor(ys / eps).astype(_np.int64)
    buckets: dict = {}
    for i, key in enumerate(zip(cx.tolist(), cy.tolist())):
        buckets.setdefault(key, []).append(i)
    out: List[int] = []
    for (bx, by), members in buckets.items():
        if len(members) > 1:
            out.extend(members)
            continue
        for ox in (-1, 0, 1):
            for oy in (-1, 0, 1):
                if (ox or oy) and (bx + ox, by + oy) in buckets:
                    out.extend(members)
                    break
            else:
                continue
            break
    return out


# -- batch polar views -------------------------------------------------------


@_timed
def batch_polar_views(
    origins: Sequence[Tuple[float, float]],
    points: Sequence[Tuple[float, float]],
    center: Tuple[float, float],
    eps_dist: float,
    eps_angle: float,
) -> List[Tuple[Tuple[float, float], ...]]:
    """Canonical views of all ``origins`` at once (Definition 2).

    For each origin the whole multiset ``points`` is serialized as sorted
    quantized ``(r, theta)`` pairs with the reference direction towards
    ``center`` — the vector twin of ``repro.core.views._polar_view``.
    Every origin must be farther than ``eps_dist`` from ``center``
    (callers filter central positions, exactly like the reference).
    """
    ox, oy = _as_xy(origins)
    px, py = _as_xy(points)
    cx, cy = center

    dx = px[None, :] - ox[:, None]
    dy = py[None, :] - oy[:, None]
    d = _np.hypot(dx, dy)

    vx = cx - ox
    vy = cy - oy
    unit = _np.hypot(vx, vy)

    theta = _normalize_angles(_np.arctan2(dy, dx) - _np.arctan2(vy, vx)[:, None])
    # Directions indistinguishable from the reference direction are
    # exactly zero so quantization cannot wrap them to ~2*pi.
    zero_dir = (theta <= eps_angle) | ((_TWO_PI - theta) <= eps_angle)
    t_q = _np.where(zero_dir, 0.0, _np.round(theta / eps_angle) * eps_angle)
    r_q = _np.round((d / unit[:, None]) / eps_dist) * eps_dist

    co_located = d <= eps_dist
    r_q = _np.where(co_located, 0.0, r_q)
    t_q = _np.where(co_located, 0.0, t_q)

    order = _np.lexsort((t_q, r_q), axis=-1)
    r_q = _np.take_along_axis(r_q, order, axis=1)
    t_q = _np.take_along_axis(t_q, order, axis=1)
    return [
        tuple(zip(r_row, t_row))
        for r_row, t_row in zip(r_q.tolist(), t_q.tolist())
    ]


# -- batch ray loads (safe points) -------------------------------------------


@_timed
def max_ray_loads(
    support: Sequence[Tuple[float, float]],
    mults: Sequence[int],
    eps_dist: float,
    eps_angle: float,
    max_angular_resolution: float,
) -> List[int]:
    """Largest robot count on any half-line from each support point.

    For every support point taken as a center this replicates
    ``repro.core.successor.ray_structure`` (distance-aware angular
    tolerance, chained clustering of sorted direction angles, wrap-around
    merge at the 0/2*pi seam) but only tracks per-ray robot counts — all
    that Definition 8 needs.  Returns one load per support point; points
    with every robot at the center load 0.
    """
    m = len(support)
    sx, sy = _as_xy(support)
    mult_arr = _np.asarray(mults, dtype=_np.int64)

    # [center row, support column]: vector from each center to each point.
    dx = sx[None, :] - sx[:, None]
    dy = sy[None, :] - sy[:, None]
    d = _np.hypot(dx, dy)
    off = d > eps_dist  # points not merged into the center

    # Distance-aware angular resolution per center (angular_resolution()).
    d_off = _np.where(off, d, _np.inf)
    d_min = d_off.min(axis=1)
    has_off = _np.isfinite(d_min)
    safe_d_min = _np.where(has_off, d_min, 1.0)
    eps_row = _np.where(
        has_off,
        _np.minimum(max_angular_resolution, eps_angle + eps_dist / safe_d_min),
        eps_angle,
    )

    phi = _np.where(off, _normalize_angles(_np.arctan2(dy, dx)), _np.inf)
    order = _np.argsort(phi, axis=1, kind="stable")
    phi_s = _np.take_along_axis(phi, order, axis=1)
    mult_s = _np.where(
        _np.take_along_axis(off, order, axis=1),
        _np.take_along_axis(_np.broadcast_to(mult_arr, (m, m)), order, axis=1),
        0,
    )

    # Chained clustering: a boundary wherever consecutive sorted angles
    # are farther apart than the row's angular tolerance.  The +inf
    # padding separates itself from real clusters (inf - finite = inf)
    # and carries multiplicity 0, so it never affects any maximum.
    with _np.errstate(invalid="ignore"):
        boundary = (phi_s[:, 1:] - phi_s[:, :-1]) > eps_row[:, None]
    cid = _np.zeros((m, m), dtype=_np.int64)
    _np.cumsum(boundary, axis=1, out=cid[:, 1:])
    sums = _np.zeros((m, m), dtype=_np.int64)
    rows = _np.broadcast_to(_np.arange(m)[:, None], (m, m))
    _np.add.at(sums, (rows, cid), mult_s)
    loads = sums.max(axis=1)

    # Wrap-around at the 0 / 2*pi seam: the first and last clusters are
    # one ray when their angles meet across the seam.
    k = off.sum(axis=1)
    row_idx = _np.arange(m)
    last_idx = _np.maximum(k - 1, 0)
    last_cid = cid[row_idx, last_idx]
    seam = (
        (k > 0)
        & (last_cid > 0)
        & ((phi_s[:, 0] + _TWO_PI) - phi_s[row_idx, last_idx] <= eps_row)
    )
    merged = sums[row_idx, 0] + sums[row_idx, last_cid]
    loads = _np.where(seam, _np.maximum(loads, merged), loads)
    return _np.where(k > 0, loads, 0).tolist()


# -- pairwise diameter (spread / convergence measure) ------------------------


@_timed
def pairwise_diameter(coords: Sequence[Tuple[float, float]]) -> float:
    """Largest pairwise distance of the point set (its diameter).

    Backs :func:`repro.sim.metrics.spread`, the per-round convergence
    measure the observability layer logs — the reason it must not cost
    an O(n^2) pure-Python loop per round.  Small sets use one dense
    distance matrix; larger ones compute the same matrix in row blocks
    so memory stays bounded while the arithmetic remains vectorized.
    """
    n = len(coords)
    if n < 2:
        return 0.0
    xs, ys = _as_xy(coords)
    if n <= _DENSE_PAIRS_MAX:
        dx = xs[:, None] - xs[None, :]
        dy = ys[:, None] - ys[None, :]
        return float(_np.hypot(dx, dy).max())
    best = 0.0
    block = 512
    for start in range(0, n, block):
        dx = xs[start : start + block, None] - xs[None, :]
        dy = ys[start : start + block, None] - ys[None, :]
        best = max(best, float(_np.hypot(dx, dy).max()))
    return best


# -- distance sums (election key / Weber objective screening) ----------------


@_timed
def distance_sums(
    targets: Sequence[Tuple[float, float]],
    points: Sequence[Tuple[float, float]],
) -> List[float]:
    """Sum of distances from each target to the whole multiset."""
    tx, ty = _as_xy(targets)
    px, py = _as_xy(points)
    d = _np.hypot(px[None, :] - tx[:, None], py[None, :] - ty[:, None])
    return d.sum(axis=1).tolist()


# -- Weber point machinery ---------------------------------------------------


@_timed
def unit_vector_sum(
    x: float,
    y: float,
    points: Sequence[Tuple[float, float]],
    eps: float,
) -> Tuple[float, float, int]:
    """Summed unit vectors towards ``points`` plus the co-located count.

    The subgradient data of the Weber objective at ``(x, y)`` — the batch
    twin of :func:`repro.geometry.weber.unit_vector_sum`.
    """
    px, py = _as_xy(points)
    dx = px - x
    dy = py - y
    d = _np.hypot(dx, dy)
    mask = d > eps
    dm = d[mask]
    return (
        float((dx[mask] / dm).sum()),
        float((dy[mask] / dm).sum()),
        int(len(d) - mask.sum()),
    )


@_timed
def weiszfeld(
    points: Sequence[Tuple[float, float]],
    start: Tuple[float, float],
    eps_solver: float,
    max_iterations: int,
) -> Tuple[float, float, int]:
    """Vectorized Weiszfeld iteration with the Vardi-Zhang correction.

    Mirrors ``repro.geometry.weber._weiszfeld_step`` driven by the same
    convergence loop: stop when an iterate moves at most ``eps_solver``.
    Returns the final iterate and the number of iterations taken.
    """
    px, py = _as_xy(points)
    x, y = start
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        dx = px - x
        dy = py - y
        d = _np.hypot(dx, dy)
        mask = d > eps_solver
        dm = d[mask]
        if dm.size == 0:
            # Every point sits at the iterate: trivially optimal.
            break
        w = 1.0 / dm
        wsum = float(w.sum())
        tx = float((px[mask] * w).sum()) / wsum
        ty = float((py[mask] * w).sum()) / wsum
        at_x = int(len(d) - dm.size)
        if at_x == 0:
            nx, ny = tx, ty
        else:
            # Vardi-Zhang: pull the plain Weiszfeld target back towards
            # the iterate by the co-located mass / residual-pull ratio.
            rx = float((dx[mask] * w).sum())
            ry = float((dy[mask] * w).sum())
            r_norm = math.hypot(rx, ry)
            if r_norm == 0.0:
                break
            beta = min(1.0, at_x / r_norm)
            nx = x + (1.0 - beta) * (tx - x)
            ny = y + (1.0 - beta) * (ty - y)
        moved = math.hypot(nx - x, ny - y)
        x, y = nx, ny
        if moved <= eps_solver:
            break
    return x, y, iterations


# -- sims-axis batched kernels (batched SoA engine) --------------------------
#
# The kernels below generalize their 2-D twins above with a leading sims
# axis: one call analyses S independent simulations at once.  They exist
# for ``repro.sim.batch.BatchedSimulation``, which amortizes the numpy
# dispatch overhead of per-sim kernel calls across a whole seed batch.
# Unlike the per-configuration kernels they accept ragged per-sim inputs
# (padded internally with inert entries) and may take ndarray state
# directly — the batched engine keeps a float64 mirror of all positions.
# Per-sim outputs replicate the corresponding 2-D kernel elementwise.


def _pad_ragged(groups, dtype):
    """Stack ragged per-sim sequences into a zero-padded array + counts."""
    counts = [len(g) for g in groups]
    width = max(counts) if counts else 0
    out = _np.zeros((len(groups), width), dtype=dtype)
    for i, g in enumerate(groups):
        if counts[i]:
            out[i, : counts[i]] = g
    return out, counts


@_timed
def batched_polar_views(
    origins: Sequence[Sequence[Tuple[float, float]]],
    points: Sequence[Sequence[Tuple[float, float]]],
    centers: Sequence[Tuple[float, float]],
    eps_dist: float,
    eps_angle: float,
) -> List[List[Tuple[Tuple[float, float], ...]]]:
    """:func:`batch_polar_views` for S sims in one numpy pass.

    ``origins[s]`` are sim *s*'s non-central support points (ragged —
    padded internally), ``points[s]`` its full multiset (uniform length
    across sims), ``centers[s]`` its SEC center.  Returns one view list
    per sim, elementwise identical to calling the 2-D kernel per sim:
    padded origin rows compute garbage under suppressed fp warnings and
    are sliced away before anything is returned.
    """
    arrs = [_np.asarray(g, dtype=_np.float64).reshape(-1, 2) for g in origins]
    counts = [len(a) for a in arrs]
    k_max = max(counts)
    s_count = len(arrs)
    o = _np.zeros((s_count, k_max, 2), dtype=_np.float64)
    for i, a in enumerate(arrs):
        o[i, : counts[i]] = a
    p = _np.asarray(points, dtype=_np.float64)
    c = _np.asarray(centers, dtype=_np.float64)

    dx = p[:, None, :, 0] - o[:, :, 0, None]
    dy = p[:, None, :, 1] - o[:, :, 1, None]
    d = _np.hypot(dx, dy)

    vx = c[:, None, 0] - o[:, :, 0]
    vy = c[:, None, 1] - o[:, :, 1]
    unit = _np.hypot(vx, vy)

    with _np.errstate(divide="ignore", invalid="ignore"):
        theta = _normalize_angles(
            _np.arctan2(dy, dx) - _np.arctan2(vy, vx)[:, :, None]
        )
        zero_dir = (theta <= eps_angle) | ((_TWO_PI - theta) <= eps_angle)
        t_q = _np.where(zero_dir, 0.0, _np.round(theta / eps_angle) * eps_angle)
        r_q = _np.round((d / unit[:, :, None]) / eps_dist) * eps_dist

        co_located = d <= eps_dist
        r_q = _np.where(co_located, 0.0, r_q)
        t_q = _np.where(co_located, 0.0, t_q)

        order = _np.lexsort((t_q, r_q), axis=-1)
    r_q = _np.take_along_axis(r_q, order, axis=-1)
    t_q = _np.take_along_axis(t_q, order, axis=-1)
    return [
        [
            tuple(zip(r_row, t_row))
            for r_row, t_row in zip(r_sim[:k], t_sim[:k])
        ]
        for r_sim, t_sim, k in zip(r_q.tolist(), t_q.tolist(), counts)
    ]


#: Soft cap on S*M*M elements per batched ray-loads slab, keeping the
#: intermediate (sims, centers, points) tensors around a few hundred MB
#: in the worst case instead of unbounded.
_BATCH_RAY_BUDGET = 4_000_000


@_timed
def batched_max_ray_loads(
    supports: Sequence[Sequence[Tuple[float, float]]],
    mults: Sequence[Sequence[int]],
    eps_dist: float,
    eps_angle: float,
    max_angular_resolution: float,
) -> List[List[int]]:
    """:func:`max_ray_loads` for S sims in one numpy pass.

    ``supports[s]`` / ``mults[s]`` are sim *s*'s support points and
    multiplicities (ragged — padded internally).  Padded entries behave
    exactly like the 2-D kernel's at-center entries: ``off`` is False,
    their angle is +inf and their multiplicity 0, so they sort last,
    create no cluster boundaries (inf - inf = nan compares False) and
    add nothing to any cluster sum.  Returns one load list per sim,
    elementwise identical to per-sim 2-D calls.
    """
    arrs = [_np.asarray(g, dtype=_np.float64).reshape(-1, 2) for g in supports]
    counts = [len(a) for a in arrs]
    m_max = max(counts)
    out: List[List[int]] = []
    chunk = max(1, _BATCH_RAY_BUDGET // max(1, m_max * m_max))
    for start in range(0, len(arrs), chunk):
        out.extend(
            _max_ray_loads_slab(
                arrs[start : start + chunk],
                mults[start : start + chunk],
                counts[start : start + chunk],
                eps_dist,
                eps_angle,
                max_angular_resolution,
            )
        )
    return out


def _max_ray_loads_slab(
    arrs, mults, counts, eps_dist, eps_angle, max_angular_resolution
):
    s_count = len(arrs)
    m = max(counts)
    sx = _np.zeros((s_count, m), dtype=_np.float64)
    sy = _np.zeros((s_count, m), dtype=_np.float64)
    valid = _np.zeros((s_count, m), dtype=bool)
    for i, a in enumerate(arrs):
        k = counts[i]
        sx[i, :k] = a[:, 0]
        sy[i, :k] = a[:, 1]
        valid[i, :k] = True
    mult_arr, _ = _pad_ragged(mults, _np.int64)

    # [sim, center row, support column], mirroring the 2-D kernel.
    dx = sx[:, None, :] - sx[:, :, None]
    dy = sy[:, None, :] - sy[:, :, None]
    d = _np.hypot(dx, dy)
    off = (d > eps_dist) & valid[:, None, :]

    d_off = _np.where(off, d, _np.inf)
    d_min = d_off.min(axis=2)
    has_off = _np.isfinite(d_min)
    safe_d_min = _np.where(has_off, d_min, 1.0)
    eps_row = _np.where(
        has_off,
        _np.minimum(max_angular_resolution, eps_angle + eps_dist / safe_d_min),
        eps_angle,
    )

    phi = _np.where(off, _normalize_angles(_np.arctan2(dy, dx)), _np.inf)
    order = _np.argsort(phi, axis=2, kind="stable")
    phi_s = _np.take_along_axis(phi, order, axis=2)
    mult_b = _np.broadcast_to(mult_arr[:, None, :], (s_count, m, m))
    mult_s = _np.where(
        _np.take_along_axis(off, order, axis=2),
        _np.take_along_axis(mult_b, order, axis=2),
        0,
    )

    with _np.errstate(invalid="ignore"):
        boundary = (phi_s[:, :, 1:] - phi_s[:, :, :-1]) > eps_row[:, :, None]
    cid = _np.zeros((s_count, m, m), dtype=_np.int64)
    _np.cumsum(boundary, axis=2, out=cid[:, :, 1:])
    sums = _np.zeros((s_count, m, m), dtype=_np.int64)
    sims_idx = _np.broadcast_to(
        _np.arange(s_count)[:, None, None], (s_count, m, m)
    )
    rows = _np.broadcast_to(_np.arange(m)[None, :, None], (s_count, m, m))
    _np.add.at(sums, (sims_idx, rows, cid), mult_s)
    loads = sums.max(axis=2)

    k = off.sum(axis=2)
    last_idx = _np.maximum(k - 1, 0)
    last_cid = _np.take_along_axis(cid, last_idx[:, :, None], axis=2)[:, :, 0]
    phi_last = _np.take_along_axis(phi_s, last_idx[:, :, None], axis=2)[:, :, 0]
    with _np.errstate(invalid="ignore"):
        seam = (
            (k > 0)
            & (last_cid > 0)
            & ((phi_s[:, :, 0] + _TWO_PI) - phi_last <= eps_row)
        )
    merged = (
        sums[:, :, 0]
        + _np.take_along_axis(sums, last_cid[:, :, None], axis=2)[:, :, 0]
    )
    loads = _np.where(seam, _np.maximum(loads, merged), loads)
    loads = _np.where(k > 0, loads, 0)
    return [row[:c] for row, c in zip(loads.tolist(), counts)]


@_timed
def batched_weiszfeld(
    points: Sequence[Sequence[Tuple[float, float]]],
    starts: Sequence[Tuple[float, float]],
    eps_solver: float,
    max_iterations: int,
) -> List[Tuple[float, float, int]]:
    """:func:`weiszfeld` for S same-sized point sets in one loop.

    Each sim's slice runs the identical Vardi-Zhang iteration; converged
    sims freeze (their iterate and iteration count stop changing) while
    the rest continue.  One deliberate divergence from the 2-D kernel:
    sums here are masked-to-zero instead of compressed, which can round
    differently only when a point sits within ``eps_solver`` of the
    iterate — a perturbation inside the solver tolerance that callers
    absorb by re-certifying the result per sim (`is_weber_point`).
    """
    pts = _np.asarray(points, dtype=_np.float64)
    px = pts[:, :, 0]
    py = pts[:, :, 1]
    st = _np.asarray(starts, dtype=_np.float64)
    x = st[:, 0].copy()
    y = st[:, 1].copy()
    s_count, n = px.shape
    iters = _np.zeros(s_count, dtype=_np.int64)
    active = _np.ones(s_count, dtype=bool)
    for _ in range(max_iterations):
        ia = _np.flatnonzero(active)
        if ia.size == 0:
            break
        iters[ia] += 1
        dx = px[ia] - x[ia, None]
        dy = py[ia] - y[ia, None]
        d = _np.hypot(dx, dy)
        mask = d > eps_solver
        with _np.errstate(divide="ignore"):
            w = _np.where(mask, 1.0 / d, 0.0)
        wsum = w.sum(axis=1)
        far = mask.sum(axis=1)
        degenerate = far == 0  # every point at the iterate: optimal
        safe_wsum = _np.where(degenerate, 1.0, wsum)
        tx = (px[ia] * w).sum(axis=1) / safe_wsum
        ty = (py[ia] * w).sum(axis=1) / safe_wsum
        at_x = n - far
        rx = (dx * w).sum(axis=1)
        ry = (dy * w).sum(axis=1)
        r_norm = _np.hypot(rx, ry)
        # Vardi-Zhang pull-back for sims with co-located mass; a zero
        # residual there means the iterate is a fixpoint (stop as-is).
        stuck = (at_x > 0) & (r_norm == 0.0)
        beta = _np.minimum(1.0, at_x / _np.where(r_norm > 0.0, r_norm, 1.0))
        nx = _np.where(at_x == 0, tx, x[ia] + (1.0 - beta) * (tx - x[ia]))
        ny = _np.where(at_x == 0, ty, y[ia] + (1.0 - beta) * (ty - y[ia]))
        hold = degenerate | stuck
        nx = _np.where(hold, x[ia], nx)
        ny = _np.where(hold, y[ia], ny)
        moved = _np.hypot(nx - x[ia], ny - y[ia])
        x[ia] = nx
        y[ia] = ny
        active[ia[hold | (moved <= eps_solver)]] = False
    return list(zip(x.tolist(), y.tolist(), iters.tolist()))


@_timed
def batched_gather_candidates(positions, live, eps_dist) -> List[bool]:
    """Conservative per-sim "all live robots co-located" prefilter.

    ``positions`` is ``(S, R, 2)`` and ``live`` ``(S, R)`` boolean
    array-likes.  A sim is a candidate when every live robot lies within
    the slackened tolerance of the first live robot (the scalar
    predicate's anchor).  The threshold carries relative headroom for
    the <=1-ulp difference between ``np.hypot`` and ``math.hypot``:
    True may be a false positive (callers re-check with the exact
    scalar predicate) but False is always exact — no live-robot pair
    farther apart than the slack can be gathered under ``eps_dist``.
    Sims with no live robot are not candidates (the scalar predicate
    returns no spot for them either).
    """
    pos = _np.asarray(positions, dtype=_np.float64)
    lv = _np.asarray(live, dtype=bool)
    s_count = lv.shape[0]
    any_live = lv.any(axis=1)
    first = _np.argmax(lv, axis=1)
    anchor = pos[_np.arange(s_count), first]
    d = _np.hypot(
        pos[:, :, 0] - anchor[:, None, 0], pos[:, :, 1] - anchor[:, None, 1]
    )
    slack = eps_dist * (1.0 + 1e-9) + 1e-300
    ok = (d <= slack) | ~lv
    return (ok.all(axis=1) & any_live).tolist()
