"""Circles and the smallest enclosing circle (SEC).

The paper uses ``sec(C)``, the smallest circle enclosing the *distinct*
positions ``U(C)``, to anchor the view construction (Definition 2): every
robot measures its reference direction towards ``center(sec(U(C)))``.
Because the SEC is invariant under the robots' local frames (it is defined
by the point set alone), all robots agree on this center up to their own
coordinates — exactly the property the views need.

We implement Welzl's move-to-front algorithm.  The expected-linear-time
randomized version shuffles the input; we shuffle with a *fixed* seed
derived from nothing at all (a constant), so the computation stays
deterministic run-to-run while still defeating adversarially sorted
inputs.  For the configuration sizes of this library (tens of robots) the
asymptotics are irrelevant; determinism is not.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from .point import Point
from .tolerance import DEFAULT_TOLERANCE, Tolerance

__all__ = ["Circle", "smallest_enclosing_circle", "circumcircle"]


@dataclass(frozen=True)
class Circle:
    """A circle given by center and radius; radius 0 is a point."""

    center: Point
    radius: float

    def contains(self, p: Point, tol: Tolerance = DEFAULT_TOLERANCE) -> bool:
        """Closed-disk membership, with a tolerance band on the boundary."""
        return self.center.distance_to(p) <= self.radius + tol.eps_dist

    def on_boundary(self, p: Point, tol: Tolerance = DEFAULT_TOLERANCE) -> bool:
        """True when ``p`` is on the circle itself (within tolerance)."""
        return abs(self.center.distance_to(p) - self.radius) <= tol.eps_dist


def circumcircle(a: Point, b: Point, c: Point) -> Optional[Circle]:
    """Circle through three points, or ``None`` when they are collinear.

    Uses the standard determinant formulas; collinearity is detected by a
    vanishing denominator rather than a tolerance because the caller
    (Welzl) only needs protection against exact degeneracy — a nearly
    collinear triple still defines a valid (huge) circumcircle.
    """
    d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y))
    if d == 0.0:
        return None
    a2, b2, c2 = a.norm_sq(), b.norm_sq(), c.norm_sq()
    ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d
    uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d
    center = Point(ux, uy)
    radius = max(center.distance_to(p) for p in (a, b, c))
    return Circle(center, radius)


def _circle_two(a: Point, b: Point) -> Circle:
    center = (a + b) / 2.0
    return Circle(center, max(center.distance_to(a), center.distance_to(b)))


def _in_circle(circle: Optional[Circle], p: Point) -> bool:
    if circle is None:
        return False
    # The relative slack keeps the incremental algorithm stable when many
    # points lie exactly on the final circle (regular polygons do).
    slack = 1e-12 * max(1.0, circle.radius)
    return circle.center.distance_to(p) <= circle.radius + slack


def _sec_one_boundary(points: Sequence[Point], p: Point) -> Circle:
    circle = Circle(p, 0.0)
    for i, q in enumerate(points):
        if not _in_circle(circle, q):
            if circle.radius == 0.0 and circle.center == p:
                circle = _circle_two(p, q)
            else:
                circle = _sec_two_boundary(points[:i], p, q)
    return circle


def _sec_two_boundary(points: Sequence[Point], p: Point, q: Point) -> Circle:
    circ = _circle_two(p, q)
    left: Optional[Circle] = None
    right: Optional[Circle] = None
    pq = q - p
    for r in points:
        if _in_circle(circ, r):
            continue
        cross = pq.cross(r - p)
        c = circumcircle(p, q, r)
        if c is None:
            continue
        if cross > 0.0 and (
            left is None or pq.cross(c.center - p) > pq.cross(left.center - p)
        ):
            left = c
        elif cross < 0.0 and (
            right is None or pq.cross(c.center - p) < pq.cross(right.center - p)
        ):
            right = c
    if left is None and right is None:
        return circ
    if left is None:
        assert right is not None
        return right
    if right is None:
        return left
    return left if left.radius <= right.radius else right


def smallest_enclosing_circle(points: Iterable[Point]) -> Circle:
    """Smallest circle enclosing all points (Welzl, deterministic seed).

    Raises :class:`ValueError` on empty input.  A single point yields a
    radius-0 circle centered at it, matching the paper's degenerate case
    of a gathered configuration.
    """
    pts: List[Point] = list(points)
    if not pts:
        raise ValueError("smallest enclosing circle of an empty set")
    # Deterministic shuffle: reproducible across runs, input-order free.
    rng = random.Random(0x5EC)
    shuffled = pts[:]
    rng.shuffle(shuffled)

    circle: Optional[Circle] = None
    for i, p in enumerate(shuffled):
        if circle is None or not _in_circle(circle, p):
            circle = _sec_one_boundary(shuffled[:i], p)
    assert circle is not None
    # Tighten the radius to exactly cover every input point: the
    # incremental slacks can leave the radius a few ulps short.
    radius = max((circle.center.distance_to(p) for p in pts), default=0.0)
    return Circle(circle.center, radius)
