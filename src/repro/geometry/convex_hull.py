"""Convex hull (paper notation ``CH(Q)``).

Andrew's monotone chain, returning hull vertices in counter-clockwise
(mathematical) order.  The paper uses the hull only to identify extreme
robots of linear configurations and for invariant checks, but we expose a
full implementation with membership tests since workload generators and
the analysis package both need it.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .point import Point
from .predicates import Orientation, orientation
from .tolerance import DEFAULT_TOLERANCE, Tolerance

__all__ = ["convex_hull", "in_convex_hull", "hull_vertices"]


def _cross(o: Point, a: Point, b: Point) -> float:
    return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)


def convex_hull(points: Iterable[Point]) -> List[Point]:
    """Vertices of the convex hull in CCW order, collinear points dropped.

    Degenerate inputs are handled naturally: a single (distinct) point
    yields ``[p]``; a collinear set yields its two extreme points.
    """
    pts = sorted(set(points))
    if len(pts) <= 1:
        return pts

    def build(seq: Sequence[Point]) -> List[Point]:
        chain: List[Point] = []
        for p in seq:
            while len(chain) >= 2 and _cross(chain[-2], chain[-1], p) <= 0.0:
                chain.pop()
            chain.append(p)
        return chain

    lower = build(pts)
    upper = build(list(reversed(pts)))
    hull = lower[:-1] + upper[:-1]
    if not hull:  # all points identical after dedup (len(pts) >= 2 distinct
        return pts[:1]  # bitwise but may collapse under set) — defensive.
    return hull


def hull_vertices(
    points: Iterable[Point], tol: Tolerance = DEFAULT_TOLERANCE
) -> List[Point]:
    """Alias of :func:`convex_hull` kept for call-site readability."""
    del tol  # the monotone chain is exact on the quantized inputs
    return convex_hull(points)


def in_convex_hull(
    p: Point, points: Iterable[Point], tol: Tolerance = DEFAULT_TOLERANCE
) -> bool:
    """Closed membership of ``p`` in ``CH(points)``.

    For a hull with fewer than three vertices this degrades to segment /
    point membership.  Boundary points count as inside (closed hull), as
    the paper's usage requires.
    """
    hull = convex_hull(points)
    if not hull:
        return False
    if len(hull) == 1:
        return p.close_to(hull[0], tol)
    if len(hull) == 2:
        from .predicates import point_on_segment

        return point_on_segment(hull[0], hull[1], p, tol)
    for a, b in zip(hull, hull[1:] + hull[:1]):
        if orientation(a, b, p, tol) is Orientation.CLOCKWISE:
            # Hull is CCW; a clockwise turn means p is strictly outside
            # edge (a, b).
            return False
    return True
