"""Weber points (geometric medians) — Definition 1 of the paper.

The Weber point of a configuration minimizes the sum of distances to all
robots.  Its two properties that the paper exploits are implemented here:

* **Invariance** (Lemma 3.2): moving points *towards* the Weber point does
  not move it.  The test suite checks this property directly.
* For **linear** configurations the Weber points form the median interval
  ``[min(Med(C)), max(Med(C))]`` (Section III) — computed exactly by
  :func:`linear_weber_interval`.

For general position sets no finite algebraic algorithm exists; the paper
side-steps this via quasi-regularity.  For validation, baselines and the
unoccupied-center case of quasi-regularity detection we also provide a
high-precision numerical solver (:func:`geometric_median`): a Weiszfeld
iteration with the Vardi–Zhang correction so it converges even when the
iterate lands on an input point.  Its convergence threshold is orders of
magnitude below every combinatorial tolerance (see DESIGN.md section 4).

An **optimality certificate** (:func:`is_weber_point`) checks the exact
subgradient condition: ``x`` is a Weber point iff the norm of the summed
unit vectors towards the points not at ``x`` is at most the number of
points located at ``x``.  The certificate is what turns the numerical
solver into a verified answer.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

from .. import obs as _obs
from . import kernels
from .point import Point
from .predicates import all_collinear, project_parameter
from .tolerance import DEFAULT_TOLERANCE, Tolerance

__all__ = [
    "sum_of_distances",
    "unit_vector_sum",
    "is_weber_point",
    "geometric_median",
    "linear_weber_interval",
    "WeberResult",
]


def sum_of_distances(x: Point, points: Iterable[Point]) -> float:
    """``sum_{p in points} |x, p|`` — the Weber objective at ``x``."""
    return math.fsum(x.distance_to(p) for p in points)


def unit_vector_sum(
    x: Point, points: Iterable[Point], tol: Tolerance = DEFAULT_TOLERANCE
) -> Tuple[Point, int]:
    """Summed unit vectors from ``x`` towards each point, plus co-located count.

    Returns ``(s, k)`` where ``s`` is the sum of ``(p - x)/|p - x|`` over
    points not co-located with ``x`` and ``k`` is the number of points
    within ``tol.eps_dist`` of ``x``.  This is the subgradient data of the
    Weber objective.
    """
    pts = list(points)
    if kernels.enabled_for(len(pts)):
        sx, sy, co_located = kernels.unit_vector_sum(
            x.x, x.y, [(p.x, p.y) for p in pts], tol.eps_dist
        )
        return Point(sx, sy), co_located
    sx = 0.0
    sy = 0.0
    co_located = 0
    for p in pts:
        d = x.distance_to(p)
        if d <= tol.eps_dist:
            co_located += 1
            continue
        sx += (p.x - x.x) / d
        sy += (p.y - x.y) / d
    return Point(sx, sy), co_located


def is_weber_point(
    x: Point,
    points: Iterable[Point],
    tol: Tolerance = DEFAULT_TOLERANCE,
    slack: float = 1e-7,
) -> bool:
    """Exact first-order optimality certificate for the Weber objective.

    ``x`` minimizes the (convex) sum of distances iff
    ``|sum of unit vectors| <= (number of points at x)``.  ``slack``
    absorbs rounding in the unit vectors; it is intentionally larger than
    machine epsilon because each of up to ``n`` unit vectors carries its
    own rounding error.
    """
    pts = list(points)
    s, k = unit_vector_sum(x, pts, tol)
    return s.norm() <= k + slack


class WeberResult:
    """Outcome of the numerical Weber point computation.

    Attributes
    ----------
    point:
        The computed minimizer.
    iterations:
        Number of Weiszfeld iterations performed.
    certified:
        Whether the subgradient certificate accepted the answer.
    objective:
        Sum of distances at :attr:`point`.
    """

    __slots__ = ("point", "iterations", "certified", "objective")

    def __init__(
        self, point: Point, iterations: int, certified: bool, objective: float
    ) -> None:
        self.point = point
        self.iterations = iterations
        self.certified = certified
        self.objective = objective

    def __repr__(self) -> str:
        return (
            f"WeberResult(point={self.point!r}, iterations={self.iterations}, "
            f"certified={self.certified}, objective={self.objective!r})"
        )


def _record_solver(
    iterations: int, x: Point, pts: Sequence[Point], tol: Tolerance, certified: bool
) -> None:
    """Observability for the numerical solver (enabled-only path).

    The convergence residual is the subgradient excess
    ``max(0, |sum of unit vectors| - co-located count)`` — exactly the
    quantity the optimality certificate bounds, so a residual near zero
    *is* the certificate margin, comparable across runs and backends.
    """
    s, k = unit_vector_sum(x, pts, tol)
    _obs.metrics.inc("weber.calls")
    _obs.metrics.observe("weber.iterations", float(iterations))
    _obs.metrics.observe("weber.residual", max(0.0, s.norm() - k))
    if not certified:
        _obs.metrics.inc("weber.uncertified")


def _weiszfeld_step(x: Point, pts: Sequence[Point], singular_eps: float) -> Point:
    """One Vardi–Zhang-corrected Weiszfeld step from ``x``."""
    wx = 0.0
    wy = 0.0
    wsum = 0.0
    at_x = 0
    rx = 0.0
    ry = 0.0
    for p in pts:
        d = x.distance_to(p)
        if d <= singular_eps:
            at_x += 1
            continue
        w = 1.0 / d
        wx += p.x * w
        wy += p.y * w
        wsum += w
        rx += (p.x - x.x) * w
        ry += (p.y - x.y) * w
    if wsum == 0.0:
        # Every point sits at x: x is trivially optimal.
        return x
    t = Point(wx / wsum, wy / wsum)
    if at_x == 0:
        return t
    # Vardi–Zhang: when the iterate coincides with input point(s), pull
    # the plain Weiszfeld target back towards x according to the ratio of
    # the co-located mass to the residual pull.
    r_norm = math.hypot(rx, ry)
    if r_norm == 0.0:
        return x
    beta = min(1.0, at_x / r_norm)
    return Point(x.x + (1.0 - beta) * (t.x - x.x), x.y + (1.0 - beta) * (t.y - x.y))


def geometric_median(
    points: Iterable[Point],
    tol: Tolerance = DEFAULT_TOLERANCE,
    max_iterations: int = 10_000,
    start: Optional[Point] = None,
) -> WeberResult:
    """High-precision numerical Weber point (Weiszfeld + Vardi–Zhang).

    For collinear inputs the median interval may be non-degenerate; this
    function then returns the midpoint of the interval (a valid Weber
    point) without iterating — callers needing the full interval use
    :func:`linear_weber_interval`.

    The returned :class:`WeberResult` carries a certificate; callers that
    must not act on an uncertified answer (quasi-regularity detection)
    check :attr:`WeberResult.certified`.
    """
    pts: List[Point] = list(points)
    if not pts:
        raise ValueError("Weber point of an empty set is undefined")
    if len(pts) == 1:
        return WeberResult(pts[0], 0, True, 0.0)

    if all_collinear(pts, tol):
        lo, hi = linear_weber_interval(pts, tol)
        mid = (lo + hi) / 2.0
        return WeberResult(mid, 0, True, sum_of_distances(mid, pts))

    # Check input points first: if one of them is optimal, return it
    # exactly (bitwise) — important because the algorithm then sends
    # robots to an *occupied* location, creating exact multiplicities.
    if kernels.enabled_for(len(pts)):
        coords = [(p.x, p.y) for p in pts]
        sums = kernels.distance_sums(coords, coords)
        bi = min(range(len(pts)), key=sums.__getitem__)
        best_input = pts[bi]
        if is_weber_point(best_input, pts, tol):
            return WeberResult(best_input, 0, True, sums[bi])
        x0 = start if start is not None else _initial_guess(pts)
        bx, by, iterations = kernels.weiszfeld(
            coords, (x0.x, x0.y), tol.eps_solver, max_iterations
        )
        x = Point(bx, by)
        certified = is_weber_point(x, pts, tol)
        if _obs.state.enabled:
            _record_solver(iterations, x, pts, tol, certified)
        return WeberResult(x, iterations, certified, sum_of_distances(x, pts))

    best_input = min(pts, key=lambda p: sum_of_distances(p, pts))
    if is_weber_point(best_input, pts, tol):
        return WeberResult(
            best_input, 0, True, sum_of_distances(best_input, pts)
        )

    x = start if start is not None else _initial_guess(pts)
    singular = tol.eps_solver
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        nxt = _weiszfeld_step(x, pts, singular)
        if nxt.distance_to(x) <= tol.eps_solver:
            x = nxt
            break
        x = nxt
    certified = is_weber_point(x, pts, tol)
    if _obs.state.enabled:
        _record_solver(iterations, x, pts, tol, certified)
    return WeberResult(x, iterations, certified, sum_of_distances(x, pts))


def _initial_guess(pts: Sequence[Point]) -> Point:
    """Centroid start, nudged off any input point to avoid the singularity."""
    cx = math.fsum(p.x for p in pts) / len(pts)
    cy = math.fsum(p.y for p in pts) / len(pts)
    guess = Point(cx, cy)
    if any(guess == p for p in pts):
        span = max(p.distance_to(pts[0]) for p in pts)
        guess = Point(cx + span * 1e-6 + 1e-12, cy)
    return guess


def linear_weber_interval(
    points: Iterable[Point], tol: Tolerance = DEFAULT_TOLERANCE
) -> Tuple[Point, Point]:
    """Weber points of a collinear multiset: the median interval.

    Returns ``(low, high)`` — the two (possibly equal) extreme Weber
    points.  With the points sorted along their common line (counting
    multiplicity), the interval spans the ``ceil(n/2)``-th to the
    ``floor(n/2) + 1``-th order statistics; for odd ``n`` the two
    coincide and the Weber point is unique.  This is the paper's
    ``[min(Med(C)), max(Med(C))]``.
    """
    pts: List[Point] = list(points)
    if not pts:
        raise ValueError("Weber interval of an empty set is undefined")
    if not all_collinear(pts, tol):
        raise ValueError("linear_weber_interval requires collinear points")

    anchor = pts[0]
    far = max(pts, key=anchor.distance_to)
    if far.close_to(anchor, tol):
        # All points coincide.
        return anchor, anchor
    params = sorted(project_parameter(anchor, far, p) for p in pts)
    n = len(params)
    lo_t = params[(n - 1) // 2]
    hi_t = params[n // 2]
    direction = far - anchor
    low = anchor + direction * lo_t
    high = anchor + direction * hi_t
    # Canonical order: the anchor -> far parameterization is arbitrary,
    # so normalize to lexicographic order for deterministic callers.
    if high < low:
        low, high = high, low
    return low, high
