"""Orientation-preserving similarity transforms and local robot frames.

Each robot of the paper observes the world in its **own** coordinate
system: its own position is the origin, its unit of distance, its North
and its axis scale are all private.  The only shared convention is
**chirality** — every robot agrees on the clockwise direction — which in
transform language means every local frame is an *orientation-preserving*
similarity (rotation + uniform scaling + translation, **no reflection**).

The simulator uses :class:`Frame` to hand each robot a snapshot in its
private coordinates and to map the computed destination back to global
coordinates.  A property test in ``tests/`` checks the whole algorithm is
invariant under these frames — which is precisely the paper's claim that
the algorithm works for disoriented robots with chirality.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from .point import Point

__all__ = ["Frame", "random_frame", "IDENTITY_FRAME"]


@dataclass(frozen=True)
class Frame:
    """A similarity ``global -> local``, orientation-preserving by default.

    ``local = scale * R(theta) * M * (global - origin)`` where ``R`` is
    the CCW rotation by ``theta`` and ``M`` is the identity, or a mirror
    across the x-axis when ``mirror`` is set.  ``scale > 0`` and
    ``mirror = False`` (the default) guarantee no reflection, hence
    chirality is preserved: a clockwise turn in global coordinates is a
    clockwise turn in every local frame.

    ``mirror = True`` deliberately *violates* the paper's chirality
    assumption — it exists only for the ablation experiment E15, which
    measures what happens when some robots disagree about "clockwise".
    """

    origin: Point
    theta: float
    scale: float
    mirror: bool = False

    def __post_init__(self) -> None:
        if not self.scale > 0.0:
            raise ValueError("frame scale must be positive (chirality)")
        if not math.isfinite(self.scale) or not math.isfinite(self.theta):
            raise ValueError("frame parameters must be finite")

    def to_local(self, p: Point) -> Point:
        """Express a global point in this frame."""
        dx, dy = p.x - self.origin.x, p.y - self.origin.y
        if self.mirror:
            dy = -dy
        c, s = math.cos(self.theta), math.sin(self.theta)
        return Point(
            self.scale * (c * dx - s * dy),
            self.scale * (s * dx + c * dy),
        )

    def to_global(self, p: Point) -> Point:
        """Map a point of this frame back to global coordinates."""
        c, s = math.cos(self.theta), math.sin(self.theta)
        x, y = p.x / self.scale, p.y / self.scale
        gx = c * x + s * y
        gy = -s * x + c * y
        if self.mirror:
            gy = -gy
        return Point(self.origin.x + gx, self.origin.y + gy)

    def with_origin(self, origin: Point) -> "Frame":
        """Same rotation/scale/handedness anchored at a new origin.

        The simulator re-anchors a robot's frame at its current position
        before each LOOK so the robot always sees itself at ``(0, 0)``,
        as the model prescribes.
        """
        return Frame(
            origin=origin, theta=self.theta, scale=self.scale,
            mirror=self.mirror,
        )

    def mirrored(self) -> "Frame":
        """The same frame with flipped handedness (for experiment E15)."""
        return Frame(
            origin=self.origin, theta=self.theta, scale=self.scale,
            mirror=not self.mirror,
        )


#: The trivial frame (global coordinates).
IDENTITY_FRAME = Frame(origin=Point(0.0, 0.0), theta=0.0, scale=1.0)


def random_frame(
    rng: random.Random,
    origin: Point = Point(0.0, 0.0),
    scale_range: tuple = (0.1, 10.0),
) -> Frame:
    """Draw a random orientation-preserving frame.

    The rotation is uniform on ``[0, 2*pi)``; the scale is log-uniform on
    ``scale_range`` so that very small and very large units are equally
    likely — robots disagree on the unit of distance arbitrarily.
    """
    lo, hi = scale_range
    if not (0.0 < lo <= hi):
        raise ValueError("scale_range must be positive and ordered")
    theta = rng.uniform(0.0, 2.0 * math.pi)
    scale = math.exp(rng.uniform(math.log(lo), math.log(hi)))
    return Frame(origin=origin, theta=theta, scale=scale)
