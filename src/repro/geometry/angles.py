"""Angle arithmetic under the paper's chirality convention.

The robots of the paper agree on the *clockwise* direction (chirality) but
not on a common North.  Consequently every angular quantity in the library
is a **clockwise** angle measured at some apex, normalized into
``[0, 2*pi)``.  This module is the single place where the screen-math
orientation mismatch is resolved: the standard mathematical convention is
counter-clockwise-positive, so a clockwise angle is the negation of
``atan2`` differences.

The choice of which rotational sense is called "clockwise" is itself a
global convention of the simulation; what matters for the algorithm is
that *all robots share it*, which the simulator guarantees by generating
only orientation-preserving local frames (see
:mod:`repro.geometry.transforms`).
"""

from __future__ import annotations

import math
from typing import Iterable

from .point import Point
from .tolerance import DEFAULT_TOLERANCE, Tolerance

__all__ = [
    "TWO_PI",
    "normalize_angle",
    "direction_angle",
    "clockwise_angle",
    "rotate_clockwise",
    "rotate_counterclockwise",
    "angle_sum_is_full_turn",
]

TWO_PI = 2.0 * math.pi


def normalize_angle(theta: float) -> float:
    """Normalize an angle into ``[0, 2*pi)``."""
    theta = math.fmod(theta, TWO_PI)
    if theta < 0.0:
        theta += TWO_PI
    # fmod of a value infinitesimally below 0 can round to TWO_PI exactly.
    if theta >= TWO_PI:
        theta -= TWO_PI
    return theta


def direction_angle(origin: Point, target: Point) -> float:
    """Mathematical (CCW) direction angle of the ray ``origin -> target``.

    Used internally as a canonical key; everything chirality-sensitive
    should use :func:`clockwise_angle` instead.
    """
    return math.atan2(target.y - origin.y, target.x - origin.x)


def clockwise_angle(u: Point, apex: Point, v: Point) -> float:
    """The paper's ``angle(u, apex, v)``: clockwise sweep from ``u`` to ``v``.

    Returns the angle in ``[0, 2*pi)`` through which the ray ``apex -> u``
    must be rotated *clockwise* to coincide with the ray ``apex -> v``.

    Raises :class:`ValueError` when either ``u`` or ``v`` coincides with
    the apex (bitwise), because the ray is then undefined; callers dealing
    with multiplicities filter co-apex points first.
    """
    if u == apex or v == apex:
        raise ValueError("angle undefined: endpoint coincides with apex")
    a_u = direction_angle(apex, u)
    a_v = direction_angle(apex, v)
    # CCW convention: sweeping clockwise decreases the math angle.
    return normalize_angle(a_u - a_v)


def rotate_clockwise(p: Point, center: Point, theta: float) -> Point:
    """Rotate ``p`` about ``center`` by ``theta`` radians clockwise."""
    c, s = math.cos(theta), math.sin(theta)
    dx, dy = p.x - center.x, p.y - center.y
    # Clockwise rotation = CCW rotation by -theta.
    return Point(center.x + c * dx + s * dy, center.y - s * dx + c * dy)


def rotate_counterclockwise(p: Point, center: Point, theta: float) -> Point:
    """Rotate ``p`` about ``center`` by ``theta`` radians counter-clockwise."""
    return rotate_clockwise(p, center, -theta)


def angle_sum_is_full_turn(
    angles: Iterable[float], tol: Tolerance = DEFAULT_TOLERANCE
) -> bool:
    """Check that a string of angles closes up to a full turn.

    The string of angles of Definition 4 always sums to ``2*pi`` when the
    apex is strictly inside the angular hull of the points; the invariant
    checkers use this as a sanity predicate.  The tolerance is scaled by
    the number of summands since each contributes its own rounding.
    """
    values = list(angles)
    total = math.fsum(values)
    slack = tol.eps_angle * max(1, len(values))
    return abs(total - TWO_PI) <= slack
