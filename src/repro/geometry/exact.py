"""Exact rational arithmetic — ground truth for the tolerant predicates.

The paper lives on the real plane; the library quantizes it with
tolerances (see :mod:`repro.geometry.tolerance`).  This module provides
an *exact* reference implementation over :class:`fractions.Fraction`
coordinates for every predicate whose outcome is rational-decidable:
orientation, collinearity, point/segment/ray membership, multiplicity
structure, bivalence, and the uniqueness of the linear Weber point
(median order statistics).

It exists for validation, not production: the test suite draws
configurations on coarse rational grids, runs both the tolerant and the
exact pipelines, and requires them to agree (grid spacing is many orders
of magnitude above the tolerances, so any disagreement is a genuine bug
in the tolerant code).  Quasi-regularity and the asymmetric case are
excluded — their Weber points are algebraic, not rational — so the exact
classifier reports ``"nonlinear"`` for anything beyond ``B/M/L1W/L2W``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Sequence, Tuple, Union

__all__ = [
    "ExactPoint",
    "exact_point",
    "orientation_exact",
    "all_collinear_exact",
    "strictly_between_exact",
    "multiplicities_exact",
    "classify_exact",
]

Rational = Union[int, Fraction, str]
#: An exact point: a pair of Fractions.
ExactPoint = Tuple[Fraction, Fraction]


def exact_point(x: Rational, y: Rational) -> ExactPoint:
    """Build an exact point; accepts ints, Fractions or fraction strings."""
    return (Fraction(x), Fraction(y))


def orientation_exact(a: ExactPoint, b: ExactPoint, c: ExactPoint) -> int:
    """Sign of the CCW cross product: 1 = CCW turn, -1 = CW, 0 = collinear."""
    cross = (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
    if cross > 0:
        return 1
    if cross < 0:
        return -1
    return 0


def all_collinear_exact(points: Sequence[ExactPoint]) -> bool:
    """True when all points lie on one line (exact)."""
    distinct: List[ExactPoint] = []
    for p in points:
        if p not in distinct:
            distinct.append(p)
    if len(distinct) <= 2:
        return True
    a, b = distinct[0], distinct[1]
    return all(orientation_exact(a, b, p) == 0 for p in distinct[2:])


def strictly_between_exact(
    a: ExactPoint, b: ExactPoint, p: ExactPoint
) -> bool:
    """True when ``p`` lies on the open segment ``(a, b)`` (exact)."""
    if p == a or p == b or a == b:
        return False
    if orientation_exact(a, b, p) != 0:
        return False
    dot = (p[0] - a[0]) * (b[0] - a[0]) + (p[1] - a[1]) * (b[1] - a[1])
    length_sq = (b[0] - a[0]) ** 2 + (b[1] - a[1]) ** 2
    return 0 < dot < length_sq


def multiplicities_exact(
    points: Sequence[ExactPoint],
) -> Dict[ExactPoint, int]:
    """Exact multiset structure: distinct location -> robot count."""
    mult: Dict[ExactPoint, int] = {}
    for p in points:
        mult[p] = mult.get(p, 0) + 1
    return mult


def _linear_median_unique(points: Sequence[ExactPoint]) -> bool:
    """Exact L1W/L2W discriminator: is the median order statistic unique?

    Precondition: the points are collinear with at least two distinct
    locations.  Projects onto the dominant axis of the common line (a
    monotone, hence order-preserving, map for collinear points).
    """
    distinct = sorted(set(points))
    a, b = distinct[0], distinct[-1]
    dx, dy = b[0] - a[0], b[1] - a[1]
    if abs(dx) >= abs(dy):
        keys = sorted(p[0] if dx != 0 else p[1] for p in points)
    else:
        keys = sorted(p[1] for p in points)
    n = len(keys)
    return keys[(n - 1) // 2] == keys[n // 2]


def classify_exact(points: Sequence[ExactPoint]) -> str:
    """Exact Section IV classification for rational-decidable classes.

    Returns one of ``"B"``, ``"M"``, ``"L1W"``, ``"L2W"`` or
    ``"nonlinear"`` (the latter lumping ``QR`` and ``A``, whose
    discrimination requires the — generally irrational — Weber point).
    """
    if not points:
        raise ValueError("empty configuration")
    mult = multiplicities_exact(points)
    if len(mult) == 2:
        counts = sorted(mult.values())
        if counts[0] == counts[1]:
            return "B"
    top = max(mult.values())
    if sum(1 for m in mult.values() if m == top) == 1:
        return "M"
    if all_collinear_exact(points):
        return "L1W" if _linear_median_unique(points) else "L2W"
    return "nonlinear"
