"""Tolerance model shared by every geometric predicate in the library.

The paper models robots as points on the real plane and its case analysis
relies on *combinatorial* predicates: "are these two points equal?", "are
these three points collinear?", "are these two angles equal?".  A floating
point simulation cannot answer those questions exactly, so every predicate
in :mod:`repro.geometry` and :mod:`repro.core` funnels through a single
:class:`Tolerance` object.  This guarantees that the whole stack quantizes
the plane consistently: if two points are "equal" for multiplicity
detection they are also "equal" for collinearity, views, and the string of
angles.

Design rules (see DESIGN.md section 4):

* ``eps_dist`` — two points closer than this are the same point.
* ``eps_angle`` — two angles closer than this (in radians) are equal.
* Numerical root finders used internally (e.g. Weiszfeld iteration) must
  converge at least two orders of magnitude below these thresholds.

A module-level :data:`DEFAULT_TOLERANCE` is used wherever the caller does
not supply one; it is deliberately loose enough to absorb accumulated
``float64`` rounding over thousands of simulation rounds, and tight enough
to distinguish any two points a workload generator ever produces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Tolerance", "DEFAULT_TOLERANCE"]

_TWO_PI = 2.0 * math.pi


@dataclass(frozen=True)
class Tolerance:
    """Bundle of the epsilons used by all tolerant geometric predicates.

    Instances are immutable; build a variant with
    :meth:`dataclasses.replace` when an experiment needs a different
    quantization (e.g. the delta-sensitivity sweep of experiment E8).
    """

    #: Distance below which two points are considered identical.
    eps_dist: float = 1e-9

    #: Angular difference (radians) below which two angles are equal.
    eps_angle: float = 1e-9

    #: Convergence threshold for internal fixed-point iterations
    #: (Weiszfeld).  Must be well below ``eps_dist``.
    eps_solver: float = 1e-13

    def __post_init__(self) -> None:
        if self.eps_dist <= 0 or self.eps_angle <= 0 or self.eps_solver <= 0:
            raise ValueError("tolerances must be strictly positive")
        if self.eps_solver >= self.eps_dist:
            raise ValueError(
                "solver tolerance must be below the distance tolerance "
                f"(got eps_solver={self.eps_solver!r} >= eps_dist={self.eps_dist!r})"
            )

    # -- scalar predicates -------------------------------------------------

    def is_zero(self, value: float) -> bool:
        """True when ``value`` is indistinguishable from zero as a length."""
        return abs(value) <= self.eps_dist

    def same_length(self, a: float, b: float) -> bool:
        """True when two lengths are indistinguishable."""
        return abs(a - b) <= self.eps_dist

    def is_zero_angle(self, value: float) -> bool:
        """True when ``value`` is indistinguishable from zero as an angle.

        Angles that differ from a full turn by less than ``eps_angle`` are
        also zero: the callers always normalize into ``[0, 2*pi)`` and a
        value just below ``2*pi`` is the same direction as ``0``.
        """
        v = math.fmod(abs(value), _TWO_PI)
        return v <= self.eps_angle or (_TWO_PI - v) <= self.eps_angle

    def same_angle(self, a: float, b: float) -> bool:
        """True when two angles (radians) denote the same direction."""
        return self.is_zero_angle(a - b)

    # -- quantization helpers ----------------------------------------------

    def quantize_length(self, value: float) -> float:
        """Snap a length onto the ``eps_dist`` grid.

        Quantization makes derived hash keys and lexicographic
        comparisons deterministic: two lengths that compare equal under
        :meth:`same_length` *usually* quantize to the same grid cell.  The
        residual risk of straddling a cell boundary is why all semantic
        decisions use the predicates above and quantization is reserved
        for canonical serialization (views, hashing).
        """
        return round(value / self.eps_dist) * self.eps_dist

    def quantize_angle(self, value: float) -> float:
        """Snap an angle onto the ``eps_angle`` grid (see above)."""
        return round(value / self.eps_angle) * self.eps_angle


#: Shared default used when a caller does not provide a tolerance.
DEFAULT_TOLERANCE = Tolerance()
