"""Immutable 2-D points/vectors.

``Point`` doubles as a position and a displacement vector, mirroring the
paper's identification of robots with points of the plane.  The class is a
frozen dataclass so points can key dictionaries (multiplicity counting in
:class:`repro.core.configuration.Configuration`) and live in sets.

Only exact (bitwise) equality is defined on ``Point`` itself — tolerant
equality is a *relation between points and a* :class:`Tolerance` and lives
in :func:`Point.close_to` and the predicates module, so that accidental
``==`` never silently applies an epsilon.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

from .tolerance import DEFAULT_TOLERANCE, Tolerance

__all__ = ["Point", "ORIGIN", "centroid", "distance"]


@dataclass(frozen=True, order=True)
class Point:
    """A point (or free vector) of the Euclidean plane.

    The default ordering is lexicographic by ``(x, y)``; it is used only
    for deterministic tie-breaking in canonical serializations, never for
    geometric decisions.
    """

    x: float
    y: float

    # -- vector space ------------------------------------------------------

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Point":
        return Point(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    # -- metric ------------------------------------------------------------

    def norm(self) -> float:
        """Euclidean length of this point read as a vector."""
        return math.hypot(self.x, self.y)

    def norm_sq(self) -> float:
        """Squared Euclidean length (avoids the sqrt when comparing)."""
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance ``|self, other|`` (paper notation)."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def dot(self, other: "Point") -> float:
        """Dot product of two vectors."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point") -> float:
        """Z-component of the 3-D cross product.

        Positive when ``other`` is counter-clockwise from ``self`` in the
        standard mathematical orientation.  All *clockwise* reasoning in
        the library goes through :mod:`repro.geometry.angles` so that the
        chirality convention is stated in exactly one place.
        """
        return self.x * other.y - self.y * other.x

    # -- construction helpers ----------------------------------------------

    def normalized(self) -> "Point":
        """Unit vector in the same direction.

        Raises :class:`ZeroDivisionError` for the zero vector; callers
        must guard with the tolerance predicate appropriate for them.
        """
        n = self.norm()
        if n == 0.0:
            raise ZeroDivisionError("cannot normalize the zero vector")
        return Point(self.x / n, self.y / n)

    def perpendicular(self) -> "Point":
        """The vector rotated by +90 degrees (counter-clockwise)."""
        return Point(-self.y, self.x)

    def close_to(self, other: "Point", tol: Tolerance = DEFAULT_TOLERANCE) -> bool:
        """Tolerant point identity: within ``tol.eps_dist``."""
        return self.distance_to(other) <= tol.eps_dist

    def as_tuple(self) -> Tuple[float, float]:
        """Plain tuple, for numpy interchange and serialization."""
        return (self.x, self.y)

    def __repr__(self) -> str:  # compact, round-trippable
        return f"Point({self.x!r}, {self.y!r})"


#: The origin of the global coordinate system.
ORIGIN = Point(0.0, 0.0)


def centroid(points: Iterable[Point]) -> Point:
    """Arithmetic mean of a non-empty collection of points.

    This is the "center of gravity" of the gravitational convergence
    baseline [9]; it is *not* the Weber point.
    """
    pts = list(points)
    if not pts:
        raise ValueError("centroid of an empty collection is undefined")
    sx = math.fsum(p.x for p in pts)
    sy = math.fsum(p.y for p in pts)
    return Point(sx / len(pts), sy / len(pts))


def distance(a: Point, b: Point) -> float:
    """Euclidean distance, free-function form used in comprehensions."""
    return a.distance_to(b)
