"""Tolerant combinatorial predicates on points.

These are the questions the paper's case analysis asks of a configuration:
orientation of a triple, collinearity of a set, membership of a point in a
segment or ray.  Each predicate takes an explicit :class:`Tolerance` so a
test or experiment can tighten/loosen quantization globally.

Orientation is reported in the *chirality* convention of the paper: the
triple ``(a, b, c)`` is ``CLOCKWISE`` when walking ``a -> b -> c`` turns in
the robots' agreed clockwise sense.
"""

from __future__ import annotations

import enum
from typing import Iterable, List, Sequence

from .point import Point
from .tolerance import DEFAULT_TOLERANCE, Tolerance

__all__ = [
    "Orientation",
    "orientation",
    "are_collinear",
    "all_collinear",
    "point_on_segment",
    "point_strictly_between",
    "points_on_open_segment",
    "on_ray",
    "project_parameter",
]


class Orientation(enum.Enum):
    """Orientation of an ordered point triple under chirality."""

    COLLINEAR = 0
    CLOCKWISE = 1
    COUNTERCLOCKWISE = 2


def _cross3(a: Point, b: Point, c: Point) -> float:
    """Cross product of ``(b - a)`` and ``(c - a)`` (CCW-positive)."""
    return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)


def orientation(
    a: Point, b: Point, c: Point, tol: Tolerance = DEFAULT_TOLERANCE
) -> Orientation:
    """Orientation of the triple ``(a, b, c)``.

    The collinearity band scales with the lengths involved so the
    predicate is meaningful both for unit-scale and kilo-scale workloads:
    the raw cross product has units of area, so we compare it against
    ``eps_dist * max(|ab|, |ac|)`` — i.e. "c is within ``eps_dist`` of the
    line through a and b".
    """
    cross = _cross3(a, b, c)
    scale = max(a.distance_to(b), a.distance_to(c), 1.0)
    if abs(cross) <= tol.eps_dist * scale:
        return Orientation.COLLINEAR
    # CCW-positive cross means the turn is counter-clockwise in math
    # convention, which is the *opposite* of the chirality convention.
    return Orientation.COUNTERCLOCKWISE if cross > 0 else Orientation.CLOCKWISE


def are_collinear(
    a: Point, b: Point, c: Point, tol: Tolerance = DEFAULT_TOLERANCE
) -> bool:
    """True when the three points lie on one line (within tolerance)."""
    return orientation(a, b, c, tol) is Orientation.COLLINEAR


def all_collinear(
    points: Iterable[Point], tol: Tolerance = DEFAULT_TOLERANCE
) -> bool:
    """True when *all* points lie on a single line.

    This is the paper's "linear configuration" predicate.  Fewer than
    three distinct points are always collinear.  The reference line is
    spanned by the two most distant of the first three distinct points to
    keep the band stable; the remaining points are tested against it.
    """
    pts: List[Point] = list(points)
    # Find two distinct anchor points.
    anchor_a = pts[0] if pts else None
    anchor_b = None
    for p in pts[1:]:
        if anchor_a is not None and not p.close_to(anchor_a, tol):
            anchor_b = p
            break
    if anchor_a is None or anchor_b is None:
        return True
    # Prefer the farthest point from anchor_a as the second anchor: a
    # longer baseline makes the collinearity band tighter and symmetric.
    far = max(pts, key=anchor_a.distance_to)
    if not far.close_to(anchor_a, tol):
        anchor_b = far
    return all(are_collinear(anchor_a, anchor_b, p, tol) for p in pts)


def project_parameter(a: Point, b: Point, p: Point) -> float:
    """Scalar ``t`` with ``a + t*(b - a)`` the projection of ``p`` on line ab.

    Precondition: ``a != b`` bitwise.  ``t`` parameterizes the line so that
    ``t = 0`` at ``a`` and ``t = 1`` at ``b``; used to order collinear
    points along their common line.
    """
    d = b - a
    denom = d.norm_sq()
    if denom == 0.0:
        raise ValueError("degenerate segment: a == b")
    return (p - a).dot(d) / denom


def point_on_segment(
    a: Point, b: Point, p: Point, tol: Tolerance = DEFAULT_TOLERANCE
) -> bool:
    """True when ``p`` lies on the closed segment ``[a, b]``."""
    if p.close_to(a, tol) or p.close_to(b, tol):
        return True
    if a.close_to(b, tol):
        return p.close_to(a, tol)
    if not are_collinear(a, b, p, tol):
        return False
    t = project_parameter(a, b, p)
    span = a.distance_to(b)
    slack = tol.eps_dist / span
    return -slack <= t <= 1.0 + slack


def point_strictly_between(
    a: Point, b: Point, p: Point, tol: Tolerance = DEFAULT_TOLERANCE
) -> bool:
    """True when ``p`` lies on the *open* segment ``(a, b)``.

    This is the paper's "a robot is located in ``(r, c)``" test that
    decides whether a robot in an ``M`` configuration is free or blocked.
    """
    if p.close_to(a, tol) or p.close_to(b, tol):
        return False
    return point_on_segment(a, b, p, tol)


def points_on_open_segment(
    a: Point,
    b: Point,
    points: Iterable[Point],
    tol: Tolerance = DEFAULT_TOLERANCE,
) -> List[Point]:
    """All input points lying strictly between ``a`` and ``b``."""
    return [p for p in points if point_strictly_between(a, b, p, tol)]


def on_ray(
    origin: Point, through: Point, p: Point, tol: Tolerance = DEFAULT_TOLERANCE
) -> bool:
    """True when ``p`` lies on the half-line ``HF(origin, through)``.

    Following the paper's definition, the half-line *excludes* its origin
    but includes every point beyond, in the direction of ``through``.
    """
    if through.close_to(origin, tol):
        raise ValueError("ray undefined: origin == through")
    if p.close_to(origin, tol):
        return False
    if not are_collinear(origin, through, p, tol):
        return False
    t = project_parameter(origin, through, p)
    return t > 0.0


def points_sorted_along(
    a: Point, b: Point, points: Sequence[Point]
) -> List[Point]:
    """Collinear points sorted by their parameter along the line ``a -> b``."""
    return sorted(points, key=lambda p: project_parameter(a, b, p))


__all__.append("points_sorted_along")
