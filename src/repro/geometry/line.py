"""Lines, half-lines and segments (paper Section II notation).

The paper writes ``line(u, v)`` for the infinite line through two points,
``(u, v)`` / ``[u, v]`` for open/closed segments, and ``HF(u, v)`` for the
half-line starting at (and excluding) ``u`` through ``v``.  These small
value classes carry that notation into code; the heavy lifting is done by
:mod:`repro.geometry.predicates`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from .point import Point
from .predicates import (
    are_collinear,
    on_ray,
    point_on_segment,
    point_strictly_between,
    project_parameter,
)
from .tolerance import DEFAULT_TOLERANCE, Tolerance

__all__ = ["Line", "Segment", "HalfLine"]


@dataclass(frozen=True)
class Line:
    """The infinite line ``line(a, b)`` through two distinct points."""

    a: Point
    b: Point

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError("a line needs two distinct points")

    def contains(self, p: Point, tol: Tolerance = DEFAULT_TOLERANCE) -> bool:
        return are_collinear(self.a, self.b, p, tol)

    def parameter_of(self, p: Point) -> float:
        """Affine coordinate of ``p`` along the line (0 at ``a``, 1 at ``b``)."""
        return project_parameter(self.a, self.b, p)

    def point_at(self, t: float) -> Point:
        """Inverse of :meth:`parameter_of`."""
        return self.a + (self.b - self.a) * t

    def project(self, p: Point) -> Point:
        """Orthogonal projection of ``p`` onto the line."""
        return self.point_at(self.parameter_of(p))


@dataclass(frozen=True)
class Segment:
    """The closed segment ``[a, b]``; open/strict membership via flags."""

    a: Point
    b: Point

    def length(self) -> float:
        return self.a.distance_to(self.b)

    def midpoint(self) -> Point:
        return (self.a + self.b) / 2.0

    def contains(self, p: Point, tol: Tolerance = DEFAULT_TOLERANCE) -> bool:
        """Membership in the *closed* segment ``[a, b]``."""
        return point_on_segment(self.a, self.b, p, tol)

    def contains_strictly(
        self, p: Point, tol: Tolerance = DEFAULT_TOLERANCE
    ) -> bool:
        """Membership in the *open* segment ``(a, b)``."""
        return point_strictly_between(self.a, self.b, p, tol)

    def interior_points(
        self, points: Iterable[Point], tol: Tolerance = DEFAULT_TOLERANCE
    ) -> List[Point]:
        """The input points lying strictly inside the segment."""
        return [p for p in points if self.contains_strictly(p, tol)]


@dataclass(frozen=True)
class HalfLine:
    """The paper's ``HF(origin, through)``: the open ray from ``origin``.

    The origin itself is *excluded* (Section II); this matters when
    counting robots on rays for the safe-point predicate (Definition 8).
    """

    origin: Point
    through: Point

    def __post_init__(self) -> None:
        if self.origin == self.through:
            raise ValueError("a half-line needs two distinct points")

    def contains(self, p: Point, tol: Tolerance = DEFAULT_TOLERANCE) -> bool:
        return on_ray(self.origin, self.through, p, tol)

    def count_points(
        self, points: Iterable[Point], tol: Tolerance = DEFAULT_TOLERANCE
    ) -> int:
        """Number of points (with repetition) lying on the half-line."""
        return sum(1 for p in points if self.contains(p, tol))
