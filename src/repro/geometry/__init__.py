"""Planar geometry substrate for the gathering reproduction.

Everything the paper's algorithm needs from the plane lives here:
tolerant predicates, clockwise angles under chirality, smallest enclosing
circles, convex hulls, orientation-preserving local frames, and Weber
point machinery.  See DESIGN.md section 3 for the inventory and section 4
for the tolerance model.
"""

from . import kernels
from .angles import (
    TWO_PI,
    angle_sum_is_full_turn,
    clockwise_angle,
    direction_angle,
    normalize_angle,
    rotate_clockwise,
    rotate_counterclockwise,
)
from .circle import Circle, circumcircle, smallest_enclosing_circle
from .convex_hull import convex_hull, in_convex_hull
from .line import HalfLine, Line, Segment
from .point import ORIGIN, Point, centroid, distance
from .predicates import (
    Orientation,
    all_collinear,
    are_collinear,
    on_ray,
    orientation,
    point_on_segment,
    point_strictly_between,
    points_on_open_segment,
    points_sorted_along,
    project_parameter,
)
from .tolerance import DEFAULT_TOLERANCE, Tolerance
from .transforms import IDENTITY_FRAME, Frame, random_frame
from .weber import (
    WeberResult,
    geometric_median,
    is_weber_point,
    linear_weber_interval,
    sum_of_distances,
    unit_vector_sum,
)

__all__ = [
    "kernels",
    "TWO_PI",
    "angle_sum_is_full_turn",
    "clockwise_angle",
    "direction_angle",
    "normalize_angle",
    "rotate_clockwise",
    "rotate_counterclockwise",
    "Circle",
    "circumcircle",
    "smallest_enclosing_circle",
    "convex_hull",
    "in_convex_hull",
    "HalfLine",
    "Line",
    "Segment",
    "ORIGIN",
    "Point",
    "centroid",
    "distance",
    "Orientation",
    "all_collinear",
    "are_collinear",
    "on_ray",
    "orientation",
    "point_on_segment",
    "point_strictly_between",
    "points_on_open_segment",
    "points_sorted_along",
    "project_parameter",
    "DEFAULT_TOLERANCE",
    "Tolerance",
    "IDENTITY_FRAME",
    "Frame",
    "random_frame",
    "WeberResult",
    "geometric_median",
    "is_weber_point",
    "linear_weber_interval",
    "sum_of_distances",
    "unit_vector_sum",
]
