"""Wire protocol of ``repro serve``: request parsing, response bodies.

One deliberate property runs through everything here: **response bodies
are deterministic**.  A ``POST /run`` body is a pure function of the
request's ``(scenario, seed)`` plus the server's backend / engine /
code version — no timestamps, no request ids, no counters.  That is
what lets the content-addressed store hand back the *exact bytes* of
the first computation on every later hit, and what lets a sweep
response (a concatenation of per-seed run bodies plus one deterministic
summary line) be compared byte for byte across requests and daemons.

Malformed requests raise
:class:`~repro.resilience.errors.TraceFormatError` (HTTP 400 via the
taxonomy's ``http_status``) — the same error a corrupted trace archive
raises, because both are "the input bytes were wrong" failures.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Optional

from ..experiments.runner import Scenario
from ..resilience import TraceFormatError
from ..resilience.journal import result_to_dict

__all__ = [
    "SERVE_SCHEMA",
    "MAX_BODY_BYTES",
    "MAX_SWEEP_SEEDS",
    "RunRequest",
    "SweepRequest",
    "parse_json_body",
    "parse_run_request",
    "parse_sweep_request",
    "run_body",
    "sweep_summary_line",
    "error_body",
]

#: Schema identifier carried by every response body.
SERVE_SCHEMA = "repro-serve-v1"

#: Request bodies larger than this are rejected up front (a scenario
#: plus a seed list is a few hundred bytes; anything bigger is abuse).
MAX_BODY_BYTES = 1 << 20

#: Upper bound on seeds per sweep request — one request must stay a
#: bounded unit of work; bigger sweeps are split client-side.
MAX_SWEEP_SEEDS = 4096


@dataclass(frozen=True)
class RunRequest:
    """One parsed ``POST /run`` body."""

    scenario: Scenario
    seed: int
    use_cache: bool
    #: Per-request deadline override in seconds (``None``: the server's
    #: ``--request-deadline`` applies).
    deadline_s: Optional[float] = None


@dataclass(frozen=True)
class SweepRequest:
    """One parsed ``POST /sweep`` body."""

    scenario: Scenario
    seeds: List[int]
    use_cache: bool
    deadline_s: Optional[float] = None


def parse_json_body(raw: bytes, *, where: str = "request") -> dict:
    """Request bytes -> dict, or a taxonomy error the server maps to 400."""
    if len(raw) > MAX_BODY_BYTES:
        raise TraceFormatError(
            f"{where}: body of {len(raw)} bytes exceeds the "
            f"{MAX_BODY_BYTES}-byte limit",
            path=f"<{where}>",
        )
    try:
        data = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceFormatError(
            f"{where}: body is not valid JSON: {exc}", path=f"<{where}>"
        ) from exc
    if not isinstance(data, dict):
        raise TraceFormatError(
            f"{where}: body must be a JSON object, got "
            f"{type(data).__name__}",
            path=f"<{where}>",
        )
    return data


def _parse_scenario(data: dict, *, where: str) -> Scenario:
    raw = data.get("scenario")
    if not isinstance(raw, dict):
        raise TraceFormatError(
            f"{where}: missing or non-object 'scenario' field",
            path=f"<{where}>",
        )
    try:
        # from_dict rejects unknown keys loudly and the constructor
        # rejects missing required ones — the same schema discipline the
        # trace archive enforces, so a serve client and a trace file can
        # never disagree about what a scenario is.
        return Scenario.from_dict(raw)
    except (TypeError, ValueError) as exc:
        raise TraceFormatError(
            f"{where}: bad scenario: {exc}", path=f"<{where}>"
        ) from exc


def _parse_int(data: dict, field: str, default: int, *, where: str) -> int:
    value = data.get(field, default)
    # bool is an int subclass; a request saying "seed": true is a bug.
    if isinstance(value, bool) or not isinstance(value, int):
        raise TraceFormatError(
            f"{where}: field {field!r} must be an integer, got "
            f"{type(value).__name__}",
            path=f"<{where}>",
        )
    return value


def _parse_use_cache(data: dict, *, where: str) -> bool:
    value = data.get("cache", True)
    if not isinstance(value, bool):
        raise TraceFormatError(
            f"{where}: field 'cache' must be a boolean",
            path=f"<{where}>",
        )
    return value


def _parse_deadline(data: dict, *, where: str) -> Optional[float]:
    """Optional ``"deadline_s"``: a positive number of seconds.

    The per-request form of the server's ``--request-deadline`` — a
    client that knows its own patience (an interactive UI vs. a batch
    crawler) says so here and the server frees the slot at that point.
    """
    value = data.get("deadline_s")
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TraceFormatError(
            f"{where}: field 'deadline_s' must be a number of seconds",
            path=f"<{where}>",
        )
    if not value > 0:
        raise TraceFormatError(
            f"{where}: field 'deadline_s' must be > 0, got {value}",
            path=f"<{where}>",
        )
    return float(value)


def parse_run_request(data: dict) -> RunRequest:
    """Validated ``POST /run`` body: ``{"scenario": {...}, "seed": N}``.

    ``"cache": false`` opts this one request out of the result store
    (both lookup and fill) — the per-request form of ``--no-cache``.
    ``"deadline_s": 2.5`` bounds this request's wall clock.
    """
    where = "POST /run"
    return RunRequest(
        scenario=_parse_scenario(data, where=where),
        seed=_parse_int(data, "seed", 0, where=where),
        use_cache=_parse_use_cache(data, where=where),
        deadline_s=_parse_deadline(data, where=where),
    )


def parse_sweep_request(data: dict) -> SweepRequest:
    """Validated ``POST /sweep`` body.

    Seeds come either explicitly (``"seeds": [0, 1, 2]``) or as a range
    (``"seed_start"`` + ``"seed_count"``, mirroring the CLI's
    ``--seed-start``/``--seeds`` flags).
    """
    where = "POST /sweep"
    scenario = _parse_scenario(data, where=where)
    if "seeds" in data:
        raw = data["seeds"]
        if not isinstance(raw, list) or not raw:
            raise TraceFormatError(
                f"{where}: 'seeds' must be a non-empty list of integers",
                path=f"<{where}>",
            )
        seeds = []
        for value in raw:
            if isinstance(value, bool) or not isinstance(value, int):
                raise TraceFormatError(
                    f"{where}: 'seeds' must contain only integers",
                    path=f"<{where}>",
                )
            seeds.append(value)
    else:
        start = _parse_int(data, "seed_start", 0, where=where)
        count = _parse_int(data, "seed_count", 16, where=where)
        if count < 1:
            raise TraceFormatError(
                f"{where}: 'seed_count' must be >= 1, got {count}",
                path=f"<{where}>",
            )
        seeds = list(range(start, start + count))
    if len(seeds) > MAX_SWEEP_SEEDS:
        raise TraceFormatError(
            f"{where}: {len(seeds)} seeds exceeds the per-request limit "
            f"of {MAX_SWEEP_SEEDS}; split the sweep client-side",
            path=f"<{where}>",
        )
    return SweepRequest(
        scenario=scenario,
        seeds=seeds,
        use_cache=_parse_use_cache(data, where=where),
        deadline_s=_parse_deadline(data, where=where),
    )


def _dump(payload: dict) -> str:
    # Compact, key-sorted, newline-terminated: the canonical one-line
    # form every cached body and every sweep stream line uses.
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def run_body(
    key: str,
    scenario: Scenario,
    seed: int,
    result,
    *,
    backend: str,
    code_version: str,
) -> str:
    """The deterministic ``POST /run`` response body (also one sweep
    stream line — ``/run`` and ``/sweep`` share cache entries)."""
    return _dump(
        {
            "schema": SERVE_SCHEMA,
            "kind": "run",
            "key": key,
            "scenario": scenario.to_dict(),
            "seed": seed,
            "context": {
                "backend": backend,
                "engine": scenario.engine,
                "code_version": code_version,
            },
            "result": result_to_dict(result),
        }
    )


def sweep_summary_line(
    scenario: Scenario, seeds: List[int], verdicts: dict
) -> str:
    """The deterministic trailer of a ``POST /sweep`` stream.

    Carries only request-derived facts (seed count, verdict tally) —
    cache and latency live in ``GET /metrics``, never in a body that
    must be byte-stable across repeats.
    """
    return _dump(
        {
            "schema": SERVE_SCHEMA,
            "kind": "sweep_summary",
            "scenario": scenario.to_dict(),
            "seeds": len(seeds),
            "seed_first": seeds[0],
            "seed_last": seeds[-1],
            "verdicts": {k: verdicts[k] for k in sorted(verdicts)},
        }
    )


def error_body(exc: BaseException, *, status: Optional[int] = None) -> str:
    """Structured error JSON for a failed request.

    The taxonomy's ``http_status`` picks the HTTP code; the body names
    the exception type so a client can branch on failure kind without
    parsing prose.
    """
    return _dump(
        {
            "schema": SERVE_SCHEMA,
            "kind": "error",
            "error": type(exc).__name__,
            "status": status
            if status is not None
            else getattr(exc, "http_status", 500),
            "message": str(exc),
        }
    )
