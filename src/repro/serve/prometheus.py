"""Prometheus text exposition of the daemon's metrics document.

``GET /metrics`` speaks two formats from one source of truth: the
``repro-serve-metrics-v1`` JSON document (the default, unchanged) and
— when the client's ``Accept`` header asks for ``text/plain`` or
``application/openmetrics-text`` — the Prometheus text exposition
format (version 0.0.4) rendered here.  The exposition is generated
*from* the JSON document, never recorded separately, so the two views
cannot drift: every number a scraper sees is the number the JSON
carries.

Mapping rules:

* dotted counter names become underscored ``repro_*`` counters with a
  ``_total`` suffix — ``serve.run.requests`` →
  ``repro_serve_run_requests_total``;
* cache counters are exposed as ``repro_serve_cache_<name>_total``;
* latency histograms become cumulative-bucket Prometheus histograms
  with **bit-identical bounds**: the ``le`` labels are the exact
  :mod:`repro.obs.histogram` log-spaced boundaries (``repr``-formatted,
  which round-trips floats), bucket values are the cumulative sums of
  the stored per-bucket counts (underflow folds into the first bucket,
  overflow into ``+Inf``), and ``_sum`` / ``_count`` are the stored
  total and count;
* the robustness block surfaces as gauges (``repro_serve_ready``,
  ``repro_serve_inflight``, …) plus a one-hot
  ``repro_serve_breaker_state{state="..."}``.

Output is deterministically ordered (sorted within each family block)
so the exposition is golden-testable byte for byte.
"""

from __future__ import annotations

import re
from typing import List

__all__ = ["CONTENT_TYPE", "wants_prometheus", "exposition"]

#: Content type of the rendered exposition (Prometheus text format).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_CLEAN = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(dotted: str, suffix: str = "") -> str:
    return "repro_" + _NAME_CLEAN.sub("_", dotted) + suffix


def wants_prometheus(accept: str) -> bool:
    """Does this ``Accept`` header ask for the text exposition?

    JSON stays the default: only an explicit ``text/plain`` or
    ``application/openmetrics-text`` media type switches formats —
    ``*/*``, an absent header, or ``application/json`` all keep the
    ``repro-serve-metrics-v1`` document.
    """
    for part in (accept or "").split(","):
        media = part.split(";", 1)[0].strip().lower()
        if media in ("text/plain", "application/openmetrics-text"):
            return True
    return False


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _counter(lines: List[str], name: str, value, help_text: str) -> None:
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} counter")
    lines.append(f"{name} {_format_value(value)}")


def _gauge(lines: List[str], name: str, value, help_text: str) -> None:
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} gauge")
    lines.append(f"{name} {_format_value(value)}")


def _histogram(lines: List[str], name: str, data: dict, help_text: str) -> None:
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} histogram")
    bounds = data["bounds"]
    counts = data["counts"]
    cumulative = 0
    for i, bound in enumerate(bounds):
        cumulative += counts[i]
        lines.append(f'{name}_bucket{{le="{bound!r}"}} {cumulative}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {data["count"]}')
    lines.append(f"{name}_sum {_format_value(data['total'])}")
    lines.append(f"{name}_count {data['count']}")


def exposition(document: dict) -> str:
    """Render a ``repro-serve-metrics-v1`` document as Prometheus text."""
    lines: List[str] = []
    for dotted in sorted(document.get("requests", {})):
        _counter(
            lines,
            _metric_name(dotted, "_total"),
            document["requests"][dotted],
            f"Serve counter {dotted}",
        )
    for dotted in sorted(document.get("request_latency", {})):
        _histogram(
            lines,
            _metric_name(dotted),
            document["request_latency"][dotted],
            f"Serve latency histogram {dotted} (seconds)",
        )
    cache = document.get("cache", {})
    for name in sorted(cache):
        value = cache[name]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue  # e.g. the disk-root path; not a sample
        if name in ("memory_entries", "memory_limit"):
            _gauge(
                lines,
                _metric_name(f"serve.cache.store.{name}"),
                value,
                f"Result store gauge {name}",
            )
        else:
            _counter(
                lines,
                _metric_name(f"serve.cache.store.{name}", "_total"),
                value,
                f"Result store counter {name}",
            )
    robustness = document.get("robustness", {})
    _gauge(
        lines,
        "repro_serve_ready",
        robustness.get("ready", False),
        "1 while the daemon should receive traffic",
    )
    _gauge(
        lines,
        "repro_serve_draining",
        robustness.get("draining", False),
        "1 while the daemon is draining for shutdown",
    )
    _gauge(
        lines,
        "repro_serve_inflight",
        robustness.get("inflight", 0),
        "Admitted in-flight work (weighted units)",
    )
    max_inflight = robustness.get("max_inflight")
    if max_inflight is not None:
        _gauge(
            lines,
            "repro_serve_max_inflight",
            max_inflight,
            "In-flight admission budget (weighted units)",
        )
    _gauge(
        lines,
        "repro_serve_coalesced_total",
        robustness.get("coalesced", 0),
        "Requests served by another request's computation",
    )
    breaker = robustness.get("breaker_state", "closed")
    lines.append(
        "# HELP repro_serve_breaker_state "
        "One-hot circuit breaker state"
    )
    lines.append("# TYPE repro_serve_breaker_state gauge")
    for state in ("closed", "half_open", "open"):
        flag = 1 if breaker == state else 0
        lines.append(
            f'repro_serve_breaker_state{{state="{state}"}} {flag}'
        )
    _gauge(
        lines,
        "repro_serve_uptime_seconds",
        document.get("uptime_s", 0.0),
        "Daemon uptime in seconds",
    )
    return "\n".join(lines) + "\n"
