"""The ``repro serve`` daemon: gathering-as-a-service over HTTP/JSON.

Stdlib only (:class:`http.server.ThreadingHTTPServer`), one process,
five endpoints:

* ``POST /run`` — one ``(scenario, seed)`` simulation; body is the
  deterministic JSON of :func:`~repro.serve.protocol.run_body`.
* ``POST /sweep`` — a seed range, streamed as newline-delimited JSON in
  a chunked response: one run body per seed in seed order, then one
  deterministic summary line.  Per-seed lines share cache entries with
  ``/run``.
* ``GET /healthz`` — liveness (never touches the simulator or store),
  plus the readiness fields for humans.
* ``GET /readyz`` — readiness as a status code: 200 while the daemon
  should receive traffic, 503 while draining or while the circuit
  breaker is open (the worker pool keeps crashing).
* ``GET /metrics`` — request counters and latency histograms, cache
  counters, the robustness block (in-flight budget, breaker state,
  shed/deadline/coalesce/quarantine counters), and a
  ``repro-sweep-metrics-v1`` aggregate of everything the simulations
  recorded, namespaced per endpoint.

The daemon amortizes exactly the two costs the CLI pays per invocation:
interpreter + import startup (the process is long-lived) and worker-pool
construction (one shared :class:`~repro.resilience.ResilientExecutor`
survives across requests, rebuilding itself after breakage like any
sweep).  On top of that, determinism makes results cacheable forever:
repeated traffic is answered from the content-addressed
:class:`~repro.serve.store.ResultStore` at memory speed with
byte-identical bodies.

Self-protection (PR 9) mirrors the paper's wait-freedom at the HTTP
layer: a weighted in-flight budget sheds excess load as structured 429s
(``Retry-After`` included) instead of growing unbounded handler threads;
every request runs under a wall-clock deadline
(:class:`~repro.serve.admission.Deadline`) so a wedged seed becomes a
taxonomy-mapped 504 that frees its slot; concurrent duplicate ``/run``\\ s
coalesce onto one computation (:class:`~repro.serve.admission
.SingleFlight`); and a rolling-window circuit breaker flips ``/readyz``
when the worker pool keeps dying.  ``close()`` drains in-flight requests
gracefully before tearing the pool down.

Threading model: the HTTP layer is a thread per connection, but
simulation work is serialized behind one lock — the pool (or the
in-process serial executor) is a single shared resource, and the
per-seed obs payloads are computed from snapshots of the process-global
registry, which concurrent in-process runs would interleave.  Cache
hits, ``/healthz``, ``/readyz`` and ``/metrics`` bypass the lock
entirely, so the daemon stays responsive while a cold request computes.
"""

from __future__ import annotations

import json
import logging
import math
import threading
import time
from dataclasses import replace
from functools import partial
from http.client import HTTPConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence, Tuple

from .. import __version__
from .. import obs as _obs
from ..experiments.runner import Scenario, run_scenario, executor
from ..geometry import kernels
from ..obs.aggregate import Aggregator, namespace_delta
from ..obs.histogram import Histogram
from ..obs.log import LogJsonlSink, get_logger
from ..obs.log import hub as log_hub
from ..obs.metrics import Metrics
from ..obs.spans import SpanJsonlSink
from ..resilience import (
    ChaosPolicy,
    ReproError,
    RequestDeadlineError,
    RunPolicy,
    SeedTimeoutError,
    ServerDrainingError,
    ServerOverloadedError,
    WorkerCrashError,
)
from . import protocol
from .admission import (
    AdmissionController,
    CircuitBreaker,
    Deadline,
    SingleFlight,
)
from .prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from .prometheus import exposition, wants_prometheus
from .protocol import SERVE_SCHEMA
from .store import ResultStore, result_key
from .tracing import (
    REQUEST_ID_HEADER,
    LockedSpanWriter,
    RequestTrace,
    clean_request_id,
)

__all__ = ["ReproServer", "run_selftest"]

logger = logging.getLogger("repro.serve")

#: Seeds resolved (cache + compute) per flushed block of a sweep
#: stream — small enough for live progress, large enough to amortize
#: pool dispatch.  Also the deadline-check granularity of a sweep.
SWEEP_BLOCK = 16


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    #: socketserver's default listen backlog is 5 — under a connection
    #: burst the excess lands in SYN retransmit (~1s stalls) before the
    #: admission controller ever sees it.  Load shedding must happen
    #: in-protocol (a fast structured 429), so accept generously and
    #: let admission do the rejecting.
    request_queue_size = 128


class ReproServer:
    """One daemon instance: HTTP server + warm pool + result store.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`
    after construction) — what the selftest and the test suite use so
    parallel CI runs never collide.

    ``max_inflight`` bounds concurrently admitted work in weighted
    units (``/run`` = 1, ``/sweep`` = ``sweep_weight``); ``None``
    admits everything (in-flight work is still counted for drain and
    ``/metrics``).  ``request_deadline`` is the default wall-clock
    budget per request (overridable per request via ``"deadline_s"``).
    ``chaos`` defaults to ``REPRO_CHAOS`` from the environment; only
    its serve-scoped faults act here (worker-side faults reach the
    pool through the normal sweep machinery).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: Optional[int] = None,
        store_root: Optional[str] = None,
        cache_enabled: bool = True,
        memory_entries: int = 4096,
        policy: Optional[RunPolicy] = None,
        max_inflight: Optional[int] = None,
        sweep_weight: int = 4,
        request_deadline: Optional[float] = None,
        drain_timeout: float = 10.0,
        breaker_threshold: int = 5,
        breaker_window: float = 30.0,
        breaker_cooldown: float = 10.0,
        chaos: Optional[ChaosPolicy] = None,
        access_log: Optional[str] = None,
        trace_jsonl: Optional[str] = None,
    ) -> None:
        self.policy = policy or RunPolicy()
        if chaos is None:
            chaos = ChaosPolicy.from_env()
        self.chaos = chaos if chaos is not None and chaos.serve_enabled else None
        self.store = ResultStore(
            store_root, memory_entries=memory_entries, chaos=self.chaos
        )
        self.cache_enabled = cache_enabled
        self.request_deadline = request_deadline
        self.drain_timeout = drain_timeout
        self.admission = AdmissionController(
            max_inflight, sweep_weight=sweep_weight
        )
        self.flights = SingleFlight()
        self.breaker = CircuitBreaker(
            threshold=breaker_threshold,
            window_s=breaker_window,
            cooldown_s=breaker_cooldown,
        )
        self.aggregator = Aggregator()
        #: Request-level registry (latency histograms, request/cache
        #: counters), separate from the process-global simulation
        #: registry so request accounting never leaks into per-seed
        #: obs payloads.
        self.request_metrics = Metrics()
        self._work_lock = threading.Lock()
        self._draining = False
        self._chaos_lock = threading.Lock()
        self._chaos_seq: Dict[str, int] = {}
        self._pool = None
        self._pool_cm = None
        if workers and workers > 1:
            # The warm pool: built once, shared by every request,
            # rebuilt transparently by the resilience layer on breakage.
            self._pool_cm = executor(workers, policy=self.policy)
            self._pool = self._pool_cm.__enter__()
        # Per-seed obs payloads (what /metrics aggregates) only exist
        # while the obs layer is on; the daemon is its natural owner.
        _obs.enable()
        #: Structured access logger; every request emits one
        #: ``http.access`` record through it (and any registered log
        #: sinks), carrying the request id end to end.
        self.access_logger = get_logger("repro.serve.access")
        # An access log is complete by contract — one record per
        # request, never rate-limited (the hub's limiter is for hot
        # failure paths; ``http.line``/``http.error`` stay capped).
        log_hub.rate_exempt.add("http.access")
        self._access_sink: Optional[LogJsonlSink] = None
        if access_log:
            self._access_sink = LogJsonlSink(
                access_log,
                meta={"source": "repro-serve", "version": __version__},
            )
            log_hub.add_sink(self._access_sink)
        #: Per-request span trees stream here (one repro-spans-v1 file
        #: shared by all handler threads); ``None`` disables request
        #: tracing entirely — no span objects are built.
        self._trace_writer: Optional[LockedSpanWriter] = None
        if trace_jsonl:
            self._trace_writer = LockedSpanWriter(
                SpanJsonlSink(
                    trace_jsonl,
                    meta={"source": "repro-serve", "version": __version__},
                )
            )
        self.started = time.monotonic()
        self._serving = threading.Event()
        self.httpd = _Server((host, port), _Handler)
        self.httpd.app = self

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def ready(self) -> bool:
        """Should a load balancer send this daemon traffic *now*?

        Liveness and readiness are different questions: a draining
        daemon and one whose worker pool keeps crashing are both alive
        (they answer ``/healthz``, they finish what they accepted) but
        neither should receive new work.
        """
        return not self._draining and self.breaker.state != CircuitBreaker.OPEN

    def serve_forever(self) -> None:
        self._serving.set()
        try:
            self.httpd.serve_forever()
        finally:
            self._serving.clear()

    def close(self, drain_s: Optional[float] = None) -> None:
        """Graceful shutdown: stop admitting, drain in-flight requests
        (up to ``drain_s`` seconds, default ``drain_timeout``), then
        close the socket and tear the pool down.  Idempotent (SIGTERM
        handler and ``finally`` both call it).
        """
        if drain_s is None:
            drain_s = self.drain_timeout
        # Flip readiness first: every new POST from here on is a 503,
        # and /readyz tells the balancer to look elsewhere.
        self._draining = True
        if self._serving.is_set():
            # shutdown() blocks on the serve loop exiting; calling it
            # when serve_forever never ran would wait forever.  Handler
            # threads for already-accepted connections keep running.
            self.httpd.shutdown()
        if not self.admission.drain(drain_s):
            logger.warning(
                "drain deadline of %.1fs expired with %d unit(s) still "
                "in flight; closing anyway",
                drain_s,
                self.admission.inflight,
            )
        self.httpd.server_close()
        if self._pool_cm is not None:
            self._pool_cm.__exit__(None, None, None)
            self._pool_cm = self._pool = None
        if self._trace_writer is not None:
            # Promotes <path>.partial to its final name: the spans file
            # becomes whole exactly when the daemon finishes draining.
            self._trace_writer.close()
            self._trace_writer = None
        if self._access_sink is not None:
            log_hub.remove_sink(self._access_sink)
            self._access_sink.close()
            self._access_sink = None

    # -- request tracing ---------------------------------------------------

    def start_trace(
        self, request_id: str, route: str, method: str
    ) -> Optional[RequestTrace]:
        """Open a per-request span tree, or ``None`` when tracing is
        off (no ``--trace-jsonl`` sink, or ``REPRO_SPANS`` vetoed).

        The ``None`` path is the zero-overhead guard: every tracing
        call site on the request path checks it with one comparison and
        builds nothing.
        """
        if self._trace_writer is None or not _obs.tracer.active:
            return None
        return RequestTrace(request_id, route, method, self._trace_writer)

    # -- admission / chaos -------------------------------------------------

    def admit(self, endpoint: str, weight: int) -> None:
        """Admission gate of every POST: draining beats overloaded."""
        if self._draining:
            raise ServerDrainingError(
                f"{endpoint}: daemon is draining for shutdown; "
                "no new work is admitted"
            )
        self.admission.acquire(weight, endpoint=endpoint)

    def chaos_slow(self, endpoint: str) -> None:
        """Deterministic slow-handler fault (serve-scoped chaos)."""
        if self.chaos is None or self.chaos.serve_slow <= 0.0:
            return
        with self._chaos_lock:
            attempt = self._chaos_seq.get(endpoint, 0)
            self._chaos_seq[endpoint] = attempt + 1
        if self.chaos.decide_serve("serve_slow", f"serve.{endpoint}", attempt):
            time.sleep(self.chaos.serve_slow_s)

    def deadline_for(self, requested: Optional[float]) -> Deadline:
        """The request's deadline: its own override, else the server's."""
        return Deadline(
            requested if requested is not None else self.request_deadline
        )

    # -- execution ---------------------------------------------------------

    def resolve_one(
        self,
        scenario: Scenario,
        seed: int,
        *,
        use_cache: bool,
        deadline: Deadline,
        prefix: str = "serve.run",
        trace: Optional[RequestTrace] = None,
    ) -> Tuple[str, str]:
        """The ``POST /run`` path: cache, then single-flight, then
        compute.

        Concurrent duplicates for the same content address coalesce
        onto one computation: the first becomes the leader, the rest
        wait for its bytes (state ``"coalesced"``) — determinism makes
        the leader's body *the* body, so followers lose nothing but the
        redundant work.
        """
        backend = kernels.get_backend()
        key = result_key(
            scenario.to_dict(),
            seed,
            backend=backend,
            engine=scenario.engine,
            code_version=__version__,
        )
        if not use_cache:
            body = self._compute_one(
                scenario, seed, key, deadline, prefix, trace=trace
            )
            return body, "bypass"
        lookup = None if trace is None else trace.begin("cache_lookup")
        body = self.store.get(key)
        if lookup is not None:
            trace.end(lookup, hit=body is not None)
        if body is not None:
            return body, "hit"
        flight_span = None if trace is None else trace.begin("singleflight")
        leader, flight = self.flights.lead_or_follow(key)
        if not leader:
            try:
                body = SingleFlight.wait(flight, deadline)
            finally:
                if flight_span is not None:
                    trace.end(flight_span, role="follower")
            return body, "coalesced"
        try:
            # Re-check under leadership: another leader (or daemon
            # sharing the disk layer) may have landed the entry between
            # our miss and winning the flight.
            body = self.store.get(key, count=False)
            state = "hit"
            if body is None:
                body = self._compute_one(
                    scenario, seed, key, deadline, prefix, trace=trace
                )
                self.store.put(key, body)
                state = "miss"
        except BaseException as exc:
            # Followers inherit the leader's failure — recomputing the
            # same pure function would fail the same way, and N copies
            # of one error must not become N computations.
            self.flights.finish(key, flight, error=exc)
            if flight_span is not None:
                trace.end(flight_span, role="leader", error=True)
            raise
        self.flights.finish(key, flight, body=body)
        if flight_span is not None:
            trace.end(flight_span, role="leader")
        return body, state

    def resolve(
        self,
        scenario: Scenario,
        seeds: Sequence[int],
        *,
        use_cache: bool,
        prefix: str,
        deadline: Optional[Deadline] = None,
        trace: Optional[RequestTrace] = None,
    ) -> List[Tuple[str, str]]:
        """``(body, cache_state)`` per seed, in seed order.

        The block execution path of ``/sweep``: look every seed up in
        the store, compute the misses in one (pooled) map, fill the
        store, and return deterministic bodies.  ``cache_state`` is
        ``"hit"`` / ``"miss"`` / ``"bypass"`` per seed.
        """
        if deadline is not None:
            deadline.check("before resolving a seed block")
        backend = kernels.get_backend()
        keys = [
            result_key(
                scenario.to_dict(),
                seed,
                backend=backend,
                engine=scenario.engine,
                code_version=__version__,
            )
            for seed in seeds
        ]
        resolved: dict = {}
        todo: List[int] = []
        todo_keys: List[str] = []
        lookup = None
        if trace is not None and use_cache:
            lookup = trace.begin("cache_lookup", {"seeds": len(seeds)})
        for seed, key in zip(seeds, keys):
            body = self.store.get(key) if use_cache else None
            if body is not None:
                resolved[seed] = (body, "hit")
            else:
                todo.append(seed)
                todo_keys.append(key)
        if lookup is not None:
            trace.end(lookup, hits=len(seeds) - len(todo))
        if todo:
            results = self._execute(
                scenario, todo, prefix=prefix, deadline=deadline, trace=trace
            )
            state = "miss" if use_cache else "bypass"
            for seed, key, result in zip(todo, todo_keys, results):
                body = protocol.run_body(
                    key,
                    scenario,
                    seed,
                    result,
                    backend=backend,
                    code_version=__version__,
                )
                if use_cache:
                    self.store.put(key, body)
                resolved[seed] = (body, state)
        return [resolved[seed] for seed in seeds]

    def _compute_one(
        self,
        scenario: Scenario,
        seed: int,
        key: str,
        deadline: Deadline,
        prefix: str,
        trace: Optional[RequestTrace] = None,
    ) -> str:
        [result] = self._execute(
            scenario, [seed], prefix=prefix, deadline=deadline, trace=trace
        )
        return protocol.run_body(
            key,
            scenario,
            seed,
            result,
            backend=kernels.get_backend(),
            code_version=__version__,
        )

    def _deadline_policy(self, deadline: Optional[Deadline]) -> RunPolicy:
        """The run policy for one dispatch, deadline threaded in.

        When the request deadline is the binding constraint (tighter
        than the per-attempt ``--timeout``), the pooled attempt timeout
        is clamped to the remaining budget *and retries are disabled* —
        an attempt that consumed the whole request budget leaves
        nothing for a retry to run in, so retrying would only hold the
        admission slot past its deadline.
        """
        if deadline is None:
            return self.policy
        remaining = deadline.remaining()
        if remaining is None:
            return self.policy
        remaining = max(remaining, 0.001)
        if self.policy.timeout is None or remaining < self.policy.timeout:
            return replace(self.policy, timeout=remaining, retries=0)
        return self.policy

    def _execute(
        self,
        scenario: Scenario,
        seeds: Sequence[int],
        *,
        prefix: str,
        deadline: Optional[Deadline] = None,
        trace: Optional[RequestTrace] = None,
    ) -> List:
        """Run the missing seeds through the warm pool (or serially,
        still under the retry machinery) and fold their obs payloads
        into the aggregator under the endpoint's namespace.

        The deadline covers the queue too: waiting for the (single)
        simulation slot draws from the same budget as computing, so a
        request stuck behind a slow one 504s instead of queueing
        unboundedly.  Worker-crash outcomes feed the circuit breaker.

        With tracing on, the whole dispatch (slot wait + pool run) is
        one ``worker_run`` span, and each result's span tail — the
        worker-side run/round/phase/kernel hierarchy shipped home in
        the obs payload — is grafted under it, stamped with the request
        id, so the server and worker timelines join in one trace.
        """
        from ..experiments.runner import parallel_map

        label = scenario.label()
        worker_span = None
        if trace is not None:
            worker_span = trace.begin(
                "worker_run", {"seeds": len(seeds), "scenario": label}
            )
        try:
            remaining = None if deadline is None else deadline.remaining()
            acquired = self._work_lock.acquire(
                timeout=-1 if remaining is None else remaining
            )
            if not acquired:
                raise RequestDeadlineError(
                    f"request deadline of {deadline.seconds}s exceeded while "
                    "queued for the simulation slot"
                )
            try:
                if deadline is not None:
                    deadline.check("while queued for the simulation slot")
                try:
                    results = parallel_map(
                        partial(run_scenario, scenario),
                        list(seeds),
                        pool=self._pool,
                        policy=self._deadline_policy(deadline),
                        keys=[f"{label}#seed{seed}" for seed in seeds],
                    )
                except WorkerCrashError:
                    self.breaker.record_failure()
                    raise
                except SeedTimeoutError:
                    if deadline is not None and deadline.expired:
                        raise RequestDeadlineError(
                            f"request deadline of {deadline.seconds}s "
                            "exceeded while computing"
                        ) from None
                    raise
                self.breaker.record_success()
                for seed, result in zip(seeds, results):
                    self._account(seed, result, prefix)
            finally:
                self._work_lock.release()
        except BaseException:
            if worker_span is not None:
                trace.end(worker_span, error=True)
            raise
        if worker_span is not None:
            trace.end(worker_span)
            for result in results:
                trace.attach_worker_spans(
                    getattr(result, "obs", None), worker_span
                )
        return results

    def _account(self, seed: int, result, prefix: str) -> None:
        agg = self.aggregator
        agg.total_seeds += 1
        agg.done += 1
        agg.rounds += result.rounds
        agg.verdicts[result.verdict] = agg.verdicts.get(result.verdict, 0) + 1
        payload = getattr(result, "obs", None)
        if payload is not None:
            agg.workers.add(payload.get("pid"))
            agg.span_count += len(payload.get("spans", ()))
            agg.add_metrics(
                namespace_delta(payload.get("metrics", {}), prefix)
            )

    # -- request accounting ------------------------------------------------

    def observe_request(
        self, endpoint: str, elapsed: float, cache_state: Optional[str]
    ) -> None:
        self.request_metrics.inc(f"serve.{endpoint}.requests")
        self.request_metrics.observe_hist(
            f"serve.{endpoint}.latency_seconds", elapsed
        )
        if cache_state is not None:
            self.request_metrics.inc(f"serve.cache.{cache_state}")

    def observe_error(self, endpoint: str, exc: BaseException) -> int:
        """Count one failed request; returns the HTTP status to send."""
        status = getattr(exc, "http_status", 500)
        self.request_metrics.inc(f"serve.{endpoint}.errors")
        self.request_metrics.inc(f"serve.errors.status.{status}")
        if isinstance(exc, ServerOverloadedError):
            self.request_metrics.inc("serve.rejected")
            self.request_metrics.inc(f"serve.{endpoint}.rejected")
        elif isinstance(exc, RequestDeadlineError):
            self.request_metrics.inc("serve.deadline_exceeded")
            self.request_metrics.inc(f"serve.{endpoint}.deadline_exceeded")
        return status

    def metrics_document(self) -> dict:
        """The ``GET /metrics`` body: request layer + cache +
        robustness + sweep aggregate (``repro-sweep-metrics-v1``), in
        one document."""
        snapshot = self.request_metrics.snapshot()
        counters = snapshot.get("counters", {})
        hists = {}
        for name, data in snapshot.get("hists", {}).items():
            hist = Histogram.from_dict(data)
            data = dict(data)
            data["mean"] = hist.mean
            data["p50"] = hist.quantile(0.5)
            data["p99"] = hist.quantile(0.99)
            hists[name] = data
        store_counters = self.store.counters()
        return {
            "schema": "repro-serve-metrics-v1",
            "version": __version__,
            "uptime_s": time.monotonic() - self.started,
            "backend": kernels.get_backend(),
            "requests": dict(sorted(counters.items())),
            "request_latency": hists,
            "cache": store_counters,
            "robustness": {
                "ready": self.ready,
                "draining": self._draining,
                "breaker_state": self.breaker.state,
                "breaker": self.breaker.snapshot(),
                "inflight": self.admission.inflight,
                "max_inflight": self.admission.max_inflight,
                "sweep_weight": self.admission.sweep_weight,
                "rejected": counters.get("serve.rejected", 0),
                "deadline_exceeded": counters.get(
                    "serve.deadline_exceeded", 0
                ),
                "coalesced": self.flights.coalesced,
                "quarantined": store_counters["quarantined"],
            },
            "sweep": self.aggregator.to_dict(),
        }

    def healthz_document(self) -> dict:
        return {
            "schema": SERVE_SCHEMA,
            "status": "ok",
            "ready": self.ready,
            "draining": self._draining,
            "breaker": self.breaker.state,
            "version": __version__,
            "backend": kernels.get_backend(),
            "uptime_s": time.monotonic() - self.started,
        }


class _Handler(BaseHTTPRequestHandler):
    """Per-connection handler; all state lives on ``self.server.app``.

    Every request carries an id (``X-Repro-Request-Id``: propagated
    when the client supplies one, generated otherwise), echoed in the
    response headers and stamped into one structured ``http.access``
    record per request — request id, route, status, cache state,
    admission outcome, and duration.  ``BaseHTTPRequestHandler``'s own
    log lines are not dropped: malformed requests that never reach a
    ``do_*`` method surface as structured ``http.error`` /
    ``http.access`` records through the same logger.
    """

    server_version = f"repro-serve/{__version__}"
    # HTTP/1.1 for chunked sweep streams and keep-alive clients.
    protocol_version = "HTTP/1.1"

    # Per-request bookkeeping; class-level defaults cover the stdlib
    # code paths (malformed request lines) that fire before any do_*
    # method initializes them.
    _in_request = False
    _rid: Optional[str] = None
    _route: Optional[str] = None
    _status: Optional[int] = None
    _cache_state: Optional[str] = None
    _admission: Optional[str] = None
    _trace: Optional[RequestTrace] = None
    _t0: float = 0.0

    # -- structured access log ---------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # The stdlib catch-all; anything not covered by log_request /
        # log_error below still lands in the structured stream.
        self.server.app.access_logger.debug(
            "http.line",
            format % args,
            remote=self.address_string(),
        )

    def log_error(self, format: str, *args) -> None:  # noqa: A002
        # send_error()'s explanation line — including requests so
        # malformed they never reach a handler (bad request line,
        # unsupported HTTP version).
        self.server.app.access_logger.warning(
            "http.error",
            format % args,
            remote=self.address_string(),
        )

    def log_request(self, code="-", size="-") -> None:
        # Inside a handled request the rich access record from
        # _finish_access supersedes this line; outside one (send_error
        # before dispatch) it is the only trace the request leaves.
        if self._in_request:
            return
        self.server.app.access_logger.info(
            "http.access",
            f"{getattr(self, 'requestline', '-')} -> {code}",
            status=int(code) if str(code).isdigit() else None,
            request=getattr(self, "requestline", None),
            remote=self.address_string(),
        )

    def _begin_access(self, route: str) -> None:
        self._in_request = True
        self._t0 = time.perf_counter()
        self._rid = clean_request_id(self.headers.get(REQUEST_ID_HEADER))
        self._route = route
        self._status = None
        self._cache_state = None
        self._admission = None
        self._trace = None

    def _finish_access(self) -> None:
        app = self.server.app
        elapsed = time.perf_counter() - self._t0
        if self._trace is not None:
            self._trace.finish(self._status or 0, self._cache_state)
            self._trace = None
        app.access_logger.info(
            "http.access",
            f"{self.command} {self.path} -> {self._status}",
            request_id=self._rid,
            method=self.command,
            route=self._route,
            path=self.path,
            status=self._status,
            cache=self._cache_state,
            admission=self._admission,
            duration_s=round(elapsed, 6),
            remote=self.address_string(),
        )
        self._in_request = False

    def send_response(self, code, message=None) -> None:
        self._status = code
        super().send_response(code, message)

    # -- plumbing ----------------------------------------------------------

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length > protocol.MAX_BODY_BYTES:
            # Refuse before reading: don't buffer an oversized body
            # just to reject it.
            from ..resilience import TraceFormatError

            raise TraceFormatError(
                f"request body of {length} bytes exceeds the "
                f"{protocol.MAX_BODY_BYTES}-byte limit",
                path="<request>",
            )
        return self.rfile.read(length) if length else b""

    def _send_json(
        self,
        status: int,
        body: str,
        *,
        cache_state: Optional[str] = None,
        extra_headers: Optional[Dict[str, str]] = None,
        content_type: str = "application/json",
    ) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.send_header("X-Repro-Schema", SERVE_SCHEMA)
        if self._rid is not None:
            self.send_header(REQUEST_ID_HEADER, self._rid)
        if cache_state is not None:
            self._cache_state = cache_state
            self.send_header("X-Repro-Cache", cache_state)
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _send_error_json(self, endpoint: str, exc: BaseException) -> None:
        status = self.server.app.observe_error(endpoint, exc)
        extra = None
        retry_after = getattr(exc, "retry_after_s", None)
        if retry_after is not None:
            # The standard shed-and-back-off contract: an integer
            # Retry-After plus the structured 429 body.
            extra = {"Retry-After": str(max(1, math.ceil(retry_after)))}
        self._send_json(
            status,
            protocol.error_body(exc, status=status),
            extra_headers=extra,
        )

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")

    def _end_chunks(self) -> None:
        self.wfile.write(b"0\r\n\r\n")

    # -- endpoints ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._begin_access(self.path.lstrip("/") or "/")
        try:
            self._do_get()
        finally:
            self._finish_access()

    def _do_get(self) -> None:
        app = self.server.app
        started = self._t0
        if self.path == "/healthz":
            body = json.dumps(app.healthz_document(), sort_keys=True) + "\n"
            self._send_json(200, body)
            app.observe_request("healthz", time.perf_counter() - started, None)
            return
        if self.path == "/readyz":
            # Readiness as a status code, for load balancers that only
            # look there; the JSON carries the reason for humans.
            ready = app.ready
            body = json.dumps(
                {
                    "schema": SERVE_SCHEMA,
                    "ready": ready,
                    "draining": app.draining,
                    "breaker": app.breaker.state,
                },
                sort_keys=True,
            ) + "\n"
            self._send_json(200 if ready else 503, body)
            app.observe_request("readyz", time.perf_counter() - started, None)
            return
        if self.path == "/metrics":
            # Content negotiation: the JSON document is the default;
            # an Accept asking for text/plain (or openmetrics) gets the
            # Prometheus exposition rendered *from* that same document.
            document = app.metrics_document()
            if wants_prometheus(self.headers.get("Accept", "")):
                self._send_json(
                    200,
                    exposition(document),
                    content_type=PROMETHEUS_CONTENT_TYPE,
                )
            else:
                body = json.dumps(document, sort_keys=True) + "\n"
                self._send_json(200, body)
            app.observe_request("metrics", time.perf_counter() - started, None)
            return
        self._send_json(
            404,
            protocol.error_body(
                ReproError(f"no such endpoint: GET {self.path}"), status=404
            ),
        )

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        app = self.server.app
        if self.path == "/run":
            endpoint = "run"
        elif self.path == "/sweep":
            endpoint = "sweep"
        else:
            self._begin_access(self.path.lstrip("/") or "/")
            try:
                self._send_json(
                    404,
                    protocol.error_body(
                        ReproError(f"no such endpoint: POST {self.path}"),
                        status=404,
                    ),
                )
            finally:
                self._finish_access()
            return
        self._begin_access(endpoint)
        try:
            self._do_post(endpoint)
        finally:
            self._finish_access()

    def _do_post(self, endpoint: str) -> None:
        app = self.server.app
        self._trace = app.start_trace(self._rid, endpoint, "POST")
        # Admission before parsing: shedding must stay cheap, and a
        # draining daemon must not start new work of any size.
        weight = app.admission.weight_for(endpoint)
        wait_span = None
        if self._trace is not None:
            wait_span = self._trace.begin(
                "admission_wait", {"weight": weight}
            )
        try:
            app.admit(endpoint, weight)
        except ReproError as exc:
            self._admission = (
                "draining" if isinstance(exc, ServerDrainingError) else "shed"
            )
            if wait_span is not None:
                self._trace.end(wait_span, outcome=self._admission)
            self._send_error_json(endpoint, exc)
            return
        self._admission = "admitted"
        if wait_span is not None:
            self._trace.end(wait_span, outcome="admitted")
        # The slot is released *before* the terminal bytes go out (the
        # work they describe is already done): a sequential client whose
        # next request races the handler's epilogue must never be shed
        # by its own previous request.  Idempotent; the finally is the
        # backstop for handler crashes.
        released = [False]

        def release() -> None:
            if not released[0]:
                released[0] = True
                app.admission.release(weight)

        try:
            if endpoint == "run":
                self._handle_run(self._t0, release)
            else:
                self._handle_sweep(self._t0, release)
        finally:
            release()

    def _handle_run(self, started: float, release) -> None:
        app = self.server.app
        try:
            request = protocol.parse_run_request(
                protocol.parse_json_body(
                    self._read_body(), where="POST /run"
                )
            )
            use_cache = app.cache_enabled and request.use_cache
            deadline = app.deadline_for(request.deadline_s)
            # The chaos slow-handler fault sleeps *inside* the deadline
            # window — a slow handler is precisely what deadlines must
            # bound, so the fault draws from the request's budget.
            app.chaos_slow("run")
            deadline.check("in the request handler")
            body, cache_state = app.resolve_one(
                request.scenario,
                request.seed,
                use_cache=use_cache,
                deadline=deadline,
                trace=self._trace,
            )
        except ReproError as exc:
            release()
            self._send_error_json("run", exc)
            return
        except Exception as exc:
            # The HTTP boundary: anything unanticipated becomes a
            # structured 500, never a dead connection + traceback.
            logger.exception("POST /run failed")
            release()
            self._send_error_json(
                "run",
                ReproError(
                    f"internal error: {type(exc).__name__}: {exc}"
                ),
            )
            return
        # Account *before* the last byte goes out: a client may
        # read the response and immediately scrape /metrics, and
        # its own request must already be there.
        app.observe_request(
            "run", time.perf_counter() - started, cache_state
        )
        release()
        self._send_json(200, body, cache_state=cache_state)

    def _handle_sweep(self, started: float, release) -> None:
        app = self.server.app
        try:
            request = protocol.parse_sweep_request(
                protocol.parse_json_body(
                    self._read_body(), where="POST /sweep"
                )
            )
        except ReproError as exc:
            release()
            self._send_error_json("sweep", exc)
            return
        use_cache = app.cache_enabled and request.use_cache
        deadline = app.deadline_for(request.deadline_s)
        app.chaos_slow("sweep")
        try:
            # Expired before streaming began: a clean structured 504 is
            # still possible (after the first chunk it no longer is).
            deadline.check("in the request handler")
        except ReproError as exc:
            release()
            self._send_error_json("sweep", exc)
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("X-Repro-Schema", SERVE_SCHEMA)
        if self._rid is not None:
            self.send_header(REQUEST_ID_HEADER, self._rid)
        self.end_headers()
        verdicts: dict = {}
        hits = misses = 0
        try:
            # Stream block by block, in seed order: progress is live,
            # but the byte stream is a pure function of the request.
            # The deadline is checked per block — an expired budget
            # turns into the stream's (structured) last line.
            for i in range(0, len(request.seeds), SWEEP_BLOCK):
                block = request.seeds[i : i + SWEEP_BLOCK]
                for body, cache_state in app.resolve(
                    request.scenario,
                    block,
                    use_cache=use_cache,
                    prefix="serve.sweep",
                    deadline=deadline,
                    trace=self._trace,
                ):
                    verdict = json.loads(body)["result"]["verdict"]
                    verdicts[verdict] = verdicts.get(verdict, 0) + 1
                    hits += cache_state == "hit"
                    misses += cache_state != "hit"
                    self._write_chunk(body.encode("utf-8"))
        except ReproError as exc:
            # Headers are gone; the error becomes the stream's last
            # line, and the chunked coding still terminates cleanly.
            app.observe_error("sweep", exc)
            release()
            self._write_chunk(protocol.error_body(exc).encode("utf-8"))
            self._end_chunks()
            return
        except Exception as exc:
            logger.exception("POST /sweep failed mid-stream")
            app.observe_error("sweep", exc)
            release()
            self._write_chunk(
                protocol.error_body(
                    ReproError(
                        f"internal error: {type(exc).__name__}: {exc}"
                    )
                ).encode("utf-8")
            )
            self._end_chunks()
            return
        cache_state = None
        if use_cache:
            cache_state = "hit" if misses == 0 else "miss"
        self._cache_state = cache_state
        # Account before the terminating chunk: once the client's read
        # completes, this request is visible in /metrics.
        app.observe_request(
            "sweep", time.perf_counter() - started, cache_state
        )
        release()
        self._write_chunk(
            protocol.sweep_summary_line(
                request.scenario, request.seeds, verdicts
            ).encode("utf-8")
        )
        self._end_chunks()


# -- selftest -----------------------------------------------------------------


def _request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[dict] = None,
    *,
    timeout: float = 120.0,
    headers: Optional[Dict[str, str]] = None,
) -> Tuple[int, dict, bytes]:
    """One HTTP round trip -> (status, headers dict, body bytes)."""
    conn = HTTPConnection(host, port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload).encode()
        send_headers = dict(headers or {})
        if body is not None:
            send_headers.setdefault("Content-Type", "application/json")
        conn.request(method, path, body=body, headers=send_headers)
        response = conn.getresponse()
        data = response.read()
        return response.status, dict(response.getheaders()), data
    finally:
        conn.close()


def run_selftest(
    workers: Optional[int] = None,
    store_root: Optional[str] = None,
    *,
    echo=print,
    request_timeout: float = 120.0,
) -> int:
    """End-to-end daemon exercise on an ephemeral port, no state leaks.

    Asserts the PR's acceptance properties directly: a repeated
    ``POST /run`` is a cache hit with a byte-identical body, the sweep
    stream repeats byte-identically, the cold/warm latency ratio
    clears 10x, errors map onto taxonomy HTTP statuses (including the
    429 shed path and the deadline 504), readiness splits from
    liveness, and ``/metrics`` records the hits.  ``request_timeout``
    bounds every client round trip so a wedged daemon fails the
    selftest instead of hanging it.  Returns a process exit code.
    """
    # Heavy enough that the cold run dwarfs HTTP round-trip overhead
    # (the warm path's floor), so the >= 10x ratio check has margin.
    scenario = {
        "workload": "random",
        "n": 10,
        "f": 2,
        "crashes": "random",
        "max_rounds": 5_000,
    }
    server = ReproServer(
        workers=workers,
        store_root=store_root,
        policy=RunPolicy(retries=1),
        max_inflight=4,
        sweep_weight=8,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.host, server.port
    failures: List[str] = []

    def check(condition: bool, label: str) -> None:
        echo(f"  {'ok' if condition else 'FAIL'}: {label}")
        if not condition:
            failures.append(label)

    def request(method, path, payload=None, headers=None):
        return _request(
            host,
            port,
            method,
            path,
            payload,
            timeout=request_timeout,
            headers=headers,
        )

    try:
        echo(f"selftest daemon on http://{host}:{port}")

        status, _, body = request("GET", "/healthz")
        document = json.loads(body)
        check(
            status == 200 and document["status"] == "ok",
            "GET /healthz",
        )
        check(document.get("ready") is True, "healthz reports ready")
        status, _, _ = request("GET", "/readyz")
        check(status == 200, "GET /readyz is 200 while serving")

        t0 = time.perf_counter()
        status, headers, cold = request(
            "POST", "/run", {"scenario": scenario, "seed": 1}
        )
        cold_s = time.perf_counter() - t0
        check(status == 200, "POST /run (cold)")
        check(headers.get("X-Repro-Cache") == "miss", "cold run is a miss")

        check(
            bool(headers.get("X-Repro-Request-Id")),
            "server generates a request id when the client sends none",
        )

        t0 = time.perf_counter()
        status, headers, warm = request(
            "POST",
            "/run",
            {"scenario": scenario, "seed": 1},
            headers={"X-Repro-Request-Id": "selftest-warm-run-1"},
        )
        warm_s = time.perf_counter() - t0
        check(status == 200, "POST /run (warm)")
        check(headers.get("X-Repro-Cache") == "hit", "warm run is a hit")
        check(
            headers.get("X-Repro-Request-Id") == "selftest-warm-run-1",
            "client-supplied request id is echoed verbatim",
        )
        check(warm == cold, "warm body is byte-identical to cold")
        ratio = cold_s / warm_s if warm_s > 0 else float("inf")
        echo(
            f"  latency: cold {cold_s * 1e3:.1f}ms, warm "
            f"{warm_s * 1e3:.1f}ms -> {ratio:.0f}x"
        )
        check(ratio >= 10.0, "cold/warm latency ratio >= 10x")

        status, headers, _ = request(
            "POST",
            "/run",
            {"scenario": scenario, "seed": 1, "cache": False},
        )
        check(
            status == 200 and headers.get("X-Repro-Cache") == "bypass",
            "cache:false bypasses the store",
        )

        sweep = {"scenario": scenario, "seed_start": 0, "seed_count": 4}
        status, _, first = request("POST", "/sweep", sweep)
        check(
            status == 200 and first.count(b"\n") == 5,
            "POST /sweep streams 4 seeds + summary",
        )
        status, _, second = request("POST", "/sweep", sweep)
        check(second == first, "repeated sweep is byte-identical")

        status, _, body = request(
            "POST", "/run", {"scenario": {"workload": "nope"}}
        )
        check(
            status == 400 and json.loads(body)["kind"] == "error",
            "malformed scenario -> structured 400",
        )

        # A microscopic deadline on a cold seed: the budget is spent
        # before dispatch, so the taxonomy's 504 comes back (and the
        # admission slot was freed — the next request succeeds).
        status, _, body = request(
            "POST",
            "/run",
            {"scenario": scenario, "seed": 91, "deadline_s": 1e-6},
        )
        check(
            status == 504
            and json.loads(body)["error"] == "RequestDeadlineError",
            "expired deadline -> structured 504",
        )

        # Load shedding: a heavy cold sweep (weight 8 > budget 4 —
        # admitted because the daemon is idle) holds the whole budget;
        # a /run racing it must see a structured 429 + Retry-After.
        # Synchronize on the in-flight gauge (GET /metrics bypasses
        # admission): first wait for the previous request's slot to be
        # released so the sweep itself is not the one shed, then wait
        # for the sweep to be admitted before probing.
        def inflight() -> int:
            _, _, body = request("GET", "/metrics")
            return json.loads(body)["robustness"]["inflight"]

        for _ in range(200):
            if inflight() == 0:
                break
            time.sleep(0.005)
        blocker = {
            "scenario": scenario,
            "seed_start": 100,
            "seed_count": 8,
        }
        blocker_result: dict = {}

        def run_blocker():
            blocker_result["response"] = request("POST", "/sweep", blocker)

        blocker_thread = threading.Thread(target=run_blocker)
        blocker_thread.start()
        shed = None
        try:
            for _ in range(200):
                if not blocker_thread.is_alive():
                    break
                if inflight() < 8:
                    time.sleep(0.002)
                    continue
                status, headers, body = request(
                    "POST", "/run", {"scenario": scenario, "seed": 1}
                )
                if status == 429:
                    shed = (status, headers, body)
                    break
        finally:
            blocker_thread.join(timeout=request_timeout)
        check(shed is not None, "overload -> 429 while a sweep holds the budget")
        check(
            blocker_result.get("response", (0,))[0] == 200,
            "the blocking sweep itself completed",
        )
        if shed is not None:
            status, headers, body = shed
            check(
                json.loads(body)["error"] == "ServerOverloadedError",
                "429 body names ServerOverloadedError",
            )
            check(
                int(headers.get("Retry-After", 0)) >= 1,
                "429 carries Retry-After",
            )

        status, _, body = request("GET", "/metrics")
        document = json.loads(body)
        cache = document.get("cache", {})
        robustness = document.get("robustness", {})
        check(status == 200, "GET /metrics")
        check(
            cache.get("hits", 0) >= 5,
            f"cache hit counter recorded ({cache.get('hits')} hits)",
        )
        check(
            "serve.run.latency_seconds" in document.get("request_latency", {}),
            "per-endpoint latency histogram present",
        )
        check(
            robustness.get("deadline_exceeded", 0) >= 1
            and (shed is None or robustness.get("rejected", 0) >= 1),
            "robustness counters recorded the shed + deadline",
        )
        check(
            robustness.get("breaker_state") == "closed",
            "breaker closed after a healthy run",
        )

        # Prometheus exposition: same endpoint, negotiated via Accept.
        status, headers, text = request(
            "GET", "/metrics", headers={"Accept": "text/plain"}
        )
        check(
            status == 200
            and headers.get("Content-Type", "").startswith("text/plain"),
            "GET /metrics negotiates the Prometheus exposition",
        )
        scraped = text.decode("utf-8")
        samples = 0
        parse_ok = True
        for line in scraped.splitlines():
            if not line or line.startswith("#"):
                continue
            try:
                name_part, value_part = line.rsplit(" ", 1)
                float(value_part)
                samples += 1
            except ValueError:
                parse_ok = False
                break
        check(
            parse_ok and samples > 0,
            f"Prometheus scrape parses ({samples} samples)",
        )
        check(
            "repro_serve_run_requests_total" in scraped
            and "repro_serve_run_latency_seconds_bucket" in scraped,
            "exposition carries run counters and latency buckets",
        )
    finally:
        server.close()

    if failures:
        echo(f"selftest FAILED: {len(failures)} check(s)")
        return 1
    echo("selftest ok")
    return 0
