"""The ``repro serve`` daemon: gathering-as-a-service over HTTP/JSON.

Stdlib only (:class:`http.server.ThreadingHTTPServer`), one process,
four endpoints:

* ``POST /run`` — one ``(scenario, seed)`` simulation; body is the
  deterministic JSON of :func:`~repro.serve.protocol.run_body`.
* ``POST /sweep`` — a seed range, streamed as newline-delimited JSON in
  a chunked response: one run body per seed in seed order, then one
  deterministic summary line.  Per-seed lines share cache entries with
  ``/run``.
* ``GET /healthz`` — liveness (never touches the simulator or store).
* ``GET /metrics`` — request counters and latency histograms, cache
  counters, and a ``repro-sweep-metrics-v1`` aggregate of everything
  the simulations recorded, namespaced per endpoint.

The daemon amortizes exactly the two costs the CLI pays per invocation:
interpreter + import startup (the process is long-lived) and worker-pool
construction (one shared :class:`~repro.resilience.ResilientExecutor`
survives across requests, rebuilding itself after breakage like any
sweep).  On top of that, determinism makes results cacheable forever:
repeated traffic is answered from the content-addressed
:class:`~repro.serve.store.ResultStore` at memory speed with
byte-identical bodies.

Threading model: the HTTP layer is a thread per connection, but
simulation work is serialized behind one lock — the pool (or the
in-process serial executor) is a single shared resource, and the
per-seed obs payloads are computed from snapshots of the process-global
registry, which concurrent in-process runs would interleave.  Cache
hits, ``/healthz`` and ``/metrics`` bypass the lock entirely, so the
daemon stays responsive while a cold request computes.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from functools import partial
from http.client import HTTPConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional, Sequence, Tuple

from .. import __version__
from .. import obs as _obs
from ..experiments.runner import Scenario, run_scenario, executor
from ..geometry import kernels
from ..obs.aggregate import Aggregator, namespace_delta
from ..obs.histogram import Histogram
from ..obs.metrics import Metrics
from ..resilience import ReproError, RunPolicy
from . import protocol
from .protocol import SERVE_SCHEMA
from .store import ResultStore, result_key

__all__ = ["ReproServer", "run_selftest"]

logger = logging.getLogger("repro.serve")

#: Seeds resolved (cache + compute) per flushed block of a sweep
#: stream — small enough for live progress, large enough to amortize
#: pool dispatch.
SWEEP_BLOCK = 16


class ReproServer:
    """One daemon instance: HTTP server + warm pool + result store.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`
    after construction) — what the selftest and the test suite use so
    parallel CI runs never collide.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: Optional[int] = None,
        store_root: Optional[str] = None,
        cache_enabled: bool = True,
        memory_entries: int = 4096,
        policy: Optional[RunPolicy] = None,
    ) -> None:
        self.policy = policy or RunPolicy()
        self.store = ResultStore(store_root, memory_entries=memory_entries)
        self.cache_enabled = cache_enabled
        self.aggregator = Aggregator()
        #: Request-level registry (latency histograms, request/cache
        #: counters), separate from the process-global simulation
        #: registry so request accounting never leaks into per-seed
        #: obs payloads.
        self.request_metrics = Metrics()
        self._work_lock = threading.Lock()
        self._pool = None
        self._pool_cm = None
        if workers and workers > 1:
            # The warm pool: built once, shared by every request,
            # rebuilt transparently by the resilience layer on breakage.
            self._pool_cm = executor(workers, policy=self.policy)
            self._pool = self._pool_cm.__enter__()
        # Per-seed obs payloads (what /metrics aggregates) only exist
        # while the obs layer is on; the daemon is its natural owner.
        _obs.enable()
        self.started = time.monotonic()
        self._serving = threading.Event()
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.app = self

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    def serve_forever(self) -> None:
        self._serving.set()
        try:
            self.httpd.serve_forever()
        finally:
            self._serving.clear()

    def close(self) -> None:
        """Clean shutdown: stop accepting, close the socket, drain the
        pool.  Idempotent (SIGTERM handler and ``finally`` both call it)."""
        if self._serving.is_set():
            # shutdown() blocks on the serve loop exiting; calling it
            # when serve_forever never ran would wait forever.
            self.httpd.shutdown()
        self.httpd.server_close()
        if self._pool_cm is not None:
            self._pool_cm.__exit__(None, None, None)
            self._pool_cm = self._pool = None

    # -- execution ---------------------------------------------------------

    def resolve(
        self,
        scenario: Scenario,
        seeds: Sequence[int],
        *,
        use_cache: bool,
        prefix: str,
    ) -> List[Tuple[str, str]]:
        """``(body, cache_state)`` per seed, in seed order.

        The single execution path of both endpoints: look every seed up
        in the store, compute the misses in one (pooled) map, fill the
        store, and return deterministic bodies.  ``cache_state`` is
        ``"hit"`` / ``"miss"`` / ``"bypass"`` per seed.
        """
        backend = kernels.get_backend()
        keys = [
            result_key(
                scenario.to_dict(),
                seed,
                backend=backend,
                engine=scenario.engine,
                code_version=__version__,
            )
            for seed in seeds
        ]
        resolved: dict = {}
        todo: List[int] = []
        todo_keys: List[str] = []
        for seed, key in zip(seeds, keys):
            body = self.store.get(key) if use_cache else None
            if body is not None:
                resolved[seed] = (body, "hit")
            else:
                todo.append(seed)
                todo_keys.append(key)
        if todo:
            results = self._execute(scenario, todo, prefix=prefix)
            state = "miss" if use_cache else "bypass"
            for seed, key, result in zip(todo, todo_keys, results):
                body = protocol.run_body(
                    key,
                    scenario,
                    seed,
                    result,
                    backend=backend,
                    code_version=__version__,
                )
                if use_cache:
                    self.store.put(key, body)
                resolved[seed] = (body, state)
        return [resolved[seed] for seed in seeds]

    def _execute(
        self, scenario: Scenario, seeds: Sequence[int], *, prefix: str
    ) -> List:
        """Run the missing seeds through the warm pool (or serially,
        still under the retry machinery) and fold their obs payloads
        into the aggregator under the endpoint's namespace."""
        from ..experiments.runner import parallel_map

        label = scenario.label()
        with self._work_lock:
            results = parallel_map(
                partial(run_scenario, scenario),
                list(seeds),
                pool=self._pool,
                policy=self.policy,
                keys=[f"{label}#seed{seed}" for seed in seeds],
            )
            for seed, result in zip(seeds, results):
                self._account(seed, result, prefix)
        return results

    def _account(self, seed: int, result, prefix: str) -> None:
        agg = self.aggregator
        agg.total_seeds += 1
        agg.done += 1
        agg.rounds += result.rounds
        agg.verdicts[result.verdict] = agg.verdicts.get(result.verdict, 0) + 1
        payload = getattr(result, "obs", None)
        if payload is not None:
            agg.workers.add(payload.get("pid"))
            agg.span_count += len(payload.get("spans", ()))
            agg.add_metrics(
                namespace_delta(payload.get("metrics", {}), prefix)
            )

    # -- request accounting ------------------------------------------------

    def observe_request(
        self, endpoint: str, elapsed: float, cache_state: Optional[str]
    ) -> None:
        self.request_metrics.inc(f"serve.{endpoint}.requests")
        self.request_metrics.observe_hist(
            f"serve.{endpoint}.latency_seconds", elapsed
        )
        if cache_state is not None:
            self.request_metrics.inc(f"serve.cache.{cache_state}")

    def observe_error(self, endpoint: str, status: int) -> None:
        self.request_metrics.inc(f"serve.{endpoint}.errors")
        self.request_metrics.inc(f"serve.errors.status.{status}")

    def metrics_document(self) -> dict:
        """The ``GET /metrics`` body: request layer + cache + sweep
        aggregate (``repro-sweep-metrics-v1``), in one document."""
        snapshot = self.request_metrics.snapshot()
        hists = {}
        for name, data in snapshot.get("hists", {}).items():
            hist = Histogram.from_dict(data)
            data = dict(data)
            data["mean"] = hist.mean
            data["p50"] = hist.quantile(0.5)
            data["p99"] = hist.quantile(0.99)
            hists[name] = data
        return {
            "schema": "repro-serve-metrics-v1",
            "version": __version__,
            "uptime_s": time.monotonic() - self.started,
            "backend": kernels.get_backend(),
            "requests": dict(sorted(snapshot.get("counters", {}).items())),
            "request_latency": hists,
            "cache": self.store.counters(),
            "sweep": self.aggregator.to_dict(),
        }

    def healthz_document(self) -> dict:
        return {
            "schema": SERVE_SCHEMA,
            "status": "ok",
            "version": __version__,
            "backend": kernels.get_backend(),
            "uptime_s": time.monotonic() - self.started,
        }


class _Handler(BaseHTTPRequestHandler):
    """Per-connection handler; all state lives on ``self.server.app``."""

    server_version = f"repro-serve/{__version__}"
    # HTTP/1.1 for chunked sweep streams and keep-alive clients.
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # Access logs belong to the logging tree, not stderr.
        logger.debug("%s %s", self.address_string(), format % args)

    # -- plumbing ----------------------------------------------------------

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length > protocol.MAX_BODY_BYTES:
            # Refuse before reading: don't buffer an oversized body
            # just to reject it.
            from ..resilience import TraceFormatError

            raise TraceFormatError(
                f"request body of {length} bytes exceeds the "
                f"{protocol.MAX_BODY_BYTES}-byte limit",
                path="<request>",
            )
        return self.rfile.read(length) if length else b""

    def _send_json(
        self,
        status: int,
        body: str,
        *,
        cache_state: Optional[str] = None,
    ) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.send_header("X-Repro-Schema", SERVE_SCHEMA)
        if cache_state is not None:
            self.send_header("X-Repro-Cache", cache_state)
        self.end_headers()
        self.wfile.write(data)

    def _send_error_json(self, endpoint: str, exc: BaseException) -> None:
        status = getattr(exc, "http_status", 500)
        self.server.app.observe_error(endpoint, status)
        self._send_json(status, protocol.error_body(exc, status=status))

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")

    def _end_chunks(self) -> None:
        self.wfile.write(b"0\r\n\r\n")

    # -- endpoints ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        app = self.server.app
        started = time.perf_counter()
        if self.path == "/healthz":
            body = json.dumps(app.healthz_document(), sort_keys=True) + "\n"
            self._send_json(200, body)
            app.observe_request("healthz", time.perf_counter() - started, None)
            return
        if self.path == "/metrics":
            body = json.dumps(app.metrics_document(), sort_keys=True) + "\n"
            self._send_json(200, body)
            app.observe_request("metrics", time.perf_counter() - started, None)
            return
        self._send_json(
            404,
            protocol.error_body(
                ReproError(f"no such endpoint: GET {self.path}"), status=404
            ),
        )

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        app = self.server.app
        started = time.perf_counter()
        if self.path == "/run":
            try:
                request = protocol.parse_run_request(
                    protocol.parse_json_body(
                        self._read_body(), where="POST /run"
                    )
                )
                use_cache = app.cache_enabled and request.use_cache
                [(body, cache_state)] = app.resolve(
                    request.scenario,
                    [request.seed],
                    use_cache=use_cache,
                    prefix="serve.run",
                )
            except ReproError as exc:
                self._send_error_json("run", exc)
                return
            except Exception as exc:
                # The HTTP boundary: anything unanticipated becomes a
                # structured 500, never a dead connection + traceback.
                logger.exception("POST /run failed")
                self._send_error_json(
                    "run",
                    ReproError(
                        f"internal error: {type(exc).__name__}: {exc}"
                    ),
                )
                return
            # Account *before* the last byte goes out: a client may
            # read the response and immediately scrape /metrics, and
            # its own request must already be there.
            app.observe_request(
                "run", time.perf_counter() - started, cache_state
            )
            self._send_json(200, body, cache_state=cache_state)
            return
        if self.path == "/sweep":
            self._handle_sweep(started)
            return
        self._send_json(
            404,
            protocol.error_body(
                ReproError(f"no such endpoint: POST {self.path}"), status=404
            ),
        )

    def _handle_sweep(self, started: float) -> None:
        app = self.server.app
        try:
            request = protocol.parse_sweep_request(
                protocol.parse_json_body(
                    self._read_body(), where="POST /sweep"
                )
            )
        except ReproError as exc:
            self._send_error_json("sweep", exc)
            return
        use_cache = app.cache_enabled and request.use_cache
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("X-Repro-Schema", SERVE_SCHEMA)
        self.end_headers()
        verdicts: dict = {}
        hits = misses = 0
        try:
            # Stream block by block, in seed order: progress is live,
            # but the byte stream is a pure function of the request.
            for i in range(0, len(request.seeds), SWEEP_BLOCK):
                block = request.seeds[i : i + SWEEP_BLOCK]
                for body, cache_state in app.resolve(
                    request.scenario,
                    block,
                    use_cache=use_cache,
                    prefix="serve.sweep",
                ):
                    verdict = json.loads(body)["result"]["verdict"]
                    verdicts[verdict] = verdicts.get(verdict, 0) + 1
                    hits += cache_state == "hit"
                    misses += cache_state != "hit"
                    self._write_chunk(body.encode("utf-8"))
        except ReproError as exc:
            # Headers are gone; the error becomes the stream's last
            # line, and the chunked coding still terminates cleanly.
            app.observe_error("sweep", getattr(exc, "http_status", 500))
            self._write_chunk(protocol.error_body(exc).encode("utf-8"))
            self._end_chunks()
            return
        except Exception as exc:
            logger.exception("POST /sweep failed mid-stream")
            app.observe_error("sweep", 500)
            self._write_chunk(
                protocol.error_body(
                    ReproError(
                        f"internal error: {type(exc).__name__}: {exc}"
                    )
                ).encode("utf-8")
            )
            self._end_chunks()
            return
        cache_state = None
        if use_cache:
            cache_state = "hit" if misses == 0 else "miss"
        # Account before the terminating chunk: once the client's read
        # completes, this request is visible in /metrics.
        app.observe_request(
            "sweep", time.perf_counter() - started, cache_state
        )
        self._write_chunk(
            protocol.sweep_summary_line(
                request.scenario, request.seeds, verdicts
            ).encode("utf-8")
        )
        self._end_chunks()


# -- selftest -----------------------------------------------------------------


def _request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[dict] = None,
) -> Tuple[int, dict, bytes]:
    """One HTTP round trip -> (status, headers dict, body bytes)."""
    conn = HTTPConnection(host, port, timeout=120)
    try:
        body = None if payload is None else json.dumps(payload).encode()
        headers = {} if body is None else {"Content-Type": "application/json"}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        data = response.read()
        return response.status, dict(response.getheaders()), data
    finally:
        conn.close()


def run_selftest(
    workers: Optional[int] = None,
    store_root: Optional[str] = None,
    *,
    echo=print,
) -> int:
    """End-to-end daemon exercise on an ephemeral port, no state leaks.

    Asserts the PR's acceptance properties directly: a repeated
    ``POST /run`` is a cache hit with a byte-identical body, the sweep
    stream repeats byte-identically, the cold/warm latency ratio
    clears 10x, errors map onto taxonomy HTTP statuses, and ``/metrics``
    records the hits.  Returns a process exit code.
    """
    # Heavy enough that the cold run dwarfs HTTP round-trip overhead
    # (the warm path's floor), so the >= 10x ratio check has margin.
    scenario = {
        "workload": "random",
        "n": 10,
        "f": 2,
        "crashes": "random",
        "max_rounds": 5_000,
    }
    server = ReproServer(
        workers=workers, store_root=store_root, policy=RunPolicy(retries=1)
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.host, server.port
    failures: List[str] = []

    def check(condition: bool, label: str) -> None:
        echo(f"  {'ok' if condition else 'FAIL'}: {label}")
        if not condition:
            failures.append(label)

    try:
        echo(f"selftest daemon on http://{host}:{port}")

        status, _, body = _request(host, port, "GET", "/healthz")
        check(
            status == 200 and json.loads(body)["status"] == "ok",
            "GET /healthz",
        )

        t0 = time.perf_counter()
        status, headers, cold = _request(
            host, port, "POST", "/run", {"scenario": scenario, "seed": 1}
        )
        cold_s = time.perf_counter() - t0
        check(status == 200, "POST /run (cold)")
        check(headers.get("X-Repro-Cache") == "miss", "cold run is a miss")

        t0 = time.perf_counter()
        status, headers, warm = _request(
            host, port, "POST", "/run", {"scenario": scenario, "seed": 1}
        )
        warm_s = time.perf_counter() - t0
        check(status == 200, "POST /run (warm)")
        check(headers.get("X-Repro-Cache") == "hit", "warm run is a hit")
        check(warm == cold, "warm body is byte-identical to cold")
        ratio = cold_s / warm_s if warm_s > 0 else float("inf")
        echo(
            f"  latency: cold {cold_s * 1e3:.1f}ms, warm "
            f"{warm_s * 1e3:.1f}ms -> {ratio:.0f}x"
        )
        check(ratio >= 10.0, "cold/warm latency ratio >= 10x")

        status, headers, _ = _request(
            host,
            port,
            "POST",
            "/run",
            {"scenario": scenario, "seed": 1, "cache": False},
        )
        check(
            status == 200 and headers.get("X-Repro-Cache") == "bypass",
            "cache:false bypasses the store",
        )

        sweep = {"scenario": scenario, "seed_start": 0, "seed_count": 4}
        status, _, first = _request(host, port, "POST", "/sweep", sweep)
        check(
            status == 200 and first.count(b"\n") == 5,
            "POST /sweep streams 4 seeds + summary",
        )
        status, _, second = _request(host, port, "POST", "/sweep", sweep)
        check(second == first, "repeated sweep is byte-identical")

        status, _, body = _request(
            host, port, "POST", "/run", {"scenario": {"workload": "nope"}}
        )
        check(
            status == 400 and json.loads(body)["kind"] == "error",
            "malformed scenario -> structured 400",
        )

        status, _, body = _request(host, port, "GET", "/metrics")
        document = json.loads(body)
        cache = document.get("cache", {})
        check(status == 200, "GET /metrics")
        check(
            cache.get("hits", 0) >= 5,
            f"cache hit counter recorded ({cache.get('hits')} hits)",
        )
        check(
            "serve.run.latency_seconds" in document.get("request_latency", {}),
            "per-endpoint latency histogram present",
        )
    finally:
        server.close()

    if failures:
        echo(f"selftest FAILED: {len(failures)} check(s)")
        return 1
    echo("selftest ok")
    return 0
