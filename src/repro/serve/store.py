"""Content-addressed result store — the daemon's permanent memory.

Every WAIT-FREE-GATHER run is a pure function of ``(scenario, seed,
backend, engine, code version)`` — the determinism the paper's
crash-fault model guarantees and the replay suite enforces bit for bit.
That purity makes memoization *sound forever*: a cached result is not a
stale approximation that might need revalidating, it is the exact bytes
any future computation of the same key would produce.  The store
therefore never expires entries and never revalidates; keys include the
package version, so a code change simply addresses a different entry.

Two layers, both optional:

* an in-memory LRU (``memory_entries`` newest keys) serving repeated
  traffic at dict-lookup speed;
* an on-disk JSON layer under ``root`` (sharded by key prefix), written
  through :func:`~repro.resilience.atomic.atomic_write` — temp file +
  fsync + atomic rename — so concurrent daemons sharing one store
  directory can never serve a torn read: a reader sees either a whole
  document or no file at all.

Values are the exact serialized response body (a ``str``), not a parsed
document: what the cache returns is byte-identical to what the first
computation sent, which is the property the CI serve job asserts.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Optional

from ..resilience import atomic_write
from ..sim.trace import scenario_hash

__all__ = ["ResultStore", "result_key"]


def result_key(
    scenario: Optional[dict],
    seed: int,
    *,
    backend: str,
    engine: str,
    code_version: str,
) -> str:
    """The content address of one run (sha256 hex, 64 chars)."""
    return scenario_hash(
        scenario,
        seed=seed,
        backend=backend,
        engine=engine,
        code_version=code_version,
    )


class ResultStore:
    """In-memory LRU over an optional on-disk JSON layer.

    Thread-safe: the daemon handles requests on a thread per connection,
    and the lock only guards the ordered dict — disk I/O happens outside
    it so a slow write never blocks a memory-speed hit.

    ``hits`` / ``misses`` / ``disk_hits`` / ``stores`` are plain counters
    read by ``GET /metrics`` and the ``--selftest`` assertions; they make
    the cache auditable without scraping logs.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        *,
        memory_entries: int = 4096,
    ) -> None:
        if memory_entries < 1:
            raise ValueError("memory_entries must be >= 1")
        self.root = root
        self.memory_entries = memory_entries
        self._memory: "OrderedDict[str, str]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.stores = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def _path(self, key: str) -> str:
        # Two-character shard, mirroring git's object layout, so a
        # million-entry store never piles every file into one directory.
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, key: str) -> Optional[str]:
        """The cached body for ``key``, or ``None`` on a miss.

        A memory hit refreshes the key's LRU position.  A disk hit is
        promoted into memory so repeated traffic converges to memory
        speed even after a daemon restart.
        """
        with self._lock:
            body = self._memory.get(key)
            if body is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                return body
        if self.root is not None:
            try:
                with open(self._path(key), "r", encoding="utf-8") as handle:
                    body = handle.read()
            except FileNotFoundError:
                body = None
            except OSError:
                # A transient read failure is a miss, never an error:
                # the value is recomputable by definition.
                body = None
            if body is not None:
                with self._lock:
                    self.hits += 1
                    self.disk_hits += 1
                    self._remember(key, body)
                return body
        with self._lock:
            self.misses += 1
        return None

    def put(self, key: str, body: str) -> None:
        """Store one computed body under its content address.

        The disk write is atomic (whole-or-nothing), so two daemons
        racing to store the same key both land complete documents —
        and by determinism, identical ones, so the race has no loser.
        """
        with self._lock:
            self.stores += 1
            self._remember(key, body)
        if self.root is not None:
            atomic_write(self._path(key), body)

    def _remember(self, key: str, body: str) -> None:
        # Caller holds the lock.
        self._memory[key] = body
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def counters(self) -> dict:
        """Auditable cache counters (the ``/metrics`` cache block)."""
        with self._lock:
            return {
                "hits": self.hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "stores": self.stores,
                "memory_entries": len(self._memory),
                "memory_limit": self.memory_entries,
                "disk": self.root,
            }
