"""Content-addressed result store — the daemon's permanent memory.

Every WAIT-FREE-GATHER run is a pure function of ``(scenario, seed,
backend, engine, code version)`` — the determinism the paper's
crash-fault model guarantees and the replay suite enforces bit for bit.
That purity makes memoization *sound forever*: a cached result is not a
stale approximation that might need revalidating, it is the exact bytes
any future computation of the same key would produce.  The store
therefore never expires entries and never revalidates; keys include the
package version, so a code change simply addresses a different entry.

Two layers, both optional:

* an in-memory LRU (``memory_entries`` newest keys) serving repeated
  traffic at dict-lookup speed;
* an on-disk layer under ``root`` (sharded by key prefix), written
  through :func:`~repro.resilience.atomic.atomic_write` — temp file +
  fsync + atomic rename — so concurrent daemons sharing one store
  directory can never serve a torn read: a reader sees either a whole
  document or no file at all.

Integrity (``repro-store/1``): atomic writes rule out *torn* files, not
*corrupted* ones — bit rot, a truncating filesystem, or an operator's
stray editor can all mutate bytes after the rename.  Every on-disk
entry therefore carries a header line with the sha256 of its body::

    {"schema": "repro-store/1", "sha256": "<hex64>"}\\n
    <body bytes, verbatim>

and every disk read re-hashes the body against the header.  A mismatch
is handled the way the paper handles a crashed robot: isolate and carry
on — the corrupt file is moved to ``<root>/quarantine/`` (preserved for
forensics, out of the serving path) and the read reports a **miss**, so
the caller transparently recomputes.  Corruption is never an error.
Likewise a failed disk *write* (disk full, read-only filesystem)
degrades the store to memory-only with one warning instead of failing
the request: the disk layer is an optimization, never a dependency.

Values are the exact serialized response body (a ``str``), not a parsed
document: what the cache returns is byte-identical to what the first
computation sent, which is the property the CI serve job asserts.

Offline audits: :meth:`ResultStore.verify_disk`,
:meth:`ResultStore.gc_disk` and :meth:`ResultStore.disk_stats` back the
``repro serve-store`` CLI (``verify`` / ``gc`` / ``stats``) so an
operator can sweep a shared store without a daemon in the loop.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import threading
from collections import OrderedDict
from typing import Dict, Optional

from ..obs.log import get_logger
from ..resilience import ChaosPolicy, atomic_write
from ..sim.trace import scenario_hash

__all__ = ["ResultStore", "result_key", "STORE_SCHEMA"]

logger = logging.getLogger("repro.serve.store")
slog = get_logger("repro.serve.store")

#: Schema of the on-disk entry envelope (header line + verbatim body).
STORE_SCHEMA = "repro-store/1"

#: Subdirectory (under the store root) corrupt entries are moved to.
QUARANTINE_DIR = "quarantine"


def result_key(
    scenario: Optional[dict],
    seed: int,
    *,
    backend: str,
    engine: str,
    code_version: str,
) -> str:
    """The content address of one run (sha256 hex, 64 chars)."""
    return scenario_hash(
        scenario,
        seed=seed,
        backend=backend,
        engine=engine,
        code_version=code_version,
    )


def _body_digest(body: str) -> str:
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def encode_entry(body: str) -> str:
    """Body -> on-disk envelope (header line + verbatim body)."""
    header = json.dumps(
        {"schema": STORE_SCHEMA, "sha256": _body_digest(body)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return header + "\n" + body


def decode_entry(raw: str) -> Optional[str]:
    """Envelope -> verified body, or ``None`` when the bytes are corrupt.

    A file written before the envelope existed (no parseable
    ``repro-store/1`` header) is accepted as a legacy raw body — an
    upgraded daemon must keep serving a store populated by an old one —
    but anything *claiming* to be an envelope must verify.
    """
    header_line, sep, body = raw.partition("\n")
    if not sep:
        # Single line: either a legacy raw body or a truncated envelope.
        try:
            document = json.loads(header_line)
        except ValueError:
            return None
        if (
            isinstance(document, dict)
            and document.get("schema") == STORE_SCHEMA
        ):
            return None  # header without its body: truncated
        return raw  # legacy single-line raw body
    try:
        header = json.loads(header_line)
    except ValueError:
        header = None
    if not isinstance(header, dict) or header.get("schema") != STORE_SCHEMA:
        return raw  # legacy raw body that happens to span lines
    if header.get("sha256") != _body_digest(body):
        return None
    return body


class ResultStore:
    """In-memory LRU over an optional on-disk layer with verified reads.

    Thread-safe: the daemon handles requests on a thread per connection,
    and the lock only guards the ordered dict — disk I/O happens outside
    it so a slow write never blocks a memory-speed hit.

    ``hits`` / ``misses`` / ``disk_hits`` / ``stores`` / ``quarantined``
    / ``write_errors`` / ``read_errors`` are plain counters read by
    ``GET /metrics`` and the ``--selftest`` assertions; they make the
    cache auditable without scraping logs.

    ``chaos`` (a :class:`~repro.resilience.ChaosPolicy`, normally wired
    from ``REPRO_CHAOS`` by the server) deterministically injects
    ``OSError`` into disk reads/writes — through the *same* code paths
    real disk faults take, so the chaos suite proves the production
    degradation behavior, not a test-only branch.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        *,
        memory_entries: int = 4096,
        chaos: Optional[ChaosPolicy] = None,
    ) -> None:
        if memory_entries < 1:
            raise ValueError("memory_entries must be >= 1")
        self.root = root
        self.memory_entries = memory_entries
        self.chaos = chaos
        self._memory: "OrderedDict[str, str]" = OrderedDict()
        self._lock = threading.Lock()
        self._warned_write = False
        #: Per-key disk-op counters: the chaos "attempt" number, so a
        #: fault injected on one read re-rolls on the retry — transient
        #: faults heal, which is what the self-healing tests assert.
        self._io_attempts: Dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.stores = 0
        self.quarantined = 0
        self.write_errors = 0
        self.read_errors = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def _path(self, key: str) -> str:
        # Two-character shard, mirroring git's object layout, so a
        # million-entry store never piles every file into one directory.
        return os.path.join(self.root, key[:2], f"{key}.json")

    def _quarantine_path(self, key: str) -> str:
        return os.path.join(self.root, QUARANTINE_DIR, f"{key}.json")

    def _maybe_inject(self, kind: str, key: str) -> None:
        """Raise a deterministic OSError when chaos schedules one."""
        if self.chaos is None:
            return
        with self._lock:
            attempt = self._io_attempts.get(f"{kind}:{key}", 0)
            self._io_attempts[f"{kind}:{key}"] = attempt + 1
        if self.chaos.decide_serve(kind, key, attempt):
            raise OSError(f"chaos: injected {kind} fault for {key}")

    # -- serving path ------------------------------------------------------

    def get(self, key: str, *, count: bool = True) -> Optional[str]:
        """The cached body for ``key``, or ``None`` on a miss.

        A memory hit refreshes the key's LRU position.  A disk hit is
        digest-verified, then promoted into memory so repeated traffic
        converges to memory speed even after a daemon restart.  A
        corrupt disk entry is quarantined and reported as a miss.

        ``count=False`` skips the hit/miss counters — for internal
        re-checks (e.g. the single-flight leader confirming its miss)
        that would otherwise double-count one client request.
        """
        with self._lock:
            body = self._memory.get(key)
            if body is not None:
                self._memory.move_to_end(key)
                if count:
                    self.hits += 1
                return body
        if self.root is not None:
            try:
                self._maybe_inject("store_read", key)
                with open(self._path(key), "r", encoding="utf-8") as handle:
                    raw = handle.read()
            except FileNotFoundError:
                raw = None
            except OSError:
                # A transient read failure is a miss, never an error:
                # the value is recomputable by definition.
                with self._lock:
                    self.read_errors += 1
                raw = None
            if raw is not None:
                body = decode_entry(raw)
                if body is None:
                    self._quarantine(key)
                else:
                    with self._lock:
                        if count:
                            self.hits += 1
                            self.disk_hits += 1
                        self._remember(key, body)
                    return body
        if count:
            with self._lock:
                self.misses += 1
        return None

    def put(self, key: str, body: str) -> None:
        """Store one computed body under its content address.

        The disk write is atomic (whole-or-nothing), so two daemons
        racing to store the same key both land complete documents —
        and by determinism, identical ones, so the race has no loser.
        A failing disk (full, read-only, chaos) degrades the store to
        memory-only with one warning: a request whose result cannot be
        persisted is still a served request.
        """
        with self._lock:
            self.stores += 1
            self._remember(key, body)
        if self.root is not None:
            try:
                self._maybe_inject("store_write", key)
                atomic_write(self._path(key), encode_entry(body))
            except OSError as exc:
                with self._lock:
                    self.write_errors += 1
                    warn = not self._warned_write
                    self._warned_write = True
                if warn:
                    slog.warning(
                        "store.write_error",
                        f"result store disk write failed "
                        f"({type(exc).__name__}: {exc}); serving from "
                        f"memory only (warning once; disk writes keep "
                        f"being attempted)",
                        warn_once_key="store.write_error",
                        error=f"{type(exc).__name__}: {exc}",
                    )

    def _quarantine(self, key: str) -> None:
        """Move a corrupt entry out of the serving path, keeping it."""
        with self._lock:
            self.quarantined += 1
        destination = self._quarantine_path(key)
        try:
            os.makedirs(os.path.dirname(destination), exist_ok=True)
            os.replace(self._path(key), destination)
        except OSError:
            # Unlink beats leaving a poisoned file where every future
            # read re-trips on it; if even that fails the entry simply
            # stays a (logged) persistent miss.
            try:
                os.unlink(self._path(key))
            except OSError:
                pass
        slog.warning(
            "store.entry_quarantined",
            f"quarantined corrupt result store entry {key} (digest "
            f"mismatch or truncated envelope); it will be recomputed "
            f"on demand",
            key=key,
        )

    def _remember(self, key: str, body: str) -> None:
        # Caller holds the lock.
        self._memory[key] = body
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def counters(self) -> dict:
        """Auditable cache counters (the ``/metrics`` cache block)."""
        with self._lock:
            return {
                "hits": self.hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "stores": self.stores,
                "quarantined": self.quarantined,
                "write_errors": self.write_errors,
                "read_errors": self.read_errors,
                "memory_entries": len(self._memory),
                "memory_limit": self.memory_entries,
                "disk": self.root,
            }

    # -- offline audits (``repro serve-store``) ----------------------------

    def _iter_disk_keys(self):
        """Yield ``(key, path)`` for every on-disk entry, sorted."""
        if self.root is None or not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if shard == QUARANTINE_DIR or not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    yield name[: -len(".json")], os.path.join(shard_dir, name)

    def verify_disk(self, *, repair: bool = True) -> dict:
        """Digest-check every on-disk entry; optionally quarantine.

        ``repair=True`` (the CLI default) moves corrupt entries to the
        quarantine directory exactly like the serving path would; with
        ``repair=False`` it only reports.  Returns a summary document.
        """
        checked = corrupt = legacy = unreadable = 0
        bad_keys = []
        for key, path in self._iter_disk_keys():
            checked += 1
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    raw = handle.read()
            except OSError:
                unreadable += 1
                continue
            body = decode_entry(raw)
            if body is None:
                corrupt += 1
                bad_keys.append(key)
                if repair:
                    self._quarantine(key)
            elif body == raw:
                # decode returned the input unchanged: a pre-envelope
                # legacy entry that carries no digest to verify.
                legacy += 1
        return {
            "root": self.root,
            "checked": checked,
            "ok": checked - corrupt - unreadable,
            "corrupt": corrupt,
            "legacy": legacy,
            "unreadable": unreadable,
            "quarantined": corrupt if repair else 0,
            "corrupt_keys": bad_keys,
        }

    def gc_disk(self) -> dict:
        """Delete quarantined entries and stray temp files.

        Quarantine is a forensic holding area, not a second cache —
        once an operator has looked (or decided not to), ``gc`` frees
        the space.  Stray ``*.tmp`` files are debris of writers that
        died between ``mkstemp`` and rename; they are never read by
        anything and are safe to remove.
        """
        removed = 0
        freed_bytes = 0
        if self.root is None or not os.path.isdir(self.root):
            return {"root": self.root, "removed": 0, "freed_bytes": 0}
        quarantine = os.path.join(self.root, QUARANTINE_DIR)
        victims = []
        if os.path.isdir(quarantine):
            victims.extend(
                os.path.join(quarantine, name)
                for name in sorted(os.listdir(quarantine))
            )
        for dirpath, _, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith(".tmp"):
                    victims.append(os.path.join(dirpath, name))
        for path in victims:
            try:
                freed_bytes += os.path.getsize(path)
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return {
            "root": self.root,
            "removed": removed,
            "freed_bytes": freed_bytes,
        }

    def disk_stats(self) -> dict:
        """Entry/byte counts of the disk layer (plus quarantine)."""
        entries = 0
        total_bytes = 0
        for _, path in self._iter_disk_keys():
            entries += 1
            try:
                total_bytes += os.path.getsize(path)
            except OSError:
                pass
        quarantined = 0
        quarantine = (
            os.path.join(self.root, QUARANTINE_DIR) if self.root else None
        )
        if quarantine and os.path.isdir(quarantine):
            quarantined = len(os.listdir(quarantine))
        return {
            "root": self.root,
            "entries": entries,
            "total_bytes": total_bytes,
            "quarantined": quarantined,
        }
