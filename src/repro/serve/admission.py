"""Self-protection primitives of the ``repro serve`` daemon.

The paper's algorithm is wait-free: ``f`` crashed robots cannot block
the correct ones.  The serving layer earns the same property with four
small, independently testable mechanisms, all here:

* :class:`AdmissionController` — a weighted in-flight budget.  A
  daemon that accepts unbounded concurrent requests converts overload
  into unbounded thread counts and unbounded queueing delay; one that
  sheds load keeps every *admitted* request fast and every rejected one
  cheap (a structured 429 costs microseconds).
* :class:`Deadline` — one wall-clock budget per request.  Queue wait,
  cache lookups and compute all draw from the same clock, so a wedged
  seed cannot hold its admission slot forever.
* :class:`SingleFlight` — duplicate coalescing.  ``N`` concurrent
  ``POST /run``\\ s for the same content address are one computation and
  ``N`` byte-identical responses; determinism makes the leader's bytes
  *the* answer for every follower.
* :class:`CircuitBreaker` — a rolling-window crash counter that flips
  readiness when the worker pool keeps dying, so a load balancer stops
  routing to a daemon that cannot currently compute.

Everything is stdlib threading; nothing here imports the simulator.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from ..resilience import RequestDeadlineError, ServerOverloadedError

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "Deadline",
    "SingleFlight",
]


class Deadline:
    """A monotonic wall-clock budget for one request.

    ``None`` seconds means unbounded: ``remaining()`` is ``None`` and
    :attr:`expired` never fires — callers thread one object through
    either way instead of branching on "has a deadline" everywhere.
    """

    __slots__ = ("seconds", "_expires_at")

    def __init__(self, seconds: Optional[float]) -> None:
        self.seconds = seconds
        self._expires_at = (
            None if seconds is None else time.monotonic() + seconds
        )

    @property
    def expired(self) -> bool:
        return (
            self._expires_at is not None
            and time.monotonic() >= self._expires_at
        )

    def remaining(self) -> Optional[float]:
        """Seconds left (``>= 0``), or ``None`` when unbounded."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.monotonic())

    def check(self, what: str) -> None:
        """Raise the taxonomy's 504 if the budget is spent."""
        if self.expired:
            raise RequestDeadlineError(
                f"request deadline of {self.seconds}s exceeded {what}"
            )


class AdmissionController:
    """Weighted in-flight budget with cheap rejection.

    ``max_inflight`` is a budget of abstract units, not a thread count:
    a ``/run`` costs ``1`` and a ``/sweep`` costs ``sweep_weight``
    (a sweep is up to thousands of seeds of work — admitting it must
    consume proportionally more of the budget).  ``max_inflight=None``
    disables shedding but still counts in-flight work, which the
    graceful drain and ``/metrics`` rely on.
    """

    def __init__(
        self,
        max_inflight: Optional[int] = None,
        *,
        sweep_weight: int = 4,
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if sweep_weight < 1:
            raise ValueError("sweep_weight must be >= 1")
        self.max_inflight = max_inflight
        self.sweep_weight = sweep_weight
        self._inflight = 0
        self._requests = 0
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)

    def weight_for(self, endpoint: str) -> int:
        return self.sweep_weight if endpoint == "sweep" else 1

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    @property
    def active_requests(self) -> int:
        with self._lock:
            return self._requests

    def acquire(self, weight: int, *, endpoint: str = "request") -> None:
        """Take ``weight`` units or raise the taxonomy's 429 *now*.

        No queueing on purpose: a request waiting for budget is exactly
        the unbounded-latency failure mode admission control exists to
        prevent.  An over-budget weight (a sweep heavier than the whole
        budget) is still admitted when the daemon is otherwise idle —
        a budget must never make a legal request *impossible*.
        """
        with self._lock:
            over = (
                self.max_inflight is not None
                and self._inflight + weight > self.max_inflight
                and self._inflight > 0
            )
            if over:
                raise ServerOverloadedError(
                    f"{endpoint}: in-flight budget exhausted "
                    f"({self._inflight}/{self.max_inflight} units in "
                    f"flight, request needs {weight}); retry later",
                    retry_after_s=1.0,
                )
            self._inflight += weight
            self._requests += 1

    def release(self, weight: int) -> None:
        with self._lock:
            self._inflight = max(0, self._inflight - weight)
            self._requests = max(0, self._requests - 1)
            if self._inflight == 0:
                self._idle.notify_all()

    def drain(self, timeout: Optional[float]) -> bool:
        """Block until nothing is in flight (or ``timeout`` elapses).

        The graceful-shutdown primitive: the server stops admitting,
        then waits here for the requests it already accepted.  Returns
        ``True`` when the daemon drained completely.
        """
        deadline = Deadline(timeout)
        with self._lock:
            while self._inflight > 0:
                remaining = deadline.remaining()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(
                    remaining if remaining is not None else None
                )
            return True


class _Flight:
    """One in-progress computation other requests can latch onto."""

    __slots__ = ("done", "body", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.body: Optional[str] = None
        self.error: Optional[BaseException] = None


class SingleFlight:
    """Per-key duplicate coalescing for concurrent identical requests.

    The first request for a key becomes the *leader* and computes; every
    concurrent duplicate becomes a *follower* that waits for the
    leader's bytes.  Sound for the same reason the result store is: the
    body is a pure function of the key, so the leader's answer is
    byte-for-byte the answer every follower would have computed.
    """

    def __init__(self) -> None:
        self._flights: Dict[str, _Flight] = {}
        self._lock = threading.Lock()
        self.coalesced = 0

    def lead_or_follow(self, key: str):
        """-> ``(is_leader, flight)``, atomically."""
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                self.coalesced += 1
                return False, flight
            flight = _Flight()
            self._flights[key] = flight
            return True, flight

    def finish(self, key: str, flight: _Flight, *, body=None, error=None):
        """Leader-side: publish the outcome and wake every follower."""
        flight.body = body
        flight.error = error
        with self._lock:
            self._flights.pop(key, None)
        flight.done.set()

    @staticmethod
    def wait(flight: _Flight, deadline: Deadline) -> str:
        """Follower-side: the leader's body, its error, or a 504."""
        if not flight.done.wait(timeout=deadline.remaining()):
            raise RequestDeadlineError(
                f"request deadline of {deadline.seconds}s exceeded while "
                "waiting for a coalesced duplicate computation"
            )
        if flight.error is not None:
            raise flight.error
        assert flight.body is not None
        return flight.body


class CircuitBreaker:
    """Rolling-window failure counter driving the readiness signal.

    ``threshold`` failures within ``window_s`` seconds open the breaker;
    it half-opens (readiness restored, probes allowed) after
    ``cooldown_s`` without the failure budget refilling, and one success
    closes it.  The breaker never *rejects* work itself — computing is
    how a half-open breaker discovers recovery — it only reports state,
    which ``/healthz`` turns into not-ready so load balancers route
    around a daemon whose worker pool keeps dying.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(
        self,
        threshold: int = 5,
        window_s: float = 30.0,
        cooldown_s: float = 10.0,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.window_s = window_s
        self.cooldown_s = cooldown_s
        self._failures: list = []  # monotonic timestamps
        self._opened_at: Optional[float] = None
        self._lock = threading.Lock()
        self.trips = 0

    def record_failure(self) -> None:
        now = time.monotonic()
        with self._lock:
            self._failures.append(now)
            self._prune(now)
            if (
                self._opened_at is None
                and len(self._failures) >= self.threshold
            ):
                self._opened_at = now
                self.trips += 1

    def record_success(self) -> None:
        with self._lock:
            if self._opened_at is not None:
                # A success is proof of recovery, whatever the phase.
                self._opened_at = None
                self._failures.clear()

    def _prune(self, now: float) -> None:
        cutoff = now - self.window_s
        while self._failures and self._failures[0] < cutoff:
            self._failures.pop(0)

    @property
    def state(self) -> str:
        now = time.monotonic()
        with self._lock:
            if self._opened_at is None:
                return self.CLOSED
            if now - self._opened_at >= self.cooldown_s:
                return self.HALF_OPEN
            return self.OPEN

    def snapshot(self) -> dict:
        state = self.state
        with self._lock:
            self._prune(time.monotonic())
            return {
                "state": state,
                "recent_failures": len(self._failures),
                "threshold": self.threshold,
                "window_s": self.window_s,
                "cooldown_s": self.cooldown_s,
                "trips": self.trips,
            }
