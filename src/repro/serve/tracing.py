"""Per-request span trees for the serve stack (``X-Repro-Request-Id``).

The worker-side span hierarchy (run → round → phase → kernel, PR 5)
stops at the process boundary: a slow ``POST /run`` is invisible between
socket accept and the first worker span.  This module extends the same
``repro-spans-v1`` machinery across the HTTP layer:

* every request gets an id — client-supplied ``X-Repro-Request-Id``
  propagated verbatim, otherwise server-generated — echoed in the
  response headers and stamped into every span and access-log record it
  touches;
* a :class:`RequestTrace` records the server-side tree ``request →
  admission_wait / cache_lookup / singleflight / worker_run`` on a
  *per-request* :class:`~repro.obs.spans.Tracer` (the process-global
  tracer is single-threaded by design; HTTP handlers are concurrent, so
  each request isolates its parent-chain stack on its own instance);
* the worker span tails shipped home in result payloads
  (``result.obs["spans"]``, the PR 5 attachment path) are grafted under
  the request's ``worker_run`` span: ids are re-allocated to the
  request tracer, timestamps are rebased from the worker's
  ``perf_counter_ns`` timeline onto the server's (the two clocks share
  no epoch), and every span is stamped with the request id — so one
  spans file joins HTTP-layer and simulation-layer timelines.

Tracing is wired only when the daemon is given a ``--trace-jsonl`` sink
and ``REPRO_SPANS`` is not vetoed; otherwise no span objects are built
anywhere on the request path (the serve counterpart of the engines'
no-alloc contract).
"""

from __future__ import annotations

import re
import threading
import uuid
from typing import List, Optional

from ..obs.spans import Span, SpanJsonlSink, Tracer

__all__ = [
    "REQUEST_ID_HEADER",
    "new_request_id",
    "clean_request_id",
    "RequestTrace",
    "LockedSpanWriter",
]

#: The request-id header, both directions: propagated when the client
#: supplies it, generated and returned when it does not.
REQUEST_ID_HEADER = "X-Repro-Request-Id"

#: Accepted shape of a client-supplied id; anything else is replaced
#: (a response header must never echo arbitrary bytes back).
_ID_PATTERN = re.compile(r"^[A-Za-z0-9._-]{1,128}$")


def new_request_id() -> str:
    """A fresh server-generated request id (32 hex chars)."""
    return uuid.uuid4().hex


def clean_request_id(supplied: Optional[str]) -> str:
    """The request's id: the client's when well-formed, else a new one."""
    if supplied and _ID_PATTERN.match(supplied):
        return supplied
    return new_request_id()


class LockedSpanWriter:
    """Serialize concurrent handler threads onto one span sink.

    :class:`~repro.obs.spans.SpanJsonlSink` is written by one tracer in
    the worker/CLI paths; here many per-request tracers share it, so
    every write takes a lock (one line per span — the lock is held for
    a single buffered write).
    """

    def __init__(self, sink: SpanJsonlSink) -> None:
        self.sink = sink
        self._lock = threading.Lock()

    def __call__(self, span: Span) -> None:
        with self._lock:
            self.sink.write(span)

    def close(self) -> None:
        with self._lock:
            self.sink.close()


class RequestTrace:
    """The span tree of one in-flight request.

    Opened at admission, closed by :meth:`finish` just before the
    response epilogue.  All methods run on the request's handler
    thread; the only shared state is the (locked) writer.
    """

    def __init__(
        self,
        request_id: str,
        route: str,
        method: str,
        writer,
    ) -> None:
        self.request_id = request_id
        self.tracer = Tracer()
        self.tracer.active = True
        if writer is not None:
            self.tracer.add_sink(writer)
        self.root = self.tracer.begin(
            "request",
            "request",
            attrs={
                "request_id": request_id,
                "route": route,
                "method": method,
            },
        )

    # -- server-side spans ---------------------------------------------------

    def begin(self, name: str, attrs: Optional[dict] = None) -> Span:
        merged = {"request_id": self.request_id}
        if attrs:
            merged.update(attrs)
        return self.tracer.begin(name, "serve", attrs=merged)

    def end(self, span: Span, **attrs) -> None:
        if attrs:
            span.attrs.update(attrs)
        self.tracer.end(span)

    def finish(self, status: int, cache_state: Optional[str] = None) -> None:
        """Close the root span, stamping the request's outcome."""
        self.root.attrs["status"] = status
        if cache_state is not None:
            self.root.attrs["cache"] = cache_state
        self.tracer.end(self.root)

    # -- worker-span grafting ------------------------------------------------

    def attach_worker_spans(
        self, payload: Optional[dict], worker_run: Span
    ) -> int:
        """Graft one result payload's span tail under ``worker_run``.

        Worker timestamps are ``perf_counter_ns`` of *that worker
        process* — meaningless on the server's timeline — so they are
        rebased: the earliest worker span start maps onto the server's
        ``worker_run`` start, preserving every in-worker interval.  Ids
        are re-allocated from the request tracer (worker ids restart at
        1 and would collide); internal parent links are remapped, and
        payload roots become children of ``worker_run``.  Every grafted
        span carries ``request_id`` and the worker ``pid``.

        Returns the number of spans grafted.
        """
        if not payload:
            return 0
        span_dicts: List[dict] = payload.get("spans") or []
        if not span_dicts:
            return 0
        pid = payload.get("pid")
        offset = worker_run.start_ns - min(
            d["start_ns"] for d in span_dicts
        )
        id_map = {
            d["id"]: self.tracer.next_id() for d in span_dicts
        }
        for d in span_dicts:
            attrs = dict(d.get("attrs") or {})
            attrs["request_id"] = self.request_id
            if pid is not None:
                attrs["worker_pid"] = pid
            span = Span(
                id_map[d["id"]],
                id_map.get(d["parent"], worker_run.span_id),
                d["name"],
                d["kind"],
                d["start_ns"] + offset,
                attrs,
            )
            span.duration_ns = d["dur_ns"]
            self.tracer.adopt(span)
        return len(span_dicts)
