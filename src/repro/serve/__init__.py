"""``repro serve``: the long-lived gathering-as-a-service daemon.

The simulator is a pure function of ``(scenario, seed, backend, engine,
code version)`` — the determinism contract the paper's crash-fault model
rests on and the replay suite enforces bit for bit.  This package turns
that contract into a service: a stdlib-only HTTP/JSON daemon
(:mod:`~repro.serve.server`) that keeps a warm worker pool alive across
requests and memoizes every result in a content-addressed store
(:mod:`~repro.serve.store`) whose entries are exact and permanent.
Request/response shapes live in :mod:`~repro.serve.protocol`; the
self-protection primitives — weighted admission control, per-request
deadlines, duplicate coalescing and the readiness circuit breaker —
live in :mod:`~repro.serve.admission`.
"""

from .admission import AdmissionController, CircuitBreaker, Deadline, SingleFlight
from .protocol import SERVE_SCHEMA
from .server import ReproServer, run_selftest
from .store import STORE_SCHEMA, ResultStore, result_key

__all__ = [
    "SERVE_SCHEMA",
    "STORE_SCHEMA",
    "AdmissionController",
    "CircuitBreaker",
    "Deadline",
    "SingleFlight",
    "ReproServer",
    "ResultStore",
    "result_key",
    "run_selftest",
]
