"""``repro serve``: the long-lived gathering-as-a-service daemon.

The simulator is a pure function of ``(scenario, seed, backend, engine,
code version)`` — the determinism contract the paper's crash-fault model
rests on and the replay suite enforces bit for bit.  This package turns
that contract into a service: a stdlib-only HTTP/JSON daemon
(:mod:`~repro.serve.server`) that keeps a warm worker pool alive across
requests and memoizes every result in a content-addressed store
(:mod:`~repro.serve.store`) whose entries are exact and permanent.
Request/response shapes live in :mod:`~repro.serve.protocol`.
"""

from .protocol import SERVE_SCHEMA
from .server import ReproServer, run_selftest
from .store import ResultStore, result_key

__all__ = [
    "SERVE_SCHEMA",
    "ReproServer",
    "ResultStore",
    "result_key",
    "run_selftest",
]
