"""Command-line interface: ``repro-gather`` (or ``python -m repro``).

Three subcommands:

``simulate``
    Run one simulation and print the outcome (optionally a round-by-round
    transcript).

``classify``
    Generate a workload and print its Section IV classification together
    with the derived structure (symmetry, quasi-regularity, safe points,
    Weber point when exactly computable).

``experiment``
    Run one of the E1-E17 experiments (or ``all``) and print its tables;
    this is how EXPERIMENTS.md was produced.  ``--workers N`` shards the
    seed sweeps over processes.

``bench``
    Run the micro + round-throughput benchmarks over every available
    kernel backend and write ``BENCH_micro.json``.

``check``
    The reproducibility gate: re-simulate archived traces and verify
    bit-identical replay (``--replay``, ``--corpus``), run the invariant
    suite over archives offline (``--invariants``), and diff the two
    kernel backends on a scenario in subprocesses (``--diff``).

``sweep``
    Run one scenario over a seed range under the resilient execution
    layer: per-seed timeouts and bounded retries (``--timeout``,
    ``--retries``), a crash-safe checkpoint journal (``--journal``) and
    resumption after a kill (``--resume``).  Results are bit-identical
    to a sequential run regardless of retries, pool rebuilds or
    resumption.

``serve``
    Run the long-lived gathering-as-a-service HTTP daemon: ``POST
    /run`` and ``POST /sweep`` served through a content-addressed
    result cache (deterministic simulation makes cache hits exact and
    permanent), ``GET /healthz`` and ``GET /metrics`` for operations.
    ``--selftest`` exercises the daemon end to end on an ephemeral
    port and exits.

``stats``
    Summarize a trace JSON or an observability JSONL event stream as
    tables: per-class round counts, crash/move totals, spread
    trajectory.  A ``repro-log-v1`` structured log gets per-level and
    per-event record counts plus the warn-once keys that fired.

``trace-export``
    Convert a ``repro-spans-v1`` span stream — or, on a synthetic
    timeline, an obs event stream or trace archive — to Chrome
    trace-event JSON that Perfetto / ``chrome://tracing`` open
    directly.  Multiple inputs merge onto one timeline, each on its
    own track group.

``profile``
    Run one scenario with the observability layer on and print the
    profile: per-kernel call counts and wall time, per-class round
    counts, Weber solver statistics.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
import time
from typing import List, Optional, Tuple

from .algorithms import ALGORITHMS
from .core import (
    ConfigClass,
    Configuration,
    classify,
    quasi_regularity,
    safe_points,
    symmetry,
)
from .experiments import EXPERIMENTS, run_experiment
from .experiments.report import Table
from .experiments.runner import (
    Scenario,
    make_crashes,
    make_movement,
    make_scheduler,
    run_scenario,
)
from .geometry import DEFAULT_TOLERANCE, kernels
from .resilience import ReproError, RunPolicy, SweepJournal, TraceFormatError
from .sim import Simulation
from .sim.trace import TraceMeta
from .workloads import CLASS_GENERATORS, generate

__all__ = ["main", "build_parser"]

#: Registry names accepted by the scenario flags — one list per axis so
#: the subcommands cannot drift apart from each other or from the
#: runner's ``_SCHEDULERS`` / ``_MOVEMENTS`` registries.
_SCHEDULER_CHOICES = [
    "fsync", "round-robin", "random", "laggard", "half-split", "poisson",
]
_MOVEMENT_CHOICES = [
    "rigid", "adversarial-stop", "random-stop", "collusive-stop",
    "per-robot-speed",
]


def _add_visibility_flag(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--visibility", type=float, default=None, metavar="R",
        help="finite visibility radius for every LOOK snapshot "
             "(default: unlimited, the paper's model)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gather",
        description=(
            "Wait-free gathering of mobile robots tolerating multiple "
            "crash faults (Bouzid-Das-Tixeuil, ICDCS 2013) - reproduction"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one simulation")
    sim.add_argument("--workload", default="random", choices=sorted(CLASS_GENERATORS))
    sim.add_argument("--n", type=int, default=8)
    sim.add_argument("--algorithm", default="wait-free-gather", choices=sorted(ALGORITHMS))
    sim.add_argument("--scheduler", default="random",
                     choices=_SCHEDULER_CHOICES)
    sim.add_argument("--crashes", default="random",
                     choices=["none", "random", "after-move", "elected"])
    sim.add_argument("--f", type=int, default=0, help="fault budget (crashes)")
    sim.add_argument("--movement", default="random-stop",
                     choices=_MOVEMENT_CHOICES)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--max-rounds", type=int, default=20_000)
    sim.add_argument("--engine", default="atom", choices=["atom", "async"],
                     help="execution model: the paper's ATOM rounds or the "
                          "ASYNC (CORDA) tick engine")
    _add_visibility_flag(sim)
    sim.add_argument("--trace", action="store_true", help="print the round transcript")
    sim.add_argument(
        "--save-trace",
        metavar="PATH",
        help="write the full round-by-round trace as JSON to PATH",
    )
    sim.add_argument("--obs", action="store_true",
                     help="enable the observability layer (round events + "
                          "counters; prints a summary after the run)")
    sim.add_argument("--obs-jsonl", metavar="PATH", default=None,
                     help="write the round-event stream as JSONL to PATH "
                          "(implies --obs)")
    sim.add_argument("--spans-jsonl", metavar="PATH", default=None,
                     help="write the span trace (run/round/phase/kernel) "
                          "as repro-spans-v1 JSONL to PATH (implies --obs; "
                          "convert with 'repro trace-export')")

    cls = sub.add_parser("classify", help="classify a generated workload")
    cls.add_argument("--workload", default="random", choices=sorted(CLASS_GENERATORS))
    cls.add_argument("--n", type=int, default=8)
    cls.add_argument("--seed", type=int, default=0)

    exp = sub.add_parser("experiment", help="run experiments E1-E17")
    exp.add_argument("id", choices=sorted(EXPERIMENTS) + ["all"])
    exp.add_argument("--full", action="store_true",
                     help="full parameter sweep (slow); default is quick mode")
    exp.add_argument("--csv", action="store_true", help="emit CSV instead of tables")
    exp.add_argument("--workers", type=int, default=None, metavar="N",
                     help="shard seed sweeps over N processes "
                          "(results identical to sequential)")
    exp.add_argument("--archive-failures", metavar="DIR", default=None,
                     help="archive a replayable trace JSON into DIR for "
                          "every failing (not gathered, not provably "
                          "impossible) seed of the sweep")
    exp.add_argument("--obs", action="store_true",
                     help="enable the observability layer for the sweep "
                          "(exported to worker processes; prints counter "
                          "and kernel summaries afterwards)")

    bench = sub.add_parser(
        "bench",
        help="run micro + round-throughput benchmarks, write JSON",
    )
    bench.add_argument("--output", default="BENCH_micro.json",
                       help="path of the JSON report (default: BENCH_micro.json)")
    bench.add_argument("--quick", action="store_true",
                       help="small sizes only (CI-friendly)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="timed repetitions per micro benchmark (best-of)")
    bench.add_argument("--sizes", type=int, nargs="+", default=None,
                       metavar="N", help="override the team sizes to measure")
    bench.add_argument("--check", action="store_true",
                       help="regression gate: compare this run against the "
                            "median of the last runs in the history at "
                            "--output and exit non-zero when a benchmark "
                            "slowed past --threshold")
    bench.add_argument("--threshold", type=float, default=0.25,
                       metavar="FRAC",
                       help="allowed slowdown over the history median "
                            "before --check fails (default 0.25 = 25%%)")
    bench.add_argument("--window", type=int, default=5, metavar="K",
                       help="history runs the --check baseline median is "
                            "taken over (default 5)")

    hunt = sub.add_parser(
        "hunt",
        help="run the greedy adversarial search for the bivalent trap",
    )
    hunt.add_argument("--workload", default="unsafe-ray", choices=sorted(CLASS_GENERATORS))
    hunt.add_argument("--n", type=int, default=8)
    hunt.add_argument("--algorithm", default="wait-free-gather", choices=sorted(ALGORITHMS))
    hunt.add_argument("--seed", type=int, default=0)
    hunt.add_argument("--rounds", type=int, default=40)

    check = sub.add_parser(
        "check",
        help="replay archived traces, verify invariants, diff backends",
        description=(
            "Reproducibility gate.  Modes (combine freely): --replay / "
            "--corpus re-simulate archived v2 traces and require "
            "bit-identical executions; --invariants runs the proof-"
            "obligation checkers over archives offline; --diff runs one "
            "scenario under both kernel backends in subprocesses and "
            "reports the first divergent round with a minimized "
            "reproduction command.  Exits non-zero on any mismatch."
        ),
    )
    check.add_argument("--replay", metavar="TRACE", nargs="+", default=[],
                       help="trace JSON files to re-simulate and compare "
                            "bit for bit")
    check.add_argument("--invariants", metavar="TRACE", nargs="+", default=[],
                       help="trace JSON files to run the invariant suite "
                            "over (offline, no re-simulation)")
    check.add_argument("--corpus", metavar="DIR", default=None,
                       help="replay + verify every *.json trace in DIR")
    check.add_argument("--backend", default="recorded",
                       choices=["recorded", "python", "numpy", "both"],
                       help="backend(s) to replay on (default: the one "
                            "the trace was recorded with)")
    check.add_argument("--diff", action="store_true",
                       help="differential backend check for the scenario "
                            "given by the flags below")
    check.add_argument("--workload", default="random", choices=sorted(CLASS_GENERATORS))
    check.add_argument("--n", type=int, default=8)
    check.add_argument("--algorithm", default="wait-free-gather", choices=sorted(ALGORITHMS))
    check.add_argument("--scheduler", default="random",
                       choices=_SCHEDULER_CHOICES)
    check.add_argument("--crashes", default="random",
                       choices=["none", "random", "after-move", "elected"])
    check.add_argument("--f", type=int, default=0)
    check.add_argument("--movement", default="random-stop",
                       choices=_MOVEMENT_CHOICES)
    check.add_argument("--seeds", type=int, nargs="+", default=[0],
                       metavar="SEED", help="seeds for --diff")
    check.add_argument("--max-rounds", type=int, default=20_000)
    _add_visibility_flag(check)
    check.add_argument("--emit-trace", metavar="SCENARIO_JSON", default=None,
                       help=argparse.SUPPRESS)  # internal recorder mode
    check.add_argument("--seed", type=int, default=0, help=argparse.SUPPRESS)
    check.add_argument("--out", metavar="PATH", default=None,
                       help=argparse.SUPPRESS)

    render = sub.add_parser(
        "render", help="render a simulation run (or a snapshot) as SVG"
    )
    render.add_argument("output", help="path of the .svg file to write")
    render.add_argument("--workload", default="random", choices=sorted(CLASS_GENERATORS))
    render.add_argument("--n", type=int, default=8)
    render.add_argument("--algorithm", default="wait-free-gather", choices=sorted(ALGORITHMS))
    render.add_argument("--scheduler", default="random",
                        choices=_SCHEDULER_CHOICES)
    render.add_argument("--crashes", default="none",
                        choices=["none", "random", "after-move", "elected"])
    render.add_argument("--f", type=int, default=0)
    render.add_argument("--seed", type=int, default=0)
    render.add_argument("--snapshot", action="store_true",
                        help="render the initial configuration only (no run)")

    sweep = sub.add_parser(
        "sweep",
        help="run one scenario over a seed range, resiliently",
        description=(
            "Resilient seed sweep.  Every completed seed is checkpointed "
            "to an fsynced repro-sweep-v1 journal (--journal) the moment "
            "it finishes; crashed or hung workers are retried with "
            "exponential backoff and the pool is rebuilt transparently.  "
            "A sweep killed at any point resumes from its last "
            "checkpoint with --resume, skipping journaled seeds.  "
            "Because each seed is a pure function of (scenario, seed), "
            "the final results are bit-identical to a clean sequential "
            "run no matter how many retries, rebuilds or resumptions "
            "happened.  Deterministic fault injection for testing comes "
            "from the REPRO_CHAOS environment variable."
        ),
    )
    sweep.add_argument("--workload", default="random", choices=sorted(CLASS_GENERATORS))
    sweep.add_argument("--n", type=int, default=8)
    sweep.add_argument("--algorithm", default="wait-free-gather", choices=sorted(ALGORITHMS))
    sweep.add_argument("--scheduler", default="random",
                       choices=_SCHEDULER_CHOICES)
    sweep.add_argument("--crashes", default="random",
                       choices=["none", "random", "after-move", "elected"])
    sweep.add_argument("--f", type=int, default=0, help="fault budget (crashes)")
    sweep.add_argument("--movement", default="random-stop",
                       choices=_MOVEMENT_CHOICES)
    sweep.add_argument("--max-rounds", type=int, default=20_000)
    sweep.add_argument("--engine", default="atom",
                       choices=["atom", "async", "batched"],
                       help="execution engine; 'batched' steps many seeds "
                            "per vectorized round (seed-equivalent to "
                            "'atom')")
    sweep.add_argument("--batch-size", type=int, default=None, metavar="K",
                       help="seeds stepped together per batched-engine "
                            "simulation (default 64; ignored by the "
                            "scalar engines)")
    _add_visibility_flag(sweep)
    sweep.add_argument("--seeds", type=int, default=16, metavar="N",
                       help="number of seeds to sweep "
                            "(seed-start .. seed-start+N-1; default 16)")
    sweep.add_argument("--seed-start", type=int, default=0, metavar="S",
                       help="first seed of the range (default 0)")
    sweep.add_argument("--workers", type=int, default=None, metavar="N",
                       help="shard seeds over N processes "
                            "(results identical to sequential)")
    sweep.add_argument("--timeout", type=float, default=None, metavar="SEC",
                       help="per-seed wall-clock timeout (pooled runs; a "
                            "timed-out seed is charged a retry and its "
                            "worker replaced)")
    sweep.add_argument("--retries", type=int, default=2,
                       help="attributable failures tolerated per seed "
                            "before the sweep fails (default 2)")
    sweep.add_argument("--backoff", type=float, default=0.1, metavar="SEC",
                       help="base retry delay, doubled per attempt "
                            "(default 0.1)")
    sweep.add_argument("--journal", metavar="PATH", default=None,
                       help="checkpoint completed seeds to a "
                            "repro-sweep-v1 JSONL journal at PATH")
    sweep.add_argument("--resume", action="store_true",
                       help="skip seeds already recorded in --journal "
                            "(their journaled results are returned "
                            "bit-identically)")
    sweep.add_argument("--archive-failures", metavar="DIR", default=None,
                       help="archive a replayable trace JSON into DIR for "
                            "every failing seed")
    sweep.add_argument("--obs", action="store_true",
                       help="enable the observability layer: workers ship "
                            "their per-seed metric deltas and span tails "
                            "home, the parent merges them and writes the "
                            "aggregate as sweep-metrics.json")
    sweep.add_argument("--live", action="store_true",
                       help="force the live in-place dashboard (implies "
                            "--obs; default: auto-detected from the TTY)")
    sweep.add_argument("--metrics", metavar="PATH", default=None,
                       help="path of the aggregated repro-sweep-metrics-v1 "
                            "JSON (implies --obs; default with --obs: "
                            "sweep-metrics.json next to the journal)")

    serve = sub.add_parser(
        "serve",
        help="run the gathering-as-a-service HTTP daemon",
        description=(
            "Long-lived HTTP/JSON daemon.  POST /run executes one "
            "(scenario, seed) simulation; POST /sweep streams a seed "
            "range as newline-delimited JSON; GET /healthz and GET "
            "/metrics serve liveness and telemetry.  Every result is "
            "memoized in a content-addressed store keyed by "
            "sha256(scenario, seed, backend, engine, code version) — "
            "simulation is deterministic, so cache hits return the "
            "exact bytes of the first computation, forever.  A warm "
            "worker pool (--workers) survives across requests."
        ),
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8642,
                       help="bind port; 0 picks an ephemeral port "
                            "(default 8642)")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="keep a warm N-process worker pool across "
                            "requests (default: in-process serial)")
    serve.add_argument("--store", metavar="DIR", default=None,
                       help="on-disk result store directory (shared "
                            "safely between daemons; default: "
                            "in-memory only)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the result cache entirely (every "
                            "request recomputes)")
    serve.add_argument("--memory-entries", type=int, default=4096,
                       metavar="K",
                       help="in-memory LRU capacity in results "
                            "(default 4096)")
    serve.add_argument("--timeout", type=float, default=None, metavar="SEC",
                       help="per-seed wall-clock timeout (pooled runs)")
    serve.add_argument("--retries", type=int, default=2,
                       help="attributable failures tolerated per seed "
                            "(default 2)")
    serve.add_argument("--max-inflight", type=int, default=None, metavar="N",
                       help="weighted in-flight budget; excess requests "
                            "are shed with a structured 429 + Retry-After "
                            "(a /run costs 1 unit, a /sweep costs "
                            "--sweep-weight; default: unbounded)")
    serve.add_argument("--sweep-weight", type=int, default=4, metavar="W",
                       help="admission weight of one /sweep request "
                            "(default 4)")
    serve.add_argument("--request-deadline", type=float, default=None,
                       metavar="SEC",
                       help="default wall-clock budget per request — "
                            "queueing and compute both count; exceeded "
                            "budgets return a structured 504 and free "
                            "the slot (per-request 'deadline_s' "
                            "overrides; default: unbounded)")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       metavar="SEC",
                       help="graceful-shutdown drain: on SIGTERM wait up "
                            "to SEC for in-flight requests before "
                            "closing (default 10)")
    serve.add_argument("--breaker-threshold", type=int, default=5,
                       metavar="N",
                       help="worker-crash failures within "
                            "--breaker-window that flip /readyz to 503 "
                            "(default 5)")
    serve.add_argument("--breaker-window", type=float, default=30.0,
                       metavar="SEC",
                       help="rolling window of the readiness circuit "
                            "breaker (default 30)")
    serve.add_argument("--breaker-cooldown", type=float, default=10.0,
                       metavar="SEC",
                       help="seconds an open breaker waits before "
                            "half-opening (default 10)")
    serve.add_argument("--access-log", metavar="PATH", default=None,
                       help="append structured repro-log-v1 JSONL "
                            "records (access log + warnings) to PATH")
    serve.add_argument("--trace-jsonl", metavar="PATH", default=None,
                       help="record per-request span trees (request, "
                            "admission, cache, worker spans joined by "
                            "request id) to a repro-spans-v1 file; "
                            "convert with 'repro trace-export'")
    serve.add_argument("--selftest", action="store_true",
                       help="start a daemon on an ephemeral port, "
                            "exercise every endpoint (cache hits, "
                            "byte-identical repeats, latency ratio, "
                            "error mapping, load shedding, deadlines), "
                            "and exit")
    serve.add_argument("--selftest-timeout", type=float, default=120.0,
                       metavar="SEC",
                       help="per-round-trip client timeout of the "
                            "selftest (default 120)")

    serve_store = sub.add_parser(
        "serve-store",
        help="audit an on-disk serve result store",
        description=(
            "Offline maintenance of a 'repro serve --store' directory. "
            "'verify' digest-checks every entry against its "
            "repro-store/1 header (corrupt entries are quarantined "
            "unless --no-repair); 'gc' deletes quarantined entries and "
            "stray temp files; 'stats' reports entry/byte counts.  All "
            "three are safe against a live daemon: entries are only "
            "ever replaced atomically."
        ),
    )
    serve_store.add_argument("action", choices=("verify", "gc", "stats"),
                             help="what to do with the store")
    serve_store.add_argument("store", metavar="DIR",
                             help="the store root directory ('--store' "
                                  "of the daemon)")
    serve_store.add_argument("--no-repair", action="store_true",
                             help="verify only reports corruption "
                                  "instead of quarantining it")
    serve_store.add_argument("--json", action="store_true",
                             help="emit the summary as JSON on stdout")

    export = sub.add_parser(
        "trace-export",
        help="convert spans / events / traces to Perfetto JSON",
        description=(
            "Converts a repro-spans-v1 span stream to the Chrome "
            "trace-event format (open the output in Perfetto or "
            "chrome://tracing).  An obs event stream or a trace archive "
            "is accepted too: their rounds have no recorded wall time, "
            "so they are laid out on a synthetic timeline (one fixed "
            "slot per round) that still shows class transitions, "
            "crashes and movement at a glance.  Multiple inputs merge "
            "into one timeline, each on its own track group — e.g. a "
            "serve daemon's request spans next to a worker's run spans, "
            "joined by the request id in the span args."
        ),
    )
    export.add_argument("inputs", nargs="+", metavar="INPUT",
                        help="repro-spans-v1 JSONL, repro-obs-v1 JSONL, or "
                             "repro-trace-v2 trace JSON (repeatable; "
                             "merged onto one timeline)")
    export.add_argument("--output", "-o", metavar="PATH", default=None,
                        help="output path (default: first INPUT with a "
                             ".perfetto.json suffix)")
    export.add_argument("--pid", type=int, default=0,
                        help="process id label of the first input's "
                             "track group; later inputs count up from "
                             "it (default 0)")

    stats = sub.add_parser(
        "stats",
        help="summarize a trace JSON or an obs JSONL event stream",
        description=(
            "Reads either an archived repro-trace-v2 trace (events are "
            "derived from its records) or a repro-obs-v1 JSONL event "
            "stream, and prints per-class round counts, crash/move "
            "totals and the spread trajectory as tables."
        ),
    )
    stats.add_argument("input", help="trace JSON or obs JSONL path")

    prof = sub.add_parser(
        "profile",
        help="run one scenario instrumented and print profile tables",
        description=(
            "Runs the scenario with the observability layer enabled and "
            "prints per-kernel call counts and wall time, per-class "
            "round counts, and Weber solver statistics."
        ),
    )
    prof.add_argument("--workload", default="random", choices=sorted(CLASS_GENERATORS))
    prof.add_argument("--n", type=int, default=8)
    prof.add_argument("--algorithm", default="wait-free-gather", choices=sorted(ALGORITHMS))
    prof.add_argument("--scheduler", default="random",
                      choices=_SCHEDULER_CHOICES)
    prof.add_argument("--crashes", default="random",
                      choices=["none", "random", "after-move", "elected"])
    prof.add_argument("--f", type=int, default=0)
    prof.add_argument("--movement", default="random-stop",
                      choices=_MOVEMENT_CHOICES)
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument("--max-rounds", type=int, default=20_000)
    prof.add_argument("--engine", default="atom", choices=["atom", "async"])
    _add_visibility_flag(prof)
    prof.add_argument("--backend", default="auto",
                      choices=["auto", "python", "numpy"],
                      help="kernel backend to profile on (auto: numpy when "
                           "available — the python backend bypasses the "
                           "kernels entirely, leaving the kernel table empty)")
    prof.add_argument("--obs-jsonl", metavar="PATH", default=None,
                      help="also write the round-event stream to PATH")
    prof.add_argument("--spans-jsonl", metavar="PATH", default=None,
                      help="also write the span trace as repro-spans-v1 "
                           "JSONL to PATH")
    return parser


def _scenario_meta(scenario: Scenario, seed: int, engine_seed: int) -> dict:
    """The trace-v2 meta dict an obs JSONL header carries for joining."""
    return TraceMeta.for_run(
        scenario=scenario.to_dict(),
        seed=seed,
        engine_seed=engine_seed,
        tol=DEFAULT_TOLERANCE,
        engine=scenario.engine,
    ).to_dict()


def _obs_summary_tables(snapshot: dict) -> List[Table]:
    """Metrics snapshot -> the tables ``stats``/``profile``/``--obs`` print."""
    tables: List[Table] = []

    classes = Table(
        "obs-classes", "rounds per configuration class", ["class", "rounds"]
    )
    counters = snapshot.get("counters", {})
    for name in sorted(counters):
        if name.startswith("rounds.class."):
            classes.add_row(name.rsplit(".", 1)[-1], counters[name])
    if classes.rows:
        tables.append(classes)

    kernel_rows = snapshot.get("kernels", [])
    kernel_table = Table(
        "obs-kernels",
        "per-kernel call counts and wall time",
        ["kernel", "backend", "calls", "total_ms", "mean_us"],
    )
    for row in kernel_rows:
        kernel_table.add_row(
            row["kernel"],
            row["backend"],
            row["calls"],
            row["total_s"] * 1e3,
            row["mean_s"] * 1e6,
        )
    if kernel_table.rows:
        tables.append(kernel_table)

    stats_table = Table(
        "obs-stats",
        "observed value aggregates",
        ["stat", "count", "mean", "min", "max"],
    )
    for name in sorted(snapshot.get("stats", {})):
        stat = snapshot["stats"][name]
        stats_table.add_row(
            name, stat["count"], stat["mean"], stat["min"], stat["max"]
        )
    if stats_table.rows:
        tables.append(stats_table)

    other = Table("obs-counters", "counters", ["counter", "value"])
    for name in sorted(counters):
        if not name.startswith("rounds.class."):
            other.add_row(name, counters[name])
    if other.rows:
        tables.append(other)
    return tables


def _cmd_simulate(args: argparse.Namespace) -> int:
    from . import obs

    # Route through the scenario machinery so a saved trace carries the
    # full meta block and `repro check --replay` accepts it.  The raw
    # user seed is passed as the engine seed (historical behaviour);
    # the meta block records both, so replay is still exact.
    scenario = Scenario(
        workload=args.workload,
        n=args.n,
        algorithm=args.algorithm,
        scheduler=args.scheduler,
        crashes=args.crashes,
        f=args.f,
        movement=args.movement,
        max_rounds=args.max_rounds,
        engine=args.engine,
        visibility=args.visibility,
    )
    want_obs = args.obs or bool(args.obs_jsonl) or bool(args.spans_jsonl)
    if want_obs:
        obs.metrics.reset()
        with obs.observability(
            jsonl=args.obs_jsonl,
            spans_jsonl=args.spans_jsonl,
            meta=_scenario_meta(scenario, args.seed, args.seed)
            if args.obs_jsonl or args.spans_jsonl
            else None,
        ):
            result = run_scenario(
                scenario,
                args.seed,
                engine_seed=args.seed,
                record_trace=args.trace or bool(args.save_trace),
            )
    else:
        result = run_scenario(
            scenario,
            args.seed,
            engine_seed=args.seed,
            record_trace=args.trace or bool(args.save_trace),
        )
    print(f"workload   : {args.workload} (n={args.n}, seed={args.seed})")
    print(f"engine     : {args.engine}")
    print(f"algorithm  : {args.algorithm}")
    print(f"initial    : {result.initial_class}")
    print(f"verdict    : {result.verdict}")
    print(f"rounds     : {result.rounds}")
    print(f"crashed    : {len(result.crashed_ids)} {list(result.crashed_ids)}")
    print(f"classes    : {' -> '.join(str(c) for c in result.classes_seen)}")
    if result.gathering_point is not None:
        gp = result.gathering_point
        print(f"gathered at: ({gp.x:.6f}, {gp.y:.6f})")
    if args.trace and result.trace is not None:
        print()
        print(result.trace.render())
    if args.save_trace and result.trace is not None:
        from .sim.replay import save_trace

        save_trace(result.trace, args.save_trace)
        print(f"trace saved to {args.save_trace}")
    if want_obs:
        print()
        for table in _obs_summary_tables(obs.metrics.snapshot()):
            print(table.render())
            print()
        if args.obs_jsonl:
            print(f"event stream saved to {args.obs_jsonl}")
        if args.spans_jsonl:
            print(f"span trace saved to {args.spans_jsonl}")
    return 0 if result.gathered or result.verdict == "impossible" else 1


def _cmd_classify(args: argparse.Namespace) -> int:
    points = generate(args.workload, args.n, args.seed)
    config = Configuration(points)
    cls = classify(config)
    print(f"points : {[p.as_tuple() for p in config.points]}")
    print(f"class  : {cls} ({cls.name})")
    print(f"sym    : {symmetry(config)}")
    qr = quasi_regularity(config)
    if qr.is_quasi_regular:
        print(f"qreg   : {qr.m} (center = ({qr.center.x:.6f}, {qr.center.y:.6f}))")
    else:
        print("qreg   : 1 (not quasi-regular)")
    safes = safe_points(config)
    print(f"safe   : {len(safes)} of {len(config.support)} occupied positions")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.archive_failures:
        # run_batch reads the environment variable, which also reaches
        # worker processes and any experiment code that calls it without
        # threading the CLI flag through.
        os.environ["REPRO_ARCHIVE_DIR"] = args.archive_failures
    if args.obs:
        from . import obs

        # enable() exports REPRO_OBS=1, so pool workers (spawned after
        # this point) come up instrumented; their registries are
        # process-local, the parent prints its own view afterwards.
        obs.metrics.reset()
        obs.enable()
    ids = sorted(EXPERIMENTS) if args.id == "all" else [args.id]
    for experiment_id in ids:
        _, description = EXPERIMENTS[experiment_id]
        start = time.perf_counter()
        tables = run_experiment(
            experiment_id, quick=not args.full, workers=args.workers
        )
        elapsed = time.perf_counter() - start
        print(f"## {experiment_id.upper()}: {description}  ({elapsed:.1f}s)")
        print()
        for table in tables:
            print(table.to_csv() if args.csv else table.render())
            print()
    if args.obs:
        from . import obs

        for table in _obs_summary_tables(obs.metrics.snapshot()):
            print(table.render())
            print()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import (
        QUICK_SIZES,
        check_regressions,
        load_history,
        run_bench,
        write_bench,
    )

    if args.repeats < 1:
        print("error: --repeats must be >= 1", file=sys.stderr)
        return 2
    sizes = args.sizes if args.sizes else (QUICK_SIZES if args.quick else None)
    # The baseline is read *before* this run is appended, so the gate
    # never compares a run against itself.
    history = (
        load_history(args.output)
        if args.check and os.path.exists(args.output)
        else None
    )
    document = run_bench(
        sizes=sizes,
        repeats=args.repeats,
        progress=lambda message: print(f"  {message}", flush=True),
    )
    write_bench(document, args.output)
    print(f"wrote {args.output}")
    for entry in document["speedups"]:
        if entry.get("metric") == "batch_round_throughput":
            print(
                f"n={entry['n']}: scalar numpy "
                f"{entry['scalar_numpy_s']:.3f}s vs batched "
                f"{entry['batched_per_seed_s']:.3f}s per seed-round "
                f"-> {entry['speedup']:.1f}x"
            )
        else:
            print(
                f"n={entry['n']}: python {entry['python_s']:.3f}s vs "
                f"numpy {entry['numpy_s']:.3f}s per round "
                f"-> {entry['speedup']:.1f}x"
            )
    if args.check:
        if history is None:
            print(
                "bench check: no prior history to compare against; "
                "this run becomes the baseline"
            )
            return 0
        regressions = check_regressions(
            history,
            document,
            threshold=args.threshold,
            window=args.window,
        )
        if regressions:
            for reg in regressions:
                print(
                    f"bench REGRESSION: {reg['metric']} {reg['key']}: "
                    f"{reg['current_s']:.6f}s vs median "
                    f"{reg['baseline_s']:.6f}s over last "
                    f"{reg['window']} run(s) "
                    f"({reg['ratio']:.2f}x, threshold "
                    f"{1.0 + args.threshold:.2f}x)",
                    file=sys.stderr,
                )
            print(
                f"bench check FAILED: {len(regressions)} regression(s)",
                file=sys.stderr,
            )
            return 1
        print(
            f"bench check ok (no benchmark slowed more than "
            f"{args.threshold:.0%} over the median of the last "
            f"{args.window} run(s))"
        )
    return 0


def _cmd_hunt(args: argparse.Namespace) -> int:
    from .analysis import BivalentHunt

    hunt = BivalentHunt(
        ALGORITHMS[args.algorithm](),
        generate(args.workload, args.n, args.seed),
        seed=args.seed,
    )
    result = hunt.run(max_rounds=args.rounds)
    print(f"algorithm : {args.algorithm}")
    print(f"workload  : {args.workload} (n={args.n}, seed={args.seed})")
    print(f"reached B : {result.reached_bivalent}")
    print(f"min score : {result.best_score}  (0 = bivalent)")
    print(f"final     : {result.final_class} after {result.rounds} rounds")
    trace = ", ".join(str(s) for s in result.score_trace[:30])
    print(f"score trace: {trace}")
    # Reaching B against the paper's algorithm would falsify the paper.
    if args.algorithm == "wait-free-gather" and result.reached_bivalent:
        print("!!! bivalent reached against wait-free-gather — file a bug")
        return 1
    return 0


def _check_backends(choice: str, recorded: str) -> List[str]:
    if choice == "recorded":
        return [recorded]
    if choice == "both":
        return ["python", "numpy"]
    return [choice]


def _cmd_check(args: argparse.Namespace) -> int:
    from .analysis import InvariantViolation, verify_trace
    from .sim.replay import (
        differential_check,
        load_trace,
        replay_trace,
        save_trace,
    )

    # Internal recorder mode: called in a subprocess by the differential
    # checker so each backend is resolved from a clean import.
    if args.emit_trace:
        if not args.out:
            print("error: --emit-trace requires --out", file=sys.stderr)
            return 2
        with open(args.emit_trace, "r", encoding="utf-8") as handle:
            scenario = Scenario.from_dict(json.load(handle))
        result = run_scenario(scenario, args.seed, record_trace=True)
        save_trace(result.trace, args.out)
        print(f"recorded {len(result.trace)} rounds -> {args.out}")
        return 0

    replay_paths = list(args.replay)
    if args.corpus:
        corpus = sorted(
            path
            for path in glob.glob(os.path.join(args.corpus, "*.json"))
            if not path.endswith(".scenario.json")
        )
        if not corpus:
            print(f"error: no traces in corpus {args.corpus!r}", file=sys.stderr)
            return 2
        replay_paths.extend(corpus)

    invariant_paths = list(args.invariants)
    if args.corpus:
        # Corpus traces get the full treatment: replay AND invariants.
        invariant_paths.extend(p for p in replay_paths if p not in invariant_paths)

    if not (replay_paths or invariant_paths or args.diff):
        print(
            "error: nothing to do — pass --replay, --invariants, "
            "--corpus and/or --diff",
            file=sys.stderr,
        )
        return 2

    failures = 0

    for path in replay_paths:
        trace = load_trace(path)
        recorded = trace.meta.backend if trace.meta else "python"
        for backend in _check_backends(args.backend, recorded):
            report = replay_trace(trace, backend=backend, path=path)
            print(f"{path}: {report.describe()}")
            failures += 0 if report.ok else 1

    for path in invariant_paths:
        trace = load_trace(path)
        if trace.meta is not None and trace.meta.engine == "async":
            # The invariant suite encodes the ATOM class-transition
            # lemmas; ASYNC interleavings legitimately violate them.
            # Replay (bit-identity) above still covers these traces.
            print(f"{path}: invariants skipped (async-engine trace)")
            continue
        try:
            monitor = verify_trace(trace)
        except InvariantViolation as exc:
            print(f"{path}: invariant VIOLATION: {exc}")
            failures += 1
        else:
            print(
                f"{path}: invariants ok "
                f"({monitor.rounds_checked} rounds checked)"
            )

    if args.diff:
        scenario = Scenario(
            workload=args.workload,
            n=args.n,
            algorithm=args.algorithm,
            scheduler=args.scheduler,
            crashes=args.crashes,
            f=args.f,
            movement=args.movement,
            max_rounds=args.max_rounds,
            visibility=args.visibility,
        )
        for seed in args.seeds:
            report = differential_check(scenario, seed)
            print(report.describe())
            failures += 0 if report.ok else 1

    if failures:
        print(f"check FAILED: {failures} problem(s)", file=sys.stderr)
        return 1
    print("check ok")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments.runner import run_batch

    if args.resume and not args.journal:
        print("error: --resume requires --journal", file=sys.stderr)
        return 2
    if args.journal and os.path.exists(args.journal) and not args.resume:
        print(
            f"error: journal {args.journal!r} already exists; pass "
            "--resume to continue it, or remove it to start fresh",
            file=sys.stderr,
        )
        return 2

    scenario = Scenario(
        workload=args.workload,
        n=args.n,
        algorithm=args.algorithm,
        scheduler=args.scheduler,
        crashes=args.crashes,
        f=args.f,
        movement=args.movement,
        max_rounds=args.max_rounds,
        engine=args.engine,
        visibility=args.visibility,
    )
    seeds = list(range(args.seed_start, args.seed_start + args.seeds))
    resumed = 0
    if args.resume and os.path.exists(args.journal):
        # Validates the journal header against this sweep's scenario, so
        # a --resume onto the wrong journal fails here, before any work.
        resumed = len(SweepJournal.peek(args.journal, scenario.to_dict()))
    policy = RunPolicy(
        timeout=args.timeout, retries=args.retries, backoff=args.backoff
    )

    want_obs = args.obs or args.live or bool(args.metrics)
    aggregator = dashboard = None
    metrics_path = None
    on_seed = on_failure = None
    if want_obs:
        from . import obs

        # enable() exports REPRO_OBS=1, so pool workers (spawned below)
        # come up instrumented and attach per-seed payloads to results.
        obs.metrics.reset()
        obs.enable()
        aggregator = obs.Aggregator(total_seeds=len(seeds))
        dashboard = obs.SweepDashboard(
            aggregator, live=True if args.live else None
        )
        metrics_dir = (
            os.path.dirname(args.journal) or "." if args.journal else "."
        )
        metrics_path = args.metrics or os.path.join(
            metrics_dir, "sweep-metrics.json"
        )

        def on_seed(seed: int, result) -> None:
            aggregator.seed_done(seed, result)
            dashboard.update()

        def on_failure(key: str, exc: BaseException, strike: bool) -> None:
            aggregator.failure(key, exc, strike)
            dashboard.update()

    print(f"sweep      : {scenario.label()}")
    print(f"seeds      : {seeds[0]}..{seeds[-1]} ({len(seeds)} seeds)")
    if args.journal:
        print(f"journal    : {args.journal}")
    if resumed:
        print(f"resumed    : {resumed} seed(s) already journaled, skipped")
    start = time.perf_counter()
    try:
        results = run_batch(
            scenario,
            seeds,
            workers=args.workers,
            archive_dir=args.archive_failures,
            policy=policy,
            journal_path=args.journal,
            resume=args.resume,
            batch_size=args.batch_size,
            on_seed_result=on_seed,
            on_failure=on_failure,
        )
    finally:
        # Whatever aggregated before a crash/interrupt is still worth
        # persisting — the dashboard's partial view and the atomic
        # metrics file both survive an aborted sweep.
        if want_obs and aggregator.done:
            dashboard.finish()
            from .obs import write_sweep_metrics

            write_sweep_metrics(aggregator, metrics_path)
    elapsed = time.perf_counter() - start
    if want_obs:
        print(f"metrics    : {metrics_path}")
        print()

    table = Table(
        "sweep",
        f"{scenario.label()} ({elapsed:.1f}s)",
        ["seed", "verdict", "rounds", "crashed", "classes"],
    )
    for seed, result in zip(seeds, results):
        table.add_row(
            seed,
            result.verdict,
            result.rounds,
            len(result.crashed_ids),
            " -> ".join(str(c) for c in result.classes_seen),
        )
    print()
    print(table.render())
    ok = sum(
        1 for r in results if r.gathered or r.verdict == "impossible"
    )
    print()
    print(f"{ok}/{len(results)} seed(s) gathered or provably impossible")
    return 0 if ok == len(results) else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .serve import ReproServer, run_selftest

    policy = RunPolicy(timeout=args.timeout, retries=args.retries)
    if args.selftest:
        return run_selftest(
            workers=args.workers,
            store_root=args.store,
            request_timeout=args.selftest_timeout,
        )

    server = ReproServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        store_root=args.store,
        cache_enabled=not args.no_cache,
        memory_entries=args.memory_entries,
        policy=policy,
        max_inflight=args.max_inflight,
        sweep_weight=args.sweep_weight,
        request_deadline=args.request_deadline,
        drain_timeout=args.drain_timeout,
        breaker_threshold=args.breaker_threshold,
        breaker_window=args.breaker_window,
        breaker_cooldown=args.breaker_cooldown,
        access_log=args.access_log,
        trace_jsonl=args.trace_jsonl,
    )
    # serve_forever runs on a worker thread so the main thread stays
    # free to receive signals: calling httpd.shutdown() from a signal
    # handler inside the serving thread would deadlock (it blocks until
    # the serve loop — the interrupted frame itself — exits).
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    print(
        f"repro serve listening on http://{server.host}:{server.port}",
        flush=True,
    )
    print(
        "  endpoints: POST /run  POST /sweep  GET /healthz  GET /readyz  "
        "GET /metrics",
        flush=True,
    )
    if args.store:
        print(f"  store    : {args.store}", flush=True)
    if args.no_cache:
        print("  cache    : DISABLED (--no-cache)", flush=True)
    if args.max_inflight is not None:
        print(
            f"  admission: {args.max_inflight} in-flight unit(s) "
            f"(sweep weight {args.sweep_weight})",
            flush=True,
        )
    if args.request_deadline is not None:
        print(f"  deadline : {args.request_deadline}s per request", flush=True)
    if args.access_log:
        print(f"  accesslog: {args.access_log}", flush=True)
    if args.trace_jsonl:
        print(f"  spans    : {args.trace_jsonl}", flush=True)
    try:
        stop.wait()
    finally:
        print("shutting down (draining in-flight requests)", flush=True)
        server.close()
        thread.join(timeout=10)
    return 0


def _cmd_serve_store(args: argparse.Namespace) -> int:
    import json as _json

    from .serve import ResultStore

    store = ResultStore(args.store)
    if args.action == "verify":
        report = store.verify_disk(repair=not args.no_repair)
        if args.json:
            print(_json.dumps(report, sort_keys=True))
        else:
            print(
                f"{report['root']}: {report['checked']} checked, "
                f"{report['ok']} ok, {report['legacy']} legacy, "
                f"{report['corrupt']} corrupt "
                f"({report['quarantined']} quarantined), "
                f"{report['unreadable']} unreadable"
            )
            for key in report["corrupt_keys"]:
                print(f"  corrupt: {key}")
        # Corruption that was repaired (quarantined) is a healthy
        # outcome; unrepaired corruption and unreadable entries are
        # what an operator must go look at.
        bad = report["unreadable"] + (
            report["corrupt"] if args.no_repair else 0
        )
        return 1 if bad else 0
    if args.action == "gc":
        report = store.gc_disk()
        if args.json:
            print(_json.dumps(report, sort_keys=True))
        else:
            print(
                f"{report['root']}: removed {report['removed']} file(s), "
                f"freed {report['freed_bytes']} byte(s)"
            )
        return 0
    report = store.disk_stats()
    if args.json:
        print(_json.dumps(report, sort_keys=True))
    else:
        print(
            f"{report['root']}: {report['entries']} entr(ies), "
            f"{report['total_bytes']} byte(s), "
            f"{report['quarantined']} quarantined"
        )
    return 0


def _cmd_log_stats(path: str, meta: dict, records: List[dict]) -> int:
    """``repro stats`` on a ``repro-log-v1`` file: level/event counts
    and the warn-once keys that fired."""
    from .obs import summarize_log

    summary = summarize_log(records)
    print(f"{path}: structured log, {len(records)} records")
    if meta:
        source = meta.get("source")
        if source:
            print(f"meta       : source={source} "
                  f"version={meta.get('version')}")
    print()
    levels = Table(
        "log-levels", "records per level", ["level", "records"]
    )
    for name in ("debug", "info", "warning", "error"):
        if name in summary["levels"]:
            levels.add_row(name, summary["levels"][name])
    for name in sorted(summary["levels"]):
        if name not in ("debug", "info", "warning", "error"):
            levels.add_row(name, summary["levels"][name])
    print(levels.render())
    print()
    events_table = Table(
        "log-events", "records per event", ["event", "records"]
    )
    ranked = sorted(
        summary["events"].items(), key=lambda kv: (-kv[1], kv[0])
    )
    for name, count in ranked:
        events_table.add_row(name, count)
    print(events_table.render())
    if summary["warn_once"]:
        print()
        warn_table = Table(
            "log-warn-once",
            "warn-once keys that fired",
            ["key", "records"],
        )
        for name, count in sorted(
            summary["warn_once"].items(), key=lambda kv: (-kv[1], kv[0])
        ):
            warn_table.add_row(name, count)
        print(warn_table.render())
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .obs import RoundEvent, read_events, read_log, read_spans

    # A repro-log-v1 structured log gets its own summary (levels,
    # events, warn-once keys) — it carries no round events.
    try:
        log_meta, log_records = read_log(args.input)
    except (ValueError, OSError):
        pass
    else:
        return _cmd_log_stats(args.input, log_meta, log_records)

    # An obs JSONL stream identifies itself by its header line; anything
    # else must parse as a trace archive, whose records the same events
    # are derived from.
    try:
        meta, events, run_ends = read_events(args.input)
        source = "obs event stream"
    except TraceFormatError:
        # A real obs stream with a corrupted payload: report it as such
        # rather than re-parsing the file as a trace archive and blaming
        # the wrong format.
        raise
    except ValueError:
        try:
            _, spans = read_spans(args.input)
        except TraceFormatError:
            # A real spans stream with a corrupted line: blame the
            # spans format, not the trace parse that would follow.
            raise
        except ValueError:
            pass
        else:
            # A valid spans file handed to the wrong command: one
            # structured line pointing at the right one, not a trace-
            # parse failure blaming the wrong format.
            raise TraceFormatError(
                f"{args.input}: is a repro-spans-v1 span stream "
                f"({len(spans)} spans), which carries no round events; "
                f"convert it with 'repro trace-export' instead",
                path=args.input,
            )
        from .sim.replay import load_trace

        trace = load_trace(args.input)
        engine = trace.meta.engine if trace.meta else "atom"
        events = [
            RoundEvent.from_record(record, engine=engine)
            for record in trace.records
        ]
        meta = trace.meta.to_dict() if trace.meta else None
        run_ends = []
        source = "trace archive"

    print(f"{args.input}: {source}, {len(events)} round events")
    if meta:
        scenario = meta.get("scenario") or {}
        label = scenario.get("workload", "?")
        print(
            f"meta       : engine={meta.get('engine', 'atom')} "
            f"workload={label} n={scenario.get('n', '?')} "
            f"seed={meta.get('seed')} backend={meta.get('backend')}"
        )
    print()
    if not events:
        # A valid but empty stream: a run that was recorded with the
        # obs layer off, or that ended before its first round.  Say so
        # in one line instead of printing empty tables.
        print(
            "no round events recorded — the stream has a valid header "
            "but no events (obs-disabled run, or it ended before the "
            "first round)"
        )
        return 0

    classes = Table(
        "stats-classes",
        "rounds per configuration class",
        ["class", "rounds", "share"],
    )
    counts: dict = {}
    for event in events:
        counts[event.config_class] = counts.get(event.config_class, 0) + 1
    for name in sorted(counts):
        classes.add_row(name, counts[name], counts[name] / len(events))
    print(classes.render())
    print()

    summary = Table("stats-summary", "run summary", ["metric", "value"])
    summary.add_row("rounds", len(events))
    summary.add_row("crashes", sum(len(e.crashed) for e in events))
    summary.add_row("moves", sum(len(e.moved) for e in events))
    summary.add_row("spread first", events[0].spread)
    summary.add_row("spread last", events[-1].spread)
    summary.add_row("final support", events[-1].support)
    summary.add_row("final max multiplicity", events[-1].max_multiplicity)
    elections = [e for e in events if e.elected_target is not None]
    summary.add_row("rounds with elected target", len(elections))
    summary.add_row(
        "elected targets on safe points",
        sum(1 for e in elections if e.target_is_safe),
    )
    for run_end in run_ends:
        summary.add_row("verdict", str(run_end.get("verdict")))
    print(summary.render())
    return 0


def _synthetic_round_events(rows: List[dict], pid: int, label: str) -> List[dict]:
    """Round summaries -> Chrome trace events on a synthetic timeline.

    Event streams and trace archives carry no wall-clock timing, so
    each round gets one fixed 1 ms slot; what the export shows is the
    *structure* — class transitions, crashes, movement — not latency.
    """
    slot_us = 1000.0
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        }
    ]
    for i, row in enumerate(rows):
        events.append(
            {
                "name": f"round {row.get('round', i)} "
                        f"[{row.get('config_class', '?')}]",
                "cat": "round",
                "ph": "X",
                "ts": i * slot_us,
                "dur": slot_us,
                "pid": pid,
                "tid": 0,
                "args": row,
            }
        )
    return events


def _export_one_input(path: str, pid: int) -> Tuple[List[dict], str]:
    """One trace-export input -> (Chrome trace events, description).

    A spans file keeps its recorded wall-clock timeline; an obs event
    stream or trace archive gets the synthetic per-round layout.  The
    ``pid`` labels this input's track group, so multiple inputs merged
    into one file stay visually separate in Perfetto.
    """
    from .obs import chrome_trace_events, read_events, read_spans

    try:
        meta, spans = read_spans(path)
    except TraceFormatError:
        raise
    except ValueError:
        spans = None

    if spans is not None:
        label = os.path.basename(path)
        meta_block = meta or {}
        scenario = meta_block.get("scenario") or {}
        if scenario:
            label = (
                f"{scenario.get('workload', '?')} n={scenario.get('n', '?')} "
                f"seed={meta_block.get('seed')}"
            )
        elif meta_block.get("source"):
            label = str(meta_block["source"])
        events = chrome_trace_events(spans, pid=pid, process_name=label)
        return events, f"span stream ({len(spans)} spans)"

    # Not a spans file: an obs event stream or a trace archive, both
    # exported on the synthetic per-round timeline.
    try:
        _, round_events, _ = read_events(path)
        rows = [
            {
                "round": e.round_index,
                "config_class": e.config_class,
                "moved": len(e.moved),
                "crashed": len(e.crashed),
                "support": e.support,
                "spread": e.spread,
            }
            for e in round_events
        ]
        kind = f"obs event stream ({len(rows)} rounds)"
    except TraceFormatError:
        raise
    except ValueError:
        from .sim.replay import load_trace

        trace = load_trace(path)
        rows = [
            {
                "round": record.round_index,
                "config_class": record.config_class.value,
                "moved": len(record.moved),
                "crashed": len(record.crashed_now),
                "active": len(record.active),
            }
            for record in trace.records
        ]
        kind = f"trace archive ({len(rows)} rounds)"
    return _synthetic_round_events(rows, pid, os.path.basename(path)), kind


def _cmd_trace_export(args: argparse.Namespace) -> int:
    from .resilience import atomic_write

    output = args.output or (
        os.path.splitext(args.inputs[0])[0] + ".perfetto.json"
    )

    events: List[dict] = []
    for i, path in enumerate(args.inputs):
        input_events, kind = _export_one_input(path, args.pid + i)
        events.extend(input_events)
        print(f"{path}: {kind}")

    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    atomic_write(output, json.dumps(document) + "\n")
    print(f"wrote {len(events)} trace events -> {output}")
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from . import obs

    scenario = Scenario(
        workload=args.workload,
        n=args.n,
        algorithm=args.algorithm,
        scheduler=args.scheduler,
        crashes=args.crashes,
        f=args.f,
        movement=args.movement,
        max_rounds=args.max_rounds,
        engine=args.engine,
        visibility=args.visibility,
    )
    backend = args.backend
    if backend == "auto":
        backend = (
            "numpy"
            if "numpy" in kernels.available_backends()
            else "python"
        )
    obs.metrics.reset()
    engine_seed = scenario.engine_seed(args.seed)
    with kernels.backend(backend):
        with obs.observability(
            jsonl=args.obs_jsonl,
            spans_jsonl=args.spans_jsonl,
            meta=_scenario_meta(scenario, args.seed, engine_seed)
            if args.obs_jsonl or args.spans_jsonl
            else None,
        ):
            start = time.perf_counter()
            result = run_scenario(scenario, args.seed)
            elapsed = time.perf_counter() - start
    print(
        f"profile    : {scenario.label()} seed={args.seed} "
        f"backend={backend}"
    )
    print(f"verdict    : {result.verdict} in {result.rounds} rounds "
          f"({elapsed:.3f}s wall)")
    print()
    for table in _obs_summary_tables(obs.metrics.snapshot()):
        print(table.render())
        print()
    if args.obs_jsonl:
        print(f"event stream saved to {args.obs_jsonl}")
    if args.spans_jsonl:
        print(f"span trace saved to {args.spans_jsonl}")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from .core import Configuration
    from .viz import render_configuration, render_trace

    points = generate(args.workload, args.n, args.seed)
    if args.snapshot:
        svg = render_configuration(
            Configuration(points), caption=f"{args.workload} n={args.n}"
        )
        verdict = "snapshot"
    else:
        sim = Simulation(
            ALGORITHMS[args.algorithm](),
            points,
            scheduler=make_scheduler(args.scheduler),
            crash_adversary=make_crashes(args.crashes, args.f),
            seed=args.seed,
            record_trace=True,
            max_rounds=20_000,
        )
        result = sim.run()
        svg = render_trace(result.trace, result)
        verdict = f"{result.verdict} in {result.rounds} rounds"
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(svg)
    print(f"wrote {args.output} ({verdict})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "classify":
            return _cmd_classify(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "hunt":
            return _cmd_hunt(args)
        if args.command == "check":
            return _cmd_check(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "serve-store":
            return _cmd_serve_store(args)
        if args.command == "stats":
            return _cmd_stats(args)
        if args.command == "trace-export":
            return _cmd_trace_export(args)
        if args.command == "profile":
            return _cmd_profile(args)
        if args.command == "render":
            return _cmd_render(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not our error.
        return 0
    except KeyboardInterrupt:
        # ResilientExecutor teardown has already cancelled queued work
        # and killed lingering workers by the time this propagates.
        print("interrupted", file=sys.stderr)
        return 130
    except ReproError as exc:
        # The structured taxonomy: corrupted inputs, exhausted retries,
        # timeouts.  One diagnostic line, a meaningful exit code, and
        # never a traceback for an operational failure.
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
