"""The five-way partition of configurations (Section IV).

Every configuration of ``n`` robots belongs to exactly one of:

* ``B``   — *bivalent*: two locations, ``n/2`` robots each.  Gathering is
  deterministically impossible from here (Lemma 5.2).
* ``M``   — *multiple*: a unique location of maximum multiplicity.
* ``L1W`` — *collinear* with a unique Weber point (single median).
* ``L2W`` — *collinear* with a non-degenerate interval of Weber points.
* ``QR``  — *quasi-regular* (and none of the above).
* ``A``   — *asymmetric* (and none of the above); here ``sym(C) = 1`` so
  every occupied position has a unique view and a leader can be elected.

The paper proves the classes are mutually disjoint and cover everything;
:func:`classify` realizes the partition by testing in the order above, and
the test suite checks the claimed exhaustiveness/disjointness properties
(including Lemma 4.1) on generated workloads.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..geometry import Point
from .configuration import Configuration
from .quasi_regularity import quasi_regularity
from .views import symmetry
from .weber_point import has_unique_linear_weber_point

__all__ = ["ConfigClass", "classify"]


class ConfigClass(enum.Enum):
    """The five classes of Section IV (collinear split into L1W/L2W)."""

    BIVALENT = "B"
    MULTIPLE = "M"
    LINEAR_UNIQUE_WEBER = "L1W"
    LINEAR_MANY_WEBER = "L2W"
    QUASI_REGULAR = "QR"
    ASYMMETRIC = "A"

    def __str__(self) -> str:  # compact rendering in traces and tables
        return self.value


def _is_bivalent(config: Configuration) -> bool:
    support = config.support
    if len(support) != 2:
        return False
    mults = [config.mult(p) for p in support]
    return mults[0] == mults[1]


def _has_unique_max_multiplicity(config: Configuration) -> bool:
    return len(config.max_multiplicity_points()) == 1


def classify(config: Configuration) -> ConfigClass:
    """Assign ``config`` to its class of the Section IV partition.

    The result is memoized on the configuration.  Note the test order
    mirrors the set definitions: each class explicitly excludes the
    previous ones, so the first match is the unique class.
    """

    def compute() -> ConfigClass:
        if _is_bivalent(config):
            return ConfigClass.BIVALENT
        if _has_unique_max_multiplicity(config):
            # Includes the gathered configuration (a single location).
            return ConfigClass.MULTIPLE
        if config.is_linear():
            if has_unique_linear_weber_point(config):
                return ConfigClass.LINEAR_UNIQUE_WEBER
            return ConfigClass.LINEAR_MANY_WEBER
        if quasi_regularity(config).is_quasi_regular:
            return ConfigClass.QUASI_REGULAR
        # Non-linear, no unique max multiplicity, not quasi-regular.
        # The paper shows such configurations are asymmetric; we assert
        # the claim in tests (every symmetric configuration is regular,
        # hence quasi-regular).
        return ConfigClass.ASYMMETRIC

    return config.memo("class", compute)


def is_gathering_possible(config: Configuration) -> bool:
    """Lemma 5.2 and Theorem 5.1 combined: solvable iff not bivalent."""
    return classify(config) is not ConfigClass.BIVALENT


__all__.append("is_gathering_possible")
