"""Quasi-regularity detection (Definitions 6–7, Lemmas 3.3–3.4, Thm 3.1).

A configuration ``C`` is *quasi-regular* with center ``c`` when a regular
configuration ``C'`` with center of regularity ``c`` can be obtained from
``C`` by relocating only robots that sit **at** ``c``.  Intuitively: the
robots stacked on the center are wildcards that may be dealt out onto
rays to complete the angular periodicity.

Detection, following the paper:

* For a non-linear ``C`` the only possible center is the Weber point
  (Lemma 3.3; see :mod:`repro.core.regularity` for why).  We obtain it
  exactly when occupied, or certified-numerically when not.
* If the center is **unoccupied** there are no wildcards, so ``C`` must
  already be regular around it: test ``per(SA(c)) > 1``.
* If the center is an occupied position ``p``, apply the combinatorial
  criterion of Lemma 3.4: group the occupied rays from ``p`` into orbits
  under rotation by ``2*pi/m``; every orbit has ``m`` angular slots and
  each slot must be topped up to the orbit's maximum robot count using
  robots taken from ``p``.  ``C`` is quasi-regular with period ``m`` iff

      mult(p) >= sum over slots (orbit_max - slot_count).

  (The source text of Definition 7 is OCR-damaged; DESIGN.md section 6
  documents this reconstruction, which matches Lemma 3.4's statement.)

``qreg(C)`` is reported as the largest ``m`` accepted by the criterion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..geometry import TWO_PI, Point, normalize_angle
from .configuration import Configuration
from .regularity import regularity
from .successor import (
    Ray,
    angular_resolution,
    periodicity,
    ray_structure,
    string_of_angles,
)
from .weber_point import numeric_weber_point

__all__ = [
    "QuasiRegularityResult",
    "quasi_regularity",
    "topping_deficiency",
    "satisfies_lemma_3_4",
]


@dataclass(frozen=True)
class QuasiRegularityResult:
    """Outcome of quasi-regularity detection.

    ``m == 1`` means *not quasi-regular* (then ``center is None``);
    otherwise ``m = qreg(C)`` and ``center = CQR(C)``, which for
    non-linear configurations is also the Weber point (Lemma 3.3).
    """

    m: int
    center: Optional[Point]

    @property
    def is_quasi_regular(self) -> bool:
        return self.m > 1


_NOT_QR = QuasiRegularityResult(1, None)


def _orbit_slots(
    rays: List[Ray], m: int, eps_angle: float
) -> List[List[int]]:
    """Robot counts per angular slot, grouped into rotation orbits.

    The rotation by ``2*pi/m`` partitions ray directions by their residue
    modulo ``w = 2*pi/m``.  Each residue class spans ``m`` slots (one per
    multiple of ``w``); occupied slots carry their ray's robot count and
    the remaining slots are empty (count 0).  Residues are clustered with
    the angular tolerance, including the wrap-around at ``0 / w``.
    """
    w = TWO_PI / m
    tagged: List[Tuple[float, int, int]] = []  # (residue, slot index, count)
    for ray in rays:
        residue = ray.angle % w
        slot = int(round((ray.angle - residue) / w)) % m
        tagged.append((residue, slot, ray.count))
    tagged.sort(key=lambda t: t[0])

    groups: List[List[Tuple[float, int, int]]] = [[tagged[0]]]
    for t in tagged[1:]:
        if t[0] - groups[-1][-1][0] <= eps_angle:
            groups[-1].append(t)
        else:
            groups.append([t])
    # Wrap-around: residue ~0 and residue ~w are the same direction class
    # (they differ by one slot rotation).
    if len(groups) > 1:
        first, last = groups[0], groups[-1]
        if (first[0][0] + w) - last[-1][0] <= eps_angle:
            # Members of `last` are one slot behind when folded onto the
            # residue of `first`.
            folded = [(r - w, (s + 1) % m, c) for (r, s, c) in last]
            groups[0] = folded + first
            groups.pop()

    orbits: List[List[int]] = []
    for group in groups:
        slots = [0] * m
        for _, slot, count in group:
            # Two rays can only share (residue class, slot) through the
            # angular clustering of near-identical directions; merge.
            slots[slot] += count
        orbits.append(slots)
    return orbits


def topping_deficiency(config: Configuration, p: Point, m: int) -> Optional[int]:
    """Robots needed at ``p`` to complete ``C`` to an ``m``-regular config.

    Returns ``None`` when completion is impossible regardless of
    multiplicity (no robots off the center), otherwise the total
    deficiency ``sum over slots (orbit_max - slot_count)`` of Lemma 3.4.
    """
    if m < 2:
        raise ValueError("regularity period must be at least 2")
    rays = ray_structure(config, p)
    if not rays:
        return None  # everyone at p: gathered, not a quasi-regular case
    orbits = _orbit_slots(rays, m, angular_resolution(config, p))
    deficiency = 0
    for slots in orbits:
        top = max(slots)
        deficiency += sum(top - s for s in slots)
    return deficiency


def satisfies_lemma_3_4(config: Configuration, p: Point, m: int) -> bool:
    """Lemma 3.4 criterion: is ``C`` quasi-regular with center ``p``, period ``m``?"""
    deficiency = topping_deficiency(config, p, m)
    if deficiency is None:
        return False
    return config.mult(p) >= deficiency


def quasi_regularity(config: Configuration) -> QuasiRegularityResult:
    """Compute ``qreg(C)`` and ``CQR(C)`` (Theorem 3.1's detector).

    Only sound/complete for non-linear configurations; linear and
    gathered configurations report ``m = 1`` by design (the Section IV
    classification never consults quasi-regularity for them).
    """

    def compute() -> QuasiRegularityResult:
        if config.is_gathered() or config.is_linear():
            return _NOT_QR
        center = numeric_weber_point(config)
        if center is None:
            return _NOT_QR
        occupied = config.locate(center)
        if occupied is None:
            # No wildcards available: C itself must be regular.
            reg = regularity(config)
            if reg.is_regular:
                return QuasiRegularityResult(reg.m, reg.center)
            return _NOT_QR
        # Occupied center: largest period accepted by Lemma 3.4.
        for m in range(config.n, 1, -1):
            if satisfies_lemma_3_4(config, occupied, m):
                return QuasiRegularityResult(m, occupied)
        return _NOT_QR

    return config.memo("quasi_regularity", compute)
