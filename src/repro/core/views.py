"""Views of robot positions and rotational symmetry (Definitions 2–3).

The *view* of an occupied position ``p`` is the whole configuration
re-expressed in a polar coordinate system that every robot can construct
locally: origin at ``p``, reference direction towards the center ``c`` of
the smallest enclosing circle of ``U(C)``, unit distance ``|p, c|``, and
angles measured **clockwise** (chirality).  Two positions are equivalent
(``~_r``) when their views are equal; the size of the largest equivalence
class is the configuration's rotational symmetry ``sym(C)``.

When ``p`` coincides with ``c`` the reference direction is taken towards
an occupied position maximizing its own view (the paper notes the
reference is then not unique, but the resulting view is — all maximizers
are rotationally equivalent).

Canonical form
--------------
A view is serialized as a sorted tuple of quantized ``(r, theta)`` pairs,
one per robot (multiplicities expanded, strong multiplicity detection).
Co-located robots appear as ``(0.0, 0.0)``.  The tuple ordering provides
the total order on views that the election rule of the algorithm needs;
tolerant equality is used when grouping views into equivalence classes so
that quantization boundaries cannot split a symmetric orbit.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from ..geometry import (
    TWO_PI,
    Point,
    Tolerance,
    clockwise_angle,
    kernels,
)
from .configuration import Configuration

__all__ = [
    "View",
    "view_of",
    "view_table",
    "equivalence_classes",
    "symmetry",
    "views_equal",
]

#: A canonical view: sorted tuple of quantized (r, theta) pairs.
View = Tuple[Tuple[float, float], ...]


def _polar_view(
    config: Configuration, origin: Point, reference: Point
) -> View:
    """Polar serialization of the whole multiset as seen from ``origin``.

    ``reference`` fixes both the zero direction and the unit distance
    (``|origin, reference| = 1``), per Definition 2.
    """
    tol = config.tol
    unit = origin.distance_to(reference)
    if unit <= tol.eps_dist:
        raise ValueError("view reference must be distinct from the origin")
    entries: List[Tuple[float, float]] = []
    for q in config.points:
        d = origin.distance_to(q)
        if d <= tol.eps_dist:
            entries.append((0.0, 0.0))
            continue
        theta = clockwise_angle(q, origin, reference)
        # Directions indistinguishable from the reference direction are
        # exactly zero so quantization cannot wrap them to ~2*pi.
        if tol.is_zero_angle(theta):
            theta = 0.0
        entries.append(
            (tol.quantize_length(d / unit), tol.quantize_angle(theta))
        )
    return tuple(sorted(entries))


def view_of(config: Configuration, p: Point) -> View:
    """The view ``V(p)`` of an occupied position ``p`` (Definition 2)."""
    table = view_table(config)
    located = config.locate(p)
    if located is None:
        raise ValueError(f"{p!r} is not an occupied position of {config!r}")
    return table[located]


def view_table(config: Configuration) -> Dict[Point, View]:
    """Views of all occupied positions, memoized per configuration."""
    return config.memo("views", lambda: _compute_view_table(config))


def _compute_view_table(config: Configuration) -> Dict[Point, View]:
    tol = config.tol
    support = config.support
    if len(support) == 1:
        # Gathered configuration: every robot sees only the origin.
        only = support[0]
        return {only: tuple(((0.0, 0.0),) * config.n)}

    c = config.sec_center()
    table: Dict[Point, View] = {}
    center_points: List[Point] = []
    outer: List[Point] = []
    for p in support:
        if p.close_to(c, tol):
            # With exact sensing at most one support point coincides
            # with the SEC center, but at coarse (sensor-limited)
            # resolutions several may fall inside the band.
            center_points.append(p)
        else:
            outer.append(p)
    if outer and kernels.enabled_for(config.n):
        # One batch kernel call serializes every non-central origin at
        # once; the scalar path below is the reference it must match.
        views = kernels.batch_polar_views(
            [(p.x, p.y) for p in outer],
            [(q.x, q.y) for q in config.points],
            (c.x, c.y),
            tol.eps_dist,
            tol.eps_angle,
        )
        table.update(zip(outer, views))
    else:
        for p in outer:
            table[p] = _polar_view(config, p, c)

    if center_points:
        # Reference for a central position: an occupied position with
        # maximal view.  All maximizers give the same view of the center
        # when the configuration is rotationally symmetric; for the
        # asymmetric case the maximizer is unique.
        best = max(table, key=table.get) if table else None
        for cp in center_points:
            ref = best
            if ref is None or cp.distance_to(ref) <= tol.eps_dist:
                # Degenerate blob: everything sits within resolution of
                # the center.  No direction is measurable from here;
                # the view collapses to "n robots at my own location",
                # which is the honest reading at this resolution.
                table[cp] = tuple(((0.0, 0.0),) * config.n)
                continue
            table[cp] = _polar_view(config, cp, ref)
    return table


def views_equal(a: View, b: View, tol: Tolerance) -> bool:
    """Tolerant equality of two canonical views.

    Views are sorted tuples of quantized pairs; two views of genuinely
    equivalent positions can still differ by one quantization step per
    coordinate, so equality is checked pairwise with a two-step band.
    Positional comparison after sorting is sound because a mismatch in
    sort order between nearly-equal multisets implies some pair differs
    by less than the band anyway.
    """
    if len(a) != len(b):
        return False
    band_r = 2.0 * tol.eps_dist
    band_t = 2.0 * tol.eps_angle
    for (ra, ta), (rb, tb) in zip(a, b):
        if abs(ra - rb) > band_r:
            return False
        dt = abs(ta - tb) % TWO_PI
        if min(dt, TWO_PI - dt) > band_t:
            return False
    return True


def equivalence_classes(config: Configuration) -> List[List[Point]]:
    """Partition of ``U(C)`` by view equality (the relation ``~_r``)."""

    def compute() -> List[List[Point]]:
        table = view_table(config)
        tol = config.tol
        classes: List[List[Point]] = []
        for p in config.support:
            for cls in classes:
                if views_equal(table[p], table[cls[0]], tol):
                    cls.append(p)
                    break
            else:
                classes.append([p])
        return classes

    return config.memo("view_classes", compute)


def symmetry(config: Configuration) -> int:
    """``sym(C)``: size of the largest ``~_r`` equivalence class (Def. 3)."""
    return max(len(cls) for cls in equivalence_classes(config))
