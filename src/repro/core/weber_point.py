"""Configuration-level Weber point computation.

The algorithm only ever *needs* the Weber point in the two cases where it
is exactly computable — quasi-regular configurations (Lemma 3.3) and
linear configurations with a unique median (Section III).  This module
provides those, plus the certified numerical Weber point used (a) to
locate unoccupied centers of regularity and (b) by the
``NumericalWeberGather`` baseline.

All results are memoized on the configuration (see
:meth:`repro.core.configuration.Configuration.memo`).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..geometry import (
    Point,
    WeberResult,
    geometric_median,
    linear_weber_interval,
    project_parameter,
)
from .configuration import Configuration

__all__ = [
    "numeric_weber_point",
    "linear_weber_points",
    "has_unique_linear_weber_point",
]


def numeric_weber_point(config: Configuration) -> Optional[Point]:
    """Certified Weber point of the multiset, or ``None`` if uncertified.

    For an *occupied* optimum the result is bitwise one of the support
    points (the solver checks input points first), which lets callers
    compare it against the support exactly.  Linear configurations with a
    median interval return the interval midpoint, which is a genuine
    Weber point though not the unique one; callers that must distinguish
    uniqueness use :func:`has_unique_linear_weber_point`.
    """

    def compute() -> Optional[Point]:
        result: WeberResult = geometric_median(config.points, config.tol)
        return result.point if result.certified else None

    return config.memo("weber_numeric", compute)


def linear_weber_points(config: Configuration) -> Tuple[Point, Point]:
    """Median interval ``[min(Med(C)), max(Med(C))]`` of a linear config.

    The configuration was judged linear by :meth:`Configuration.is_linear`
    (a tolerant predicate), so the robots may sag up to ``eps_dist`` off
    the common line.  We therefore *project* every robot onto the line
    spanned by the two most distant occupied positions and take the
    median interval of the projections — for an exactly-linear input
    this equals the textbook computation, and for an eps-sagged one it
    is the only self-consistent reading.
    """

    def compute() -> Tuple[Point, Point]:
        support = config.support
        anchor = support[0]
        far = max(support, key=anchor.distance_to)
        if far.close_to(anchor, config.tol):
            return anchor, anchor  # gathered: degenerate interval
        params = sorted(
            project_parameter(anchor, far, p) for p in config.points
        )
        n = len(params)
        direction = far - anchor
        low = anchor + direction * params[(n - 1) // 2]
        high = anchor + direction * params[n // 2]
        if high < low:
            low, high = high, low
        return low, high

    return config.memo("weber_linear", compute)


def has_unique_linear_weber_point(config: Configuration) -> bool:
    """True when a linear configuration has a single Weber point.

    This is the ``L1W`` vs ``L2W`` discriminator of Section IV.
    """
    lo, hi = linear_weber_points(config)
    return lo.close_to(hi, config.tol)
