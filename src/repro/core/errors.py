"""Exceptions raised by the core algorithm layer."""

from __future__ import annotations

__all__ = ["GatheringError", "BivalentConfigurationError", "NotAPositionError"]


class GatheringError(Exception):
    """Base class for all gathering-algorithm errors."""


class BivalentConfigurationError(GatheringError):
    """Raised when asked to gather from a bivalent configuration.

    Deterministic gathering from ``B`` is impossible (Lemma 5.2); the
    algorithm refuses rather than moving arbitrarily, and the simulation
    engine converts this into an ``impossible`` verdict.
    """


class NotAPositionError(GatheringError):
    """Raised when a robot's claimed position is not in the configuration."""
