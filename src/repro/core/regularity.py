"""Regularity of configurations (Definition 5).

A configuration is *regular* when the string of angles around some center
``c`` is periodic with period count ``m > 1``.  For a **non-linear**
configuration the center is forced: the angular period makes the multiset
of unit vectors towards the robots invariant under rotation by
``2*pi/m``, so their sum vanishes, so ``c`` satisfies the Weber
subgradient condition — and non-linear configurations have a unique Weber
point.  Detection therefore tests a single candidate, the (certified)
Weber point, instead of searching the plane.  This reasoning is the
engine behind Lemma 3.3 and is validated by the test suite.

Linear configurations can be angle-periodic around many points (two
opposite rays give the string ``(pi, pi)``); the classification of
Section IV never consults regularity for them, and :func:`regularity`
reports them as not regular by design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..geometry import Point
from .configuration import Configuration
from .successor import angular_resolution, periodicity, string_of_angles
from .weber_point import numeric_weber_point

__all__ = ["RegularityResult", "regularity"]


@dataclass(frozen=True)
class RegularityResult:
    """Outcome of regularity detection.

    ``m == 1`` means *not regular*; then ``center`` is ``None``.
    ``m > 1`` is the paper's ``reg(C)`` and ``center`` is ``CR(C)``.
    """

    m: int
    center: Optional[Point]

    @property
    def is_regular(self) -> bool:
        return self.m > 1


_NOT_REGULAR = RegularityResult(1, None)


def regularity(config: Configuration) -> RegularityResult:
    """Compute ``reg(C)`` and the center of regularity ``CR(C)``.

    Only meaningful (and only claimed sound/complete) for non-linear
    configurations; linear and gathered configurations report ``m = 1``.
    """

    def compute() -> RegularityResult:
        if config.is_gathered() or config.is_linear():
            return _NOT_REGULAR
        center = numeric_weber_point(config)
        if center is None:
            # The solver failed to certify — conservatively not regular.
            # (Never observed in practice; the fallback exists so the
            # classifier's partition stays total.)
            return _NOT_REGULAR
        sa = string_of_angles(config, center)
        band = 2.0 * angular_resolution(config, center)
        m = periodicity(sa, config.tol, band=band)
        if m <= 1:
            return _NOT_REGULAR
        return RegularityResult(m, center)

    return config.memo("regularity", compute)
