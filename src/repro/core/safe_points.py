"""Safe points (Definition 8) — bivalent-proof gathering targets.

A robot position ``p`` is *safe* when no half-line from ``p`` carries
``ceil(n/2)`` or more robots.  If everybody walks straight towards a safe
point, then even if the adversary stops an arbitrary subset mid-way, no
single location on any ray can ever accumulate half of the robots — so
the bivalent configuration ``B`` can never form.  The election rule for
asymmetric configurations only considers safe points for exactly this
reason (proof of Lemma 5.6, claim C1).

Counting detail: ``HF(p, q)`` excludes ``p`` itself, so robots co-located
with ``p`` never count against any ray; robots on a common ray count with
their multiplicities.
"""

from __future__ import annotations

import math
from typing import Dict, List

from ..geometry import Point, direction_angle, kernels, normalize_angle
from .configuration import Configuration
from .successor import MAX_ANGULAR_RESOLUTION, ray_structure

__all__ = ["max_ray_load", "is_safe_point", "safe_points", "all_max_ray_loads"]


def max_ray_load(config: Configuration, p: Point) -> int:
    """Largest number of robots on a single half-line from ``p``.

    Robots at ``p`` are excluded (the half-line excludes its origin).
    """
    rays = ray_structure(config, p)
    if not rays:
        return 0
    return max(ray.count for ray in rays)


def is_safe_point(config: Configuration, p: Point) -> bool:
    """Definition 8: every ray from ``p`` has at most ``ceil(n/2) - 1`` robots."""
    bound = math.ceil(config.n / 2) - 1
    return max_ray_load(config, p) <= bound


def all_max_ray_loads(config: Configuration) -> List[int]:
    """Max ray load of every support point, in support order (memoized).

    The scan over all occupied positions is the hot loop of safe-point
    detection; under the numpy backend one batch kernel call replaces
    the per-center :func:`~repro.core.successor.ray_structure` walks.
    """

    def compute() -> List[int]:
        tol = config.tol
        if kernels.enabled_for(len(config.support)):
            return kernels.max_ray_loads(
                [(p.x, p.y) for p in config.support],
                [config.mult(p) for p in config.support],
                tol.eps_dist,
                tol.eps_angle,
                MAX_ANGULAR_RESOLUTION,
            )
        return [max_ray_load(config, p) for p in config.support]

    return config.memo("ray_loads", compute)


def safe_points(config: Configuration) -> List[Point]:
    """All safe occupied positions of ``U(C)``.

    Lemma 4.2 guarantees this is non-empty for non-linear configurations;
    Lemma 4.3 says it is empty for ``B`` and ``L2W``.  Both claims are
    exercised by the test suite on generated workloads.
    """

    def compute() -> List[Point]:
        bound = math.ceil(config.n / 2) - 1
        loads = all_max_ray_loads(config)
        return [
            p
            for p, load in zip(config.support, loads)
            if load <= bound
        ]

    return config.memo("safe_points", compute)
