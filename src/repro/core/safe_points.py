"""Safe points (Definition 8) — bivalent-proof gathering targets.

A robot position ``p`` is *safe* when no half-line from ``p`` carries
``ceil(n/2)`` or more robots.  If everybody walks straight towards a safe
point, then even if the adversary stops an arbitrary subset mid-way, no
single location on any ray can ever accumulate half of the robots — so
the bivalent configuration ``B`` can never form.  The election rule for
asymmetric configurations only considers safe points for exactly this
reason (proof of Lemma 5.6, claim C1).

Counting detail: ``HF(p, q)`` excludes ``p`` itself, so robots co-located
with ``p`` never count against any ray; robots on a common ray count with
their multiplicities.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..geometry import TWO_PI, Point, direction_angle, kernels, normalize_angle
from .configuration import Configuration
from .successor import MAX_ANGULAR_RESOLUTION, ray_structure

__all__ = ["max_ray_load", "is_safe_point", "safe_points", "all_max_ray_loads"]


def max_ray_load(config: Configuration, p: Point) -> int:
    """Largest number of robots on a single half-line from ``p``.

    Robots at ``p`` are excluded (the half-line excludes its origin).
    """
    rays = ray_structure(config, p)
    if not rays:
        return 0
    return max(ray.count for ray in rays)


def is_safe_point(config: Configuration, p: Point) -> bool:
    """Definition 8: every ray from ``p`` has at most ``ceil(n/2) - 1`` robots."""
    bound = math.ceil(config.n / 2) - 1
    return max_ray_load(config, p) <= bound


def all_max_ray_loads(config: Configuration) -> List[int]:
    """Max ray load of every support point, in support order (memoized).

    The scan over all occupied positions is the hot loop of safe-point
    detection; under the numpy backend one batch kernel call replaces
    the per-center :func:`~repro.core.successor.ray_structure` walks.
    """

    def compute() -> List[int]:
        tol = config.tol
        if kernels.enabled_for(len(config.support)):
            return kernels.max_ray_loads(
                [(p.x, p.y) for p in config.support],
                [config.mult(p) for p in config.support],
                tol.eps_dist,
                tol.eps_angle,
                MAX_ANGULAR_RESOLUTION,
            )
        return _max_ray_loads_python(config)

    return config.memo("ray_loads", compute)


def _support_polar(config: Configuration):
    """Pairwise support distances and direction angles, once per config.

    The per-center ray walks all consume the same O(m^2) geometry;
    recomputing it for every center made ``safe_points`` the slowest
    micro-bench on the python path.  Distances are stored triangularly
    (``hypot`` is sign-symmetric, so ``d(p, q)`` is bitwise ``d(q, p)``);
    angles need the full matrix (``atan2`` is not).
    """

    def compute():
        support = config.support
        m = len(support)
        dist = [[0.0] * m for _ in range(m)]
        phi = [[0.0] * m for _ in range(m)]
        for i in range(m):
            pi = support[i]
            row = dist[i]
            for j in range(i + 1, m):
                d = pi.distance_to(support[j])
                row[j] = d
                dist[j][i] = d
        for i in range(m):
            pi = support[i]
            row = phi[i]
            for j in range(m):
                if j != i:
                    row[j] = normalize_angle(direction_angle(pi, support[j]))
        return dist, phi

    return config.memo("support_polar", compute)


def _max_ray_loads_python(config: Configuration) -> List[int]:
    """All support max-ray-loads off the cached pairwise polar tables.

    Replicates :func:`max_ray_load` center for center — the same
    off-center filter, distance-aware angular tolerance, chained angle
    clustering and 0/2*pi seam merge — but reads every distance and
    angle from :func:`_support_polar` instead of recomputing them per
    center.  Only per-ray robot counts are tracked (all Definition 8
    needs).
    """
    tol = config.tol
    eps_d = tol.eps_dist
    support = config.support
    m = len(support)
    mults = [config.mult(p) for p in support]
    dist, phi = _support_polar(config)
    loads: List[int] = []
    for i in range(m):
        di = dist[i]
        pf = phi[i]
        d_min = None
        entries: List[Tuple[float, int]] = []
        for j in range(m):
            d = di[j]
            if d <= eps_d:
                continue
            if d_min is None or d < d_min:
                d_min = d
            entries.append((pf[j], mults[j]))
        if not entries:
            loads.append(0)
            continue
        if d_min is None or d_min <= 0.0:
            eps_ang = tol.eps_angle
        else:
            eps_ang = min(
                MAX_ANGULAR_RESOLUTION, tol.eps_angle + tol.eps_dist / d_min
            )
        entries.sort(key=lambda e: e[0])
        counts = [entries[0][1]]
        last_angle = entries[0][0]
        for angle, mult in entries[1:]:
            if angle - last_angle <= eps_ang:
                counts[-1] += mult
            else:
                counts.append(mult)
            last_angle = angle
        if len(counts) > 1 and (entries[0][0] + TWO_PI) - last_angle <= eps_ang:
            counts[0] += counts.pop()
        loads.append(max(counts))
    return loads


def safe_points(config: Configuration) -> List[Point]:
    """All safe occupied positions of ``U(C)``.

    Lemma 4.2 guarantees this is non-empty for non-linear configurations;
    Lemma 4.3 says it is empty for ``B`` and ``L2W``.  Both claims are
    exercised by the test suite on generated workloads.
    """

    def compute() -> List[Point]:
        bound = math.ceil(config.n / 2) - 1
        loads = all_max_ray_loads(config)
        return [
            p
            for p, load in zip(config.support, loads)
            if load <= bound
        ]

    return config.memo("safe_points", compute)
