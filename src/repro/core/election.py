"""Leader election among occupied positions (algorithm line 17).

In an asymmetric configuration every occupied position has a unique view,
so ordering positions by any view-involving key is a total order that all
robots compute identically in their own frames.  The paper's key, in
lexicographic priority:

1. **maximize** multiplicity ``mult(p)``,
2. **minimize** the sum of distances ``sum_q |p, q|`` over all robots,
3. **maximize** the view ``V(p)``.

The elected position serves as the common gathering target; restricting
candidates to *safe points* is the caller's job (the ``A`` case does,
the ablation baseline deliberately does not — experiment E9).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..geometry import Point, kernels, sum_of_distances
from .configuration import Configuration
from .views import View, view_of

__all__ = ["election_key", "elect"]


def _distance_sum(config: Configuration, p: Point) -> float:
    """Sum of distances from ``p`` to all robots.

    Election scans every candidate, so the naive per-candidate sum is
    quadratic in ``n``; under the numpy backend the whole support's
    distance sums come from one batch kernel call, memoized on the
    configuration.
    """
    if kernels.enabled_for(config.n):
        located = config.locate(p)
        if located is not None:
            sums = config.memo(
                "dist_sums",
                lambda: dict(
                    zip(
                        config.support,
                        kernels.distance_sums(
                            [(q.x, q.y) for q in config.support],
                            [(q.x, q.y) for q in config.points],
                        ),
                    )
                ),
            )
            return sums[located]
    return sum_of_distances(p, config.points)


def election_key(config: Configuration, p: Point) -> Tuple[int, float, View]:
    """Sort key realizing the paper's (mult, -sum of distances, view) order.

    Built so that *larger is better* under tuple comparison: multiplicity
    ascending, negated distance sum ascending (i.e. distance sum
    descending... note the negation), view ascending.  The distance sum
    is quantized so that robots computing it in different frames (after
    normalization) agree bitwise-stably.
    """
    dist_sum = _distance_sum(config, p)
    return (
        config.mult(p),
        -config.tol.quantize_length(dist_sum),
        view_of(config, p),
    )


def elect(config: Configuration, candidates: Iterable[Point]) -> Point:
    """The maximum of ``candidates`` under :func:`election_key`.

    Raises :class:`ValueError` on an empty candidate set (the ``A`` case
    never hits this: Lemma 4.2 guarantees a safe point exists).
    """
    best: Point = None  # type: ignore[assignment]
    best_key = None
    for p in candidates:
        key = election_key(config, p)
        if best_key is None or key > best_key:
            best, best_key = p, key
    if best_key is None:
        raise ValueError("election requires at least one candidate")
    return best
