"""``WAIT-FREE-GATHER`` — the paper's algorithm (Figure 2).

The function :func:`wait_free_gather` maps a snapshot (a
:class:`~repro.core.configuration.Configuration`) and the calling robot's
own position to a destination point.  It is **oblivious** (pure function
of the snapshot), **anonymous** (depends only on the position, never an
identity) and **wait-free** (every robot not located at the single
distinguished location is instructed to move — Lemma 5.1's necessary
condition, checked by the invariant suite).

The OCR-damaged pseudocode was reconstructed from the prose of Section
V.B and the proofs of Section V.C; DESIGN.md section 6 records each
reconstruction decision.  Per-case rules:

``M``
    Move straight to the unique max-multiplicity point ``c`` when the
    open segment to it is robot-free; otherwise *side-step*: rotate
    clockwise about ``c`` (keeping the distance to ``c``) by one third of
    the clockwise angle to the nearest other occupied ray.  The side-step
    never creates a new multiplicity point (Lemma 5.3, claim C1).

``QR`` / ``L1W``
    Move straight to the Weber point, which is exactly computable for
    these classes and invariant under the movement (Lemmas 3.2–3.3).

``A``
    Move straight to the elected safe point (max ``(mult, -sum of
    distances, view)`` over the safe points of ``U(C)``).

``L2W``
    Interior robots move to the midpoint of the two extreme occupied
    positions; each extreme robot moves off the line — to the point at
    its same distance from the midpoint, rotated clockwise by ``pi/4``.

``B``
    Impossible (Lemma 5.2): :class:`BivalentConfigurationError`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..geometry import (
    Point,
    normalize_angle,
    point_strictly_between,
    rotate_clockwise,
)
from .classification import ConfigClass, classify
from .configuration import Configuration
from .election import elect
from .errors import BivalentConfigurationError, NotAPositionError
from .quasi_regularity import quasi_regularity
from .safe_points import safe_points
from .successor import ray_structure
from .weber_point import linear_weber_points

__all__ = [
    "wait_free_gather",
    "destination_map",
    "SIDE_STEP_CAP",
    "L2W_ESCAPE_ANGLE",
]

#: Upper bound on the side-step rotation in the ``M`` case.  The paper's
#: proof manipulates an isosceles triangle with apex angle below pi/3;
#: capping at pi/4 keeps every rotation inside that regime, including the
#: degenerate all-robots-on-one-ray case where no other ray bounds the
#: rotation (see DESIGN.md section 6).
SIDE_STEP_CAP = math.pi / 4.0

#: Rotation applied to the extreme robots of an ``L2W`` configuration to
#: leave the line (algorithm lines 23-26).
L2W_ESCAPE_ANGLE = math.pi / 4.0


def wait_free_gather(config: Configuration, me: Point) -> Point:
    """Destination of the robot located at ``me`` under ``WAIT-FREE-GATHER``.

    Raises
    ------
    BivalentConfigurationError
        If the configuration is bivalent (gathering impossible).
    NotAPositionError
        If ``me`` is not an occupied position of ``config``.
    """
    r = config.locate(me)
    if r is None:
        raise NotAPositionError(f"{me!r} is not occupied in {config!r}")

    cls = classify(config)
    if cls is ConfigClass.BIVALENT:
        raise BivalentConfigurationError(
            "deterministic gathering from a bivalent configuration is "
            "impossible (Lemma 5.2)"
        )
    if cls is ConfigClass.MULTIPLE:
        return _move_multiple(config, r)
    if cls in (ConfigClass.QUASI_REGULAR, ConfigClass.LINEAR_UNIQUE_WEBER):
        return _weber_target(config, cls)
    if cls is ConfigClass.ASYMMETRIC:
        # The election depends only on the configuration, not on ``r``:
        # memoized so the n per-round callers (engine stall checks, one
        # compute per robot) elect once.
        return config.memo(
            "elected_safe", lambda: elect(config, safe_points(config))
        )
    assert cls is ConfigClass.LINEAR_MANY_WEBER
    return _move_linear_interval(config, r)


# -- case M ------------------------------------------------------------------


def _move_multiple(config: Configuration, r: Point) -> Point:
    c = config.max_multiplicity_points()[0]
    if r == c:
        return r  # lines 2-3: the elected location stays put
    blocked = any(
        point_strictly_between(r, c, q, config.tol)
        for q in config.support
        if q not in (r, c)
    )
    if not blocked:
        return c  # line 5: free robot heads straight for c
    return _side_step(config, r, c)


def _side_step(config: Configuration, r: Point, c: Point) -> Point:
    """Lines 7-12: rotate clockwise about ``c`` by a collision-free angle."""
    rays = ray_structure(config, c)
    from ..geometry import direction_angle

    my_angle = None
    others: List[float] = []
    for ray in rays:
        if any(p == r for p in ray.points):
            my_angle = ray.angle
        else:
            others.append(ray.angle)
    if my_angle is None:
        # r merged into a ray cluster whose representative angle was
        # computed from a different point; recompute directly.
        my_angle = normalize_angle(direction_angle(c, r))

    if others:
        # Clockwise gap = decrease of the CCW angle, wrapping.
        theta_v = min(normalize_angle(my_angle - a) for a in others)
    else:
        theta_v = 2.0 * math.pi  # all robots share my ray; any turn is free
    theta = min(theta_v / 3.0, SIDE_STEP_CAP)
    return rotate_clockwise(r, c, theta)


# -- cases QR and L1W ----------------------------------------------------------


def _weber_target(config: Configuration, cls: ConfigClass) -> Point:
    if cls is ConfigClass.QUASI_REGULAR:
        center = quasi_regularity(config).center
        assert center is not None  # classification guarantees it
        return center
    lo, hi = linear_weber_points(config)
    # L1W: the interval is degenerate; either endpoint is the unique WP.
    return lo


# -- case L2W ------------------------------------------------------------------


def _line_extremes(config: Configuration) -> "tuple[Point, Point]":
    """The two extreme occupied positions of a linear configuration."""
    from ..geometry import project_parameter

    anchor = config.support[0]
    far = max(config.support, key=anchor.distance_to)
    lo = min(config.support, key=lambda p: project_parameter(anchor, far, p))
    hi = max(config.support, key=lambda p: project_parameter(anchor, far, p))
    return lo, hi


def _move_linear_interval(config: Configuration, r: Point) -> Point:
    lo, hi = _line_extremes(config)
    center = (lo + hi) / 2.0
    if r == lo or r == hi:
        # Extreme robots escape the line (lines 23-26).  Both extremes
        # rotate clockwise, so simultaneous activation keeps them
        # antipodal about the center — never bivalent (Lemma 5.7).
        return rotate_clockwise(r, center, L2W_ESCAPE_ANGLE)
    return center  # line 20: interior robots contract to the center


# -- analysis helper -----------------------------------------------------------


def destination_map(config: Configuration) -> Dict[Point, Point]:
    """Destination of each occupied position (all robots at one position
    receive the same instruction — the algorithm is anonymous).

    Used by the invariant suite to check Lemma 5.1's wait-freedom
    condition ``|U(P setminus M(P, A))| <= 1``.
    """
    return {p: wait_free_gather(config, p) for p in config.support}
