"""Ray structure and the string of angles around a center (Definition 4).

The paper orders the robots that are not located at a candidate center
``c`` along a clockwise walk: rays from ``c`` are visited in clockwise
order, robots on one ray are visited by increasing distance, and
co-located robots consecutively.  The *string of angles* ``SA(c)`` is the
sequence of clockwise angles between consecutive robots in this walk —
``k`` robots sharing a ray contribute ``k - 1`` zero angles followed by
the angular gap to the next occupied ray.  The string has length
``m = n - mult(c)`` and sums to ``2*pi``.

Regularity (Definition 5) is a property of this string alone — distances
play no role — which is what lets robots *top up* deficient rays with
robots taken from the center during quasi-regularity completion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..geometry import TWO_PI, Point, Tolerance, direction_angle, normalize_angle
from .configuration import Configuration

__all__ = [
    "Ray",
    "angular_resolution",
    "ray_structure",
    "string_of_angles",
    "periodicity",
]

#: Upper bound on the distance-aware angular tolerance; beyond this the
#: configuration is simply too degenerate for angular structure to mean
#: anything and detectors should give up rather than hallucinate.
MAX_ANGULAR_RESOLUTION = 0.05


def angular_resolution(config: Configuration, center: Point) -> float:
    """Effective angular tolerance for ray comparisons around ``center``.

    A point whose position is only known to ``eps_dist`` has a direction
    (seen from ``center``) only known to ``eps_dist / distance``.  The
    paper works in exact reals and never faces this; in the simulation,
    robots that stop just short of the center would otherwise poison the
    string of angles with arbitrarily large angular noise.  We therefore
    scale the angular tolerance by the closest off-center robot, capped
    at :data:`MAX_ANGULAR_RESOLUTION`.
    """
    tol = config.tol
    d_min = None
    for p in config.support:
        if p.close_to(center, tol):
            continue
        d = center.distance_to(p)
        if d_min is None or d < d_min:
            d_min = d
    if d_min is None or d_min <= 0.0:
        return tol.eps_angle
    return min(MAX_ANGULAR_RESOLUTION, tol.eps_angle + tol.eps_dist / d_min)


@dataclass(frozen=True)
class Ray:
    """One occupied ray from a center point.

    ``angle`` is the mathematical (CCW) direction angle in ``[0, 2*pi)``
    used purely as a sorting key; clockwise semantics appear only in the
    gap computation.  ``count`` is the number of robots on the ray
    (multiplicities included) and ``points`` the support points on it,
    sorted by increasing distance from the center.
    """

    angle: float
    count: int
    points: Tuple[Point, ...]


def ray_structure(config: Configuration, center: Point) -> List[Ray]:
    """Occupied rays from ``center``, sorted by CCW direction angle.

    Support points within tolerance of ``center`` are excluded (robots at
    the center are not part of the string of angles).  Angles are
    clustered with the angular tolerance, including the wrap-around at
    ``0 / 2*pi``, so nearly-identical directions form one ray.

    Memoized per ``(configuration, center)``: quasi-regularity probes the
    same center once per candidate multiplicity and every active robot's
    side-step walks the same rays, so the structure is derived once.
    Callers must not mutate the returned list.
    """
    cache = config.memo("rays", dict)
    cached = cache.get(center)
    if cached is not None:
        return cached
    rays = _ray_structure(config, center)
    cache[center] = rays
    return rays


def _ray_structure(config: Configuration, center: Point) -> List[Ray]:
    tol = config.tol
    eps_ang = angular_resolution(config, center)
    entries: List[Tuple[float, Point, int]] = []
    for p in config.support:
        if p.close_to(center, tol):
            continue
        phi = normalize_angle(direction_angle(center, p))
        entries.append((phi, p, config.mult(p)))
    if not entries:
        return []

    entries.sort(key=lambda e: e[0])
    # Cluster consecutive angles within tolerance; merge across the
    # 0/2*pi seam afterwards.
    clusters: List[List[Tuple[float, Point, int]]] = [[entries[0]]]
    for e in entries[1:]:
        if e[0] - clusters[-1][-1][0] <= eps_ang:
            clusters[-1].append(e)
        else:
            clusters.append([e])
    if len(clusters) > 1:
        first, last = clusters[0], clusters[-1]
        if (first[0][0] + TWO_PI) - last[-1][0] <= eps_ang:
            clusters[0] = last + first
            clusters.pop()

    rays: List[Ray] = []
    for cluster in clusters:
        pts = sorted((p for _, p, _ in cluster), key=center.distance_to)
        count = sum(m for _, _, m in cluster)
        # Representative angle: the direction of the closest point keeps
        # the key stable under robots moving along the ray.
        angle = normalize_angle(direction_angle(center, pts[0]))
        rays.append(Ray(angle=angle, count=count, points=tuple(pts)))
    rays.sort(key=lambda r: r.angle)
    return rays


def string_of_angles(config: Configuration, center: Point) -> List[float]:
    """The string of angles ``SA(center)`` (Definition 4).

    Starting robot is canonical (the first ray in clockwise order from
    the positive x-axis); periodicity is rotation invariant so the
    choice does not affect :func:`periodicity`.

    Returns the empty list when every robot sits at ``center``.
    """
    rays = ray_structure(config, center)
    if not rays:
        return []
    if len(rays) == 1:
        return [0.0] * (rays[0].count - 1) + [TWO_PI]

    # Clockwise traversal = decreasing CCW angle.  Gap from a ray to the
    # next ray clockwise is (angle - next_angle) mod 2*pi.
    ordered = sorted(rays, key=lambda r: -r.angle)
    sa: List[float] = []
    for i, ray in enumerate(ordered):
        nxt = ordered[(i + 1) % len(ordered)]
        gap = normalize_angle(ray.angle - nxt.angle)
        if gap == 0.0:
            gap = TWO_PI  # distinct rays a full turn apart: single-ray case
        sa.extend([0.0] * (ray.count - 1))
        sa.append(gap)
    return sa


def periodicity(
    sa: Sequence[float], tol: Tolerance, band: Optional[float] = None
) -> int:
    """``per(SA)``: the greatest ``k`` such that ``SA = x^k`` (Definition 4).

    ``band`` is the angular comparison tolerance; callers that derived
    the string from a configuration pass ``2 * angular_resolution(...)``
    (each ``SA`` entry is the difference of two direction angles).  The
    default falls back to twice the static angular quantum.
    """
    m = len(sa)
    if m == 0:
        return 1
    if band is None:
        band = 2.0 * tol.eps_angle
    for k in range(m, 1, -1):
        if m % k != 0:
            continue
        d = m // k
        if all(abs(sa[i] - sa[i % d]) <= band for i in range(m)):
            return k
    return 1
