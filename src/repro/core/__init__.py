"""Core of the reproduction: the paper's configuration calculus and algorithm.

Layering (bottom-up): :class:`Configuration` (multiset + strong
multiplicity detection) -> views & symmetry (Defs 2-3) -> string of angles
(Def 4) -> regularity / quasi-regularity (Defs 5-7, Lemma 3.4) -> the
Section IV classification -> safe points (Def 8) & election -> the
``WAIT-FREE-GATHER`` algorithm (Figure 2).
"""

from .algorithm import (
    L2W_ESCAPE_ANGLE,
    SIDE_STEP_CAP,
    destination_map,
    wait_free_gather,
)
from .classification import ConfigClass, classify, is_gathering_possible
from .configuration import Configuration
from .election import elect, election_key
from .errors import (
    BivalentConfigurationError,
    GatheringError,
    NotAPositionError,
)
from .quasi_regularity import (
    QuasiRegularityResult,
    quasi_regularity,
    satisfies_lemma_3_4,
    topping_deficiency,
)
from .regularity import RegularityResult, regularity
from .safe_points import is_safe_point, max_ray_load, safe_points
from .successor import Ray, angular_resolution, periodicity, ray_structure, string_of_angles
from .views import (
    View,
    equivalence_classes,
    symmetry,
    view_of,
    view_table,
    views_equal,
)
from .weber_point import (
    has_unique_linear_weber_point,
    linear_weber_points,
    numeric_weber_point,
)

__all__ = [
    "L2W_ESCAPE_ANGLE",
    "SIDE_STEP_CAP",
    "destination_map",
    "wait_free_gather",
    "ConfigClass",
    "classify",
    "is_gathering_possible",
    "Configuration",
    "elect",
    "election_key",
    "BivalentConfigurationError",
    "GatheringError",
    "NotAPositionError",
    "QuasiRegularityResult",
    "quasi_regularity",
    "satisfies_lemma_3_4",
    "topping_deficiency",
    "RegularityResult",
    "regularity",
    "is_safe_point",
    "max_ray_load",
    "safe_points",
    "Ray",
    "periodicity",
    "ray_structure",
    "string_of_angles",
    "View",
    "equivalence_classes",
    "symmetry",
    "view_of",
    "view_table",
    "views_equal",
    "has_unique_linear_weber_point",
    "linear_weber_points",
    "numeric_weber_point",
]
