"""Configurations of robots — the multiset ``C = {p_1, ..., p_n}``.

A :class:`Configuration` is the snapshot a robot receives during its LOOK
phase: the multiset of all robot positions.  It implements the paper's
**strong multiplicity detection**: for every occupied location the exact
number of co-located robots is available (``mult``), and the de-duplicated
support ``U(C)`` is exposed.

Tolerant clustering
-------------------
Real robots (and ``float64`` simulations) never observe two positions as
bit-identical; the constructor therefore *merges* points closer than
``tol.eps_dist`` into a single location, using a union-find over the
near-pairs.  The representative of each cluster is its lexicographically
smallest member, which makes the merged configuration deterministic in the
input multiset (and independent of input order).  All higher layers (views,
classification, the algorithm itself) operate on the merged support, so
the whole stack quantizes the plane once, here.

Instances are immutable and cached: classification, views and Weber-point
computations memoize per configuration, which matters because in every
round all active robots classify the same configuration.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..geometry import (
    DEFAULT_TOLERANCE,
    Circle,
    Point,
    Tolerance,
    all_collinear,
    kernels,
    smallest_enclosing_circle,
)

__all__ = ["Configuration"]


def _merge_clusters(points: Sequence[Point], tol: Tolerance) -> Dict[Point, Point]:
    """Map each input point to its cluster representative.

    Union-find over pairs closer than ``eps_dist``; representative is the
    lexicographic minimum of the cluster, which makes the merge
    independent of the order near-pairs are discovered in.  The reference
    backend scans all pairs (quadratic in ``n``, fine for robot-team
    sizes); the numpy backend gets the near-pairs from the grid-bucketed
    :func:`repro.geometry.kernels.near_pairs` kernel instead.
    """
    pts = list(points)
    parent = list(range(len(pts)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    if kernels.enabled_for(len(pts)):
        for i, j in kernels.near_pairs(
            [(p.x, p.y) for p in pts], tol.eps_dist
        ):
            union(i, j)
    else:
        for i in range(len(pts)):
            for j in range(i + 1, len(pts)):
                if pts[i].distance_to(pts[j]) <= tol.eps_dist:
                    union(i, j)

    rep_of_root: Dict[int, Point] = {}
    for i, p in enumerate(pts):
        root = find(i)
        cur = rep_of_root.get(root)
        if cur is None or p < cur:
            rep_of_root[root] = p
    return {p: rep_of_root[find(i)] for i, p in enumerate(pts)}


class Configuration:
    """An immutable multiset of robot positions with multiplicity counting.

    Parameters
    ----------
    points:
        One entry per robot.  Order is preserved in :attr:`points` so the
        simulator can correlate robots with entries, but all multiset
        semantics ignore order.
    tol:
        Tolerance used to merge indistinguishable positions and by all
        predicates derived from this configuration.
    """

    __slots__ = (
        "_points",
        "_tol",
        "_support",
        "_mult",
        "_rep_of_input",
        "_sec",
        "_is_linear",
        "_sorted",
        "_hash",
        "_cache",
        "_cache_backend",
    )

    def __init__(
        self,
        points: Iterable[Point],
        tol: Tolerance = DEFAULT_TOLERANCE,
    ) -> None:
        raw: Tuple[Point, ...] = tuple(points)
        if not raw:
            raise ValueError("a configuration needs at least one robot")
        mapping = _merge_clusters(raw, tol)
        merged = tuple(mapping[p] for p in raw)
        mult: Dict[Point, int] = {}
        for p in merged:
            mult[p] = mult.get(p, 0) + 1
        self._points: Tuple[Point, ...] = merged
        # Input point -> cluster representative.  Union-find chains can
        # span more than eps_dist end to end, so a raw input point is
        # not always within tolerance of its own representative; this
        # map lets locate() resolve exact input points regardless.
        self._rep_of_input: Dict[Point, Point] = mapping
        self._tol = tol
        # Deterministic support order: lexicographic.
        self._support: Tuple[Point, ...] = tuple(sorted(mult))
        self._mult: Dict[Point, int] = mult
        self._sec: Optional[Circle] = None
        self._is_linear: Optional[bool] = None
        # Sorted multiset and its hash, computed lazily: __eq__/__hash__
        # are hit by trace dedup and memo keys, and re-sorting the full
        # multiset on every call dominated those paths.
        self._sorted: Optional[Tuple[Point, ...]] = None
        self._hash: Optional[int] = None
        # Free-form memo used by the higher layers (views, classification,
        # quasi-regularity); keyed by strings private to each module.
        # Entries are only valid under the kernel backend they were
        # computed with: the numpy and reference paths agree to tolerance
        # but not to the bit, so a memo warmed under one backend must not
        # leak into runs under the other (e.g. `repro check --backend
        # both` replaying one shared trace).  The cache is stamped with
        # the active backend and dropped wholesale when it changes.
        self._cache: Dict[str, object] = {}
        self._cache_backend: str = kernels.get_backend()

    # -- basic multiset interface -------------------------------------------

    @property
    def tol(self) -> Tolerance:
        """Tolerance this configuration was quantized with."""
        return self._tol

    @property
    def points(self) -> Tuple[Point, ...]:
        """All robot positions (multiplicities expanded, input order)."""
        return self._points

    @property
    def n(self) -> int:
        """Number of robots, ``n``."""
        return len(self._points)

    @property
    def support(self) -> Tuple[Point, ...]:
        """The paper's ``U(C)``: distinct occupied locations (sorted)."""
        return self._support

    def mult(self, p: Point) -> int:
        """Strong multiplicity detection: robots located at ``p``.

        ``p`` must be (tolerantly) an occupied location; unoccupied points
        have multiplicity 0.
        """
        exact = self._mult.get(p)
        if exact is not None:
            return exact
        for q, m in self._mult.items():
            if p.close_to(q, self._tol):
                return m
        return 0

    def locate(self, p: Point) -> Optional[Point]:
        """The support point ``p`` belongs to, or ``None``.

        Exact input points resolve through the merge map (their cluster
        may be wider than the tolerance); other points resolve by
        tolerant distance to a support point.
        """
        rep = self._rep_of_input.get(p)
        if rep is not None:
            return rep
        if p in self._mult:
            return p
        for q in self._support:
            if p.close_to(q, self._tol):
                return q
        return None

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def _sorted_points(self) -> Tuple[Point, ...]:
        """The multiset in sorted order, cached after the first use."""
        if self._sorted is None:
            self._sorted = tuple(sorted(self._points))
        return self._sorted

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._sorted_points() == other._sorted_points()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._sorted_points())
        return self._hash

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{p.as_tuple()}x{m}" for p, m in sorted(self._mult.items())
        )
        return f"Configuration[n={self.n}]({parts})"

    # -- derived geometry ----------------------------------------------------

    def multiplicities(self) -> Dict[Point, int]:
        """Copy of the ``support point -> multiplicity`` map."""
        return dict(self._mult)

    def max_multiplicity(self) -> int:
        """Largest multiplicity over the support."""
        return max(self._mult.values())

    def max_multiplicity_points(self) -> List[Point]:
        """All support points achieving the maximum multiplicity."""
        top = self.max_multiplicity()
        return [p for p in self._support if self._mult[p] == top]

    def is_gathered(self) -> bool:
        """True when all robots occupy one location."""
        return len(self._support) == 1

    def is_linear(self) -> bool:
        """The paper's *linear* predicate: all robots on one line."""
        if self._is_linear is None:
            self._is_linear = all_collinear(self._support, self._tol)
        return self._is_linear

    def sec(self) -> Circle:
        """``sec(C)``: smallest circle enclosing the support ``U(C)``."""
        if self._sec is None:
            self._sec = smallest_enclosing_circle(self._support)
        return self._sec

    def sec_center(self) -> Point:
        """``center(sec(U(C)))`` — the views' reference point."""
        return self.sec().center

    # -- memoization hook ----------------------------------------------------

    def memo(self, key: str, compute):
        """Memoize ``compute()`` under ``key`` for this configuration.

        The higher layers use this to cache views, classification and
        Weber points: every active robot in a round analyses the same
        configuration, and re-deriving the full tower per robot would
        dominate the simulation time.
        """
        self._validate_cache_backend()
        if key not in self._cache:
            self._cache[key] = compute()
        return self._cache[key]

    def memo_get(self, key: str, default=None):
        """Peek at a memoized value without computing it.

        Lets batch pre-seeding (the batched engine warms several
        configurations' towers with one vectorized kernel call) skip
        configurations whose value already exists.
        """
        self._validate_cache_backend()
        return self._cache.get(key, default)

    def _validate_cache_backend(self) -> None:
        """Drop memos computed under a different kernel backend.

        One attribute read on the hot path; the invalidation itself only
        runs when ``REPRO_BACKEND`` (or a ``kernels.backend()`` context)
        actually flipped mid-process while this configuration was alive.
        """
        backend = kernels.get_backend()
        if backend != self._cache_backend:
            self._cache.clear()
            self._cache_backend = backend

    # -- construction helpers -------------------------------------------------

    def moved(self, moves: Dict[int, Point]) -> "Configuration":
        """New configuration with robots at the given indices relocated."""
        pts = list(self._points)
        for index, destination in moves.items():
            pts[index] = destination
        return Configuration(pts, self._tol)
