"""Progress measures over time — the paper's potentials, plotted.

The correctness proofs rest on progress measures: the maximum
multiplicity never decreases (Lemma 5.3), the phi pair improves in ``A``
(Lemma 5.6 C2), distances to the invariant Weber point shrink (Lemmas
5.4/5.5).  :class:`ProgressTracker` records all of them per round, so
experiment E13 can print the measure-vs-round series a systems paper
would plot as figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core import ConfigClass, Configuration, classify
from ..geometry import Point
from ..sim.metrics import spread
from ..sim.trace import RoundRecord
from .invariants import phi

__all__ = ["ProgressSample", "ProgressTracker"]


@dataclass(frozen=True)
class ProgressSample:
    """One row of the progress series."""

    round_index: int
    config_class: ConfigClass
    max_multiplicity: int
    distinct_locations: int
    spread: float
    phi_mult: int
    phi_distance_sum: float


@dataclass
class ProgressTracker:
    """Engine observer accumulating the per-round progress series.

    Attach with ``sim.add_observer(tracker)``; read :attr:`samples`
    afterwards.  ``downsample(k)`` returns at most ``k`` evenly spaced
    samples (always keeping the first and last) for compact tables.
    """

    samples: List[ProgressSample] = field(default_factory=list)

    def __call__(self, record: RoundRecord) -> None:
        config = record.config_before
        phi_mult, neg_sum = phi(config)
        self.samples.append(
            ProgressSample(
                round_index=record.round_index,
                config_class=record.config_class,
                max_multiplicity=config.max_multiplicity(),
                distinct_locations=len(config.support),
                spread=spread(config.support),
                phi_mult=phi_mult,
                phi_distance_sum=-neg_sum,
            )
        )

    def downsample(self, k: int) -> List[ProgressSample]:
        if k <= 0:
            raise ValueError("need a positive sample budget")
        n = len(self.samples)
        if n <= k:
            return list(self.samples)
        step = (n - 1) / (k - 1)
        indexes = sorted({round(i * step) for i in range(k)})
        return [self.samples[i] for i in indexes]

    def max_multiplicity_monotone(self) -> bool:
        """Lemma 5.3's never-decreasing maximum, as a predicate.

        Only claimed while the configuration is in class ``M``; across
        class boundaries the maximum may legitimately reset (e.g. an
        ``A`` election merging onto a fresh point).
        """
        last: Optional[int] = None
        for sample in self.samples:
            if sample.config_class is not ConfigClass.MULTIPLE:
                last = None
                continue
            if last is not None and sample.max_multiplicity < last:
                return False
            last = sample.max_multiplicity
        return True
