"""Executable proof obligations and statistics for the experiments."""

from .adversary_search import BivalentHunt, HuntResult, bivalence_score
from .progress import ProgressSample, ProgressTracker
from .invariants import (
    ALLOWED_TRANSITIONS,
    InvariantMonitor,
    InvariantViolation,
    check_class_transition,
    check_safe_point_preserved,
    check_wait_freedom,
    elected_target,
    exact_weber_point,
    phi,
    verify_trace,
)
from .statistics import mean, median, stddev, wilson_interval

__all__ = [
    "BivalentHunt",
    "HuntResult",
    "bivalence_score",
    "ProgressSample",
    "ProgressTracker",
    "ALLOWED_TRANSITIONS",
    "InvariantMonitor",
    "InvariantViolation",
    "check_class_transition",
    "check_safe_point_preserved",
    "check_wait_freedom",
    "elected_target",
    "exact_weber_point",
    "phi",
    "verify_trace",
    "mean",
    "median",
    "stddev",
    "wilson_interval",
]
