"""Per-round invariant checkers — the proof obligations, executable.

Each checker corresponds to a claim used in the correctness proof of
``WAIT-FREE-GATHER``; experiment E3 and the integration tests attach them
to the engine as observers and fail loudly on any violation.

=======================  =====================================================
Checker                  Paper claim
=======================  =====================================================
wait-freedom             Lemma 5.1: at most one occupied location is told to
                         stay put.
class transitions        Lemmas 5.3-5.9: the class reachability diagram
                         (``M -> M``, ``L1W -> {M, L1W}``,
                         ``QR -> {M, L1W, QR}``, ``A -> {M, L1W, QR, A}``,
                         ``L2W -> anything except B``; ``B`` unreachable
                         from every class).
Weber invariance         Lemma 3.2 via claims C1 of Lemmas 5.4/5.5: the Weber
                         point is unchanged while in ``L1W``/``QR``.
max-multiplicity point   Lemma 5.3 claim C1: in ``M`` the unique maximum
                         stays the unique maximum (no rival multiplicity).
phi progress             Lemma 5.6 claim C2: in ``A``, if the configuration
                         changes then ``phi = (max mult, -min distance sum)``
                         does not regress.
safe-point preservation  Lemma 5.6 claim C1: the elected safe point remains
                         safe after the move.
=======================  =====================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core import (
    ConfigClass,
    Configuration,
    classify,
    destination_map,
    is_safe_point,
    quasi_regularity,
    linear_weber_points,
)
from ..geometry import Point, sum_of_distances
from ..sim.trace import RoundRecord

__all__ = [
    "InvariantViolation",
    "check_wait_freedom",
    "ALLOWED_TRANSITIONS",
    "check_class_transition",
    "exact_weber_point",
    "elected_target",
    "InvariantMonitor",
    "phi",
    "verify_trace",
]


class InvariantViolation(AssertionError):
    """A proof obligation failed on a concrete execution."""


# -- Lemma 5.1: wait-freedom ---------------------------------------------------


def check_wait_freedom(config: Configuration) -> None:
    """Lemma 5.1: ``|U(P \\ M(P, A))| <= 1`` for ``WAIT-FREE-GATHER``.

    Computes the algorithm's instruction for every occupied location and
    counts the locations allowed to stay.
    """
    stays = 0
    for position, destination in destination_map(config).items():
        if destination.close_to(position, config.tol):
            stays += 1
    if stays > 1:
        raise InvariantViolation(
            f"wait-freedom violated: {stays} occupied locations were "
            f"instructed to stay in {config!r}"
        )


# -- Lemmas 5.3-5.9: the class reachability diagram -----------------------------

#: ``before -> allowed afters`` under one round of WAIT-FREE-GATHER.
ALLOWED_TRANSITIONS: Dict[ConfigClass, Set[ConfigClass]] = {
    ConfigClass.MULTIPLE: {ConfigClass.MULTIPLE},
    ConfigClass.LINEAR_UNIQUE_WEBER: {
        ConfigClass.MULTIPLE,
        ConfigClass.LINEAR_UNIQUE_WEBER,
    },
    ConfigClass.QUASI_REGULAR: {
        ConfigClass.MULTIPLE,
        ConfigClass.LINEAR_UNIQUE_WEBER,
        ConfigClass.QUASI_REGULAR,
    },
    ConfigClass.ASYMMETRIC: {
        ConfigClass.MULTIPLE,
        ConfigClass.LINEAR_UNIQUE_WEBER,
        ConfigClass.QUASI_REGULAR,
        ConfigClass.ASYMMETRIC,
    },
    ConfigClass.LINEAR_MANY_WEBER: {
        ConfigClass.MULTIPLE,
        ConfigClass.LINEAR_UNIQUE_WEBER,
        ConfigClass.LINEAR_MANY_WEBER,
        ConfigClass.QUASI_REGULAR,
        ConfigClass.ASYMMETRIC,
    },
    # B is absorbing for the checker's purposes (the algorithm refuses).
    ConfigClass.BIVALENT: {ConfigClass.BIVALENT},
}


def check_class_transition(before: ConfigClass, after: ConfigClass) -> None:
    """Raise unless ``before -> after`` is permitted by Lemmas 5.3-5.9."""
    allowed = ALLOWED_TRANSITIONS[before]
    if after not in allowed:
        raise InvariantViolation(
            f"illegal class transition {before} -> {after}; "
            f"allowed: {sorted(c.value for c in allowed)}"
        )


# -- Weber invariance -----------------------------------------------------------


def exact_weber_point(config: Configuration) -> Optional[Point]:
    """The exactly-computable Weber point when the class provides one."""
    cls = classify(config)
    if cls is ConfigClass.QUASI_REGULAR:
        return quasi_regularity(config).center
    if cls is ConfigClass.LINEAR_UNIQUE_WEBER:
        return linear_weber_points(config)[0]
    return None


# -- Lemma 5.6: the progress measure phi ------------------------------------------


def phi(config: Configuration) -> Tuple[int, float]:
    """The paper's ``phi(C)``: lexicographic ``(max mult(p), 1/sum dist)``.

    Returned as ``(max multiplicity, -min distance sum)`` so plain tuple
    comparison realizes the paper's order (bigger is progress).
    """
    best: Optional[Tuple[int, float]] = None
    for p in config.support:
        key = (config.mult(p), -sum_of_distances(p, config.points))
        if best is None or key > best:
            best = key
    assert best is not None
    return best


# -- Lemma 5.6 C1: safe-point preservation -------------------------------------


def elected_target(record: RoundRecord) -> Optional[Point]:
    """The common point the round's movers were sent to, if any.

    In class ``A`` the algorithm sends every active robot towards one
    elected safe point; robots already there are told to stay.  The
    recorded destinations recover that election without re-running the
    algorithm: it is the unique destination assigned to a robot located
    elsewhere.  Returns ``None`` when no robot was told to move or when
    the movers disagree (not a class-``A`` round).
    """
    before = record.config_before
    targets = {
        dest
        for rid, dest in record.destinations.items()
        if not dest.close_to(
            before.points[rid], before.tol
        )
    }
    if len(targets) != 1:
        return None
    return next(iter(targets))


def check_safe_point_preserved(record: RoundRecord) -> None:
    """Lemma 5.6 claim C1: the elected safe point stays safe.

    Applies to rounds that start in class ``A``: the elected target must
    be a safe occupied position before the move, and — since the robots
    standing on it are told to stay — must still be a safe occupied
    position after the simultaneous moves complete or are truncated.
    """
    target = elected_target(record)
    if target is None:
        return
    before, after = record.config_before, record.config_after
    if before.locate(target) is None:
        return  # not an occupied position: not an election round
    if not is_safe_point(before, target):
        raise InvariantViolation(
            f"elected target {target!r} is not a safe point of the "
            f"configuration it was elected in"
        )
    landed = after.locate(target)
    if landed is not None and not is_safe_point(after, landed):
        raise InvariantViolation(
            f"Lemma 5.6 C1 violated: elected safe point {target!r} is "
            f"no longer safe after the move"
        )


# -- the engine observer ------------------------------------------------------------


@dataclass
class InvariantMonitor:
    """Engine observer enforcing every checkable proof obligation.

    Attach with ``sim.add_observer(monitor)``; any violation raises
    :class:`InvariantViolation` out of ``Simulation.step``.

    ``check_wait_freedom`` invokes the algorithm an extra ``|U(C)|``
    times per round, so the monitor roughly doubles simulation cost;
    it is meant for tests and the E3 experiment, not for large sweeps.
    """

    check_waitfree: bool = True
    check_transitions: bool = True
    check_weber: bool = True
    check_multiplicity: bool = True
    check_phi: bool = True
    check_safe: bool = True
    rounds_checked: int = field(default=0, init=False)

    def __call__(self, record: RoundRecord) -> None:
        before = record.config_before
        after = record.config_after
        cls_before = record.config_class
        cls_after = classify(after)
        self.rounds_checked += 1

        if self.check_waitfree and cls_before is not ConfigClass.BIVALENT:
            check_wait_freedom(before)

        if self.check_transitions:
            check_class_transition(cls_before, cls_after)

        if self.check_weber and cls_before in (
            ConfigClass.QUASI_REGULAR,
            ConfigClass.LINEAR_UNIQUE_WEBER,
        ):
            wp_before = exact_weber_point(before)
            wp_after = exact_weber_point(after)
            # The class may have advanced to M (no exact WP there); the
            # invariance claim applies while the class persists.
            if wp_before is not None and wp_after is not None:
                # Partial moves keep the weber point within solver noise;
                # compare with the configuration tolerance.
                if not wp_before.close_to(wp_after, before.tol):
                    raise InvariantViolation(
                        f"Weber point drifted: {wp_before!r} -> {wp_after!r} "
                        f"({cls_before} -> {cls_after})"
                    )

        if self.check_multiplicity and cls_before is ConfigClass.MULTIPLE:
            top_before = before.max_multiplicity_points()[0]
            tops_after = after.max_multiplicity_points()
            if len(tops_after) != 1 or not tops_after[0].close_to(
                top_before, before.tol
            ):
                raise InvariantViolation(
                    "Lemma 5.3 C1 violated: the unique maximum-multiplicity "
                    f"point changed ({top_before!r} -> {tops_after!r})"
                )

        if self.check_phi and cls_before is ConfigClass.ASYMMETRIC:
            if cls_after is ConfigClass.ASYMMETRIC and after != before:
                phi_b, phi_a = phi(before), phi(after)
                # Progress claim C2: mult must not decrease; on a mult
                # tie the distance sum must not increase (within the
                # per-robot arithmetic noise of the distance sums).
                if phi_a[0] < phi_b[0] or (
                    phi_a[0] == phi_b[0] and phi_a[1] < phi_b[1] - 1e-6
                ):
                    raise InvariantViolation(
                        f"phi regressed in A: {phi_b} -> {phi_a}"
                    )

        if self.check_safe and cls_before is ConfigClass.ASYMMETRIC:
            check_safe_point_preserved(record)


def verify_trace(
    trace, monitor: Optional[InvariantMonitor] = None
) -> InvariantMonitor:
    """Run the invariant suite over an archived trace, offline.

    No re-simulation happens: every record already carries the before
    and after configurations (rebuilt with the recorded tolerance by
    ``Trace.from_json``), so the proof obligations are checked exactly
    as the engine observer would have checked them live.  Raises
    :class:`InvariantViolation` on the first failing round; returns the
    monitor (``rounds_checked`` tells how much evidence was examined).

    The obligations are those of ``WAIT-FREE-GATHER`` — running this
    over a baseline algorithm's trace is expected to report violations.
    """
    monitor = monitor if monitor is not None else InvariantMonitor()
    for record in trace:
        monitor(record)
    return monitor
