"""Greedy adversarial search for the bivalent trap.

The fixed adversaries of :mod:`repro.sim` each encode one attack.  This
module is the *search* version: a joint adversary that controls the
scheduler and every movement cut-off simultaneously and, each round,
greedily picks the combination that moves the configuration closest to
the bivalent configuration ``B`` (measured by :func:`bivalence_score`).

It exists to strengthen experiment E12 beyond fixed attacks:

* against the **ablated** ``naive-leader`` algorithm the hunt routinely
  reaches ``B`` (it rediscovers the collusive-stacking attack on its
  own);
* against ``WAIT-FREE-GATHER`` the paper proves ``B`` unreachable
  (Lemmas 4.3, 5.6 C1, 5.7); the hunt must come back empty-handed, and
  the minimum score it ever achieves is reported as the measured safety
  margin.

The search is deliberately simple — one-step lookahead over a bounded
family of activation subsets with per-robot greedy stop choices —
because the attack it needs to find (stack co-ray movers at a common
point) is a one-step pattern.  It is an *adversary*, not a verifier:
failure to find ``B`` is evidence, the invariant monitor plus the
paper's proof are the guarantee.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..algorithms.base import GatheringAlgorithm
from ..core import (
    BivalentConfigurationError,
    ConfigClass,
    Configuration,
    GatheringError,
    classify,
)
from ..geometry import DEFAULT_TOLERANCE, Point, Tolerance

__all__ = ["bivalence_score", "BivalentHunt", "HuntResult"]


def bivalence_score(config: Configuration) -> int:
    """Distance-to-``B`` heuristic: 0 iff the configuration is bivalent.

    With support multiplicities sorted descending ``m1 >= m2 >= ...``:

        score = 2 * (robots outside the two biggest stacks)
              + |m1 - m2|
              + (number of occupied locations - 2)

    Every summand is a count of robots/locations that must change for
    the configuration to become two balanced points, so the greedy
    adversary has a meaningful gradient to descend.
    """
    mults = sorted(config.multiplicities().values(), reverse=True)
    m1 = mults[0]
    m2 = mults[1] if len(mults) > 1 else 0
    rest = config.n - m1 - m2
    return 2 * rest + abs(m1 - m2) + max(0, len(mults) - 2)


@dataclass
class HuntResult:
    """Outcome of a bivalent hunt."""

    reached_bivalent: bool
    rounds: int
    best_score: int
    score_trace: List[int]
    final_class: ConfigClass


class BivalentHunt:
    """One-step-greedy joint adversary (scheduler + movement cut-offs).

    Parameters
    ----------
    algorithm:
        The algorithm under attack (run in global coordinates — the
        adversary's power does not depend on the robots' frames).
    positions:
        Initial configuration.
    delta:
        Minimum guaranteed progress per interrupted move.
    subset_budget:
        How many random activation subsets to try per round, on top of
        the structured family (every singleton, the full set, and each
        per-location cluster).
    """

    def __init__(
        self,
        algorithm: GatheringAlgorithm,
        positions: Sequence[Point],
        *,
        delta: float = 0.2,
        tol: Tolerance = DEFAULT_TOLERANCE,
        subset_budget: int = 8,
        seed: int = 0,
    ) -> None:
        if not positions:
            raise ValueError("the hunt needs at least one robot")
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.algorithm = algorithm
        self.points: List[Point] = list(positions)
        self.delta = delta
        self.tol = tol
        self.subset_budget = subset_budget
        self.rng = random.Random(seed)

    # -- candidate generation --------------------------------------------------

    def _candidate_subsets(self, config: Configuration) -> List[Set[int]]:
        n = len(self.points)
        everyone = set(range(n))
        subsets: List[Set[int]] = [everyone]
        subsets.extend({i} for i in range(n))
        # Per-location clusters: activating exactly the robots of one
        # occupied location is the move family behind the half-split
        # impossibility adversary.
        for support_point in config.support:
            cluster = {
                i
                for i, p in enumerate(self.points)
                if p.close_to(support_point, self.tol)
            }
            if 0 < len(cluster) < n:
                subsets.append(cluster)
        for _ in range(self.subset_budget):
            size = self.rng.randint(1, n)
            subsets.append(set(self.rng.sample(range(n), size)))
        # Deduplicate while keeping order.
        seen: List[Set[int]] = []
        for s in subsets:
            if s and s not in seen:
                seen.append(s)
        return seen

    def _stop_options(
        self, origin: Point, dest: Point, world: Sequence[Point]
    ) -> List[Point]:
        """Legal end points of one move the adversary may choose from.

        ``world`` is the *current* candidate configuration (robots the
        adversary already repositioned this round included), so stacking
        options can target mid-round stop points.  Every option respects
        the model's progress rule: travel at least ``min(delta, dist)``.
        """
        dist = origin.distance_to(dest)
        if dist <= self.delta:
            return [dest]
        options = [dest]
        for fraction in (self.delta / dist, 0.5, 0.75):
            t = max(self.delta / dist, min(1.0, fraction))
            options.append(origin + (dest - origin) * t)
        # Stop exactly on a robot position lying on the remaining
        # segment — the stacking move that manufactures multiplicities —
        # provided the stop is legal (>= delta of travel).
        from ..geometry import point_strictly_between

        for p in world:
            if p == origin:
                continue
            if not point_strictly_between(origin, dest, p, self.tol):
                continue
            if origin.distance_to(p) + 1e-12 >= self.delta:
                options.append(p)
        return options

    # -- one round ----------------------------------------------------------------

    def _destinations(self, config: Configuration) -> Optional[Dict[int, Point]]:
        try:
            return {
                i: self.algorithm.compute(config, p)
                for i, p in enumerate(self.points)
            }
        except GatheringError:
            return None

    def _apply_greedy(
        self, subset: Set[int], destinations: Dict[int, Point]
    ) -> List[Point]:
        """Per-robot greedy stop choices, in id order."""
        candidate = list(self.points)
        for rid in sorted(subset):
            dest = destinations[rid]
            if dest.close_to(candidate[rid], self.tol):
                continue
            options = self._stop_options(candidate[rid], dest, candidate)
            scored = []
            for option in options:
                trial = list(candidate)
                trial[rid] = option
                scored.append(
                    (bivalence_score(Configuration(trial, self.tol)), option)
                )
            scored.sort(key=lambda pair: pair[0])
            candidate[rid] = scored[0][1]
        return candidate

    def _apply_full(
        self, subset: Set[int], destinations: Dict[int, Point]
    ) -> List[Point]:
        """Everyone in the subset completes their move."""
        candidate = list(self.points)
        for rid in subset:
            candidate[rid] = destinations[rid]
        return candidate

    def _apply_collusive(
        self, subset: Set[int], destinations: Dict[int, Point]
    ) -> List[Point]:
        """Stack co-ray movers at a shared legal stop; others move fully.

        This is the attack primitive of :class:`repro.sim.CollusiveStop`
        made available to the search: groups of robots marching down one
        ray towards one destination are cut at the least-advanced
        mover's delta-stop, creating a multiplicity point in one round.
        """
        candidate = list(self.points)
        groups: Dict[Tuple[float, float, float, float], List[int]] = {}
        for rid in subset:
            origin, dest = candidate[rid], destinations[rid]
            dist = origin.distance_to(dest)
            if dist <= self.delta:
                candidate[rid] = dest
                continue
            direction = (origin - dest).normalized()
            key = (
                round(dest.x, 9),
                round(dest.y, 9),
                round(direction.x, 6),
                round(direction.y, 6),
            )
            groups.setdefault(key, []).append(rid)
        for members in groups.values():
            if len(members) < 2:
                for rid in members:
                    candidate[rid] = destinations[rid]
                continue
            rid0 = min(
                members,
                key=lambda r: candidate[r].distance_to(destinations[r]),
            )
            origin0, dest0 = candidate[rid0], destinations[rid0]
            dist0 = origin0.distance_to(dest0)
            stop = origin0 + (dest0 - origin0) * (self.delta / dist0)
            for rid in members:
                candidate[rid] = stop
        return candidate

    def step(self) -> bool:
        """Execute the adversary's best round; True while progress is legal."""
        config = Configuration(self.points, self.tol)
        destinations = self._destinations(config)
        if destinations is None:
            return False  # the algorithm refused (e.g. bivalent reached)

        strategies: List[Callable[[Set[int], Dict[int, Point]], List[Point]]] = [
            self._apply_greedy,
            self._apply_full,
            self._apply_collusive,
        ]
        best_points: Optional[List[Point]] = None
        best_key = None
        for subset in self._candidate_subsets(config):
            for strategy in strategies:
                candidate = strategy(subset, destinations)
                trial = Configuration(candidate, self.tol)
                mults = sorted(trial.multiplicities().values(), reverse=True)
                second = mults[1] if len(mults) > 1 else 0
                # Primary: the bivalence score; tie-break: prefer a big
                # second cluster (the structure B is actually made of).
                key = (bivalence_score(trial), -second)
                if best_key is None or key < best_key:
                    best_key, best_points = key, candidate
        if best_points is None:
            return False
        self.points = best_points
        return True

    # -- full hunt -------------------------------------------------------------------

    def run(self, max_rounds: int = 60) -> HuntResult:
        """Hunt for ``B`` for up to ``max_rounds`` adversary rounds."""
        scores: List[int] = []
        for _ in range(max_rounds):
            config = Configuration(self.points, self.tol)
            score = bivalence_score(config)
            scores.append(score)
            if classify(config) is ConfigClass.BIVALENT:
                return HuntResult(
                    reached_bivalent=True,
                    rounds=len(scores) - 1,
                    best_score=0,
                    score_trace=scores,
                    final_class=ConfigClass.BIVALENT,
                )
            if not self.step():
                break
        final = Configuration(self.points, self.tol)
        scores.append(bivalence_score(final))
        return HuntResult(
            reached_bivalent=classify(final) is ConfigClass.BIVALENT,
            rounds=len(scores) - 1,
            best_score=min(scores),
            score_trace=scores,
            final_class=classify(final),
        )
