"""Tiny statistics helpers used by the experiment tables.

Kept dependency-free (no scipy) on purpose: experiments report means,
medians and binomial confidence intervals, nothing fancier, and the
benchmark harness must not drag heavyweight imports into its hot path.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

__all__ = ["mean", "median", "stddev", "wilson_interval"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; NaN for empty input (prints as '-')."""
    return math.fsum(values) / len(values) if values else math.nan


def median(values: Sequence[float]) -> float:
    """Median; NaN for empty input."""
    if not values:
        return math.nan
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2 == 1:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation; NaN when fewer than two values."""
    if len(values) < 2:
        return math.nan
    m = mean(values)
    var = math.fsum((v - m) ** 2 for v in values) / (len(values) - 1)
    return math.sqrt(var)


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because experiment tables
    routinely contain 0/30 and 30/30 rows, where the naive interval
    degenerates.
    """
    if trials == 0:
        return (0.0, 1.0)
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1.0 - p) / trials + z * z / (4.0 * trials * trials))
        / denom
    )
    return (max(0.0, center - half), min(1.0, center + half))
