"""Perturbations of configurations — negative workloads and robustness.

The detection experiments (E7) need *near misses*: configurations that
look quasi-regular to the eye but are not — one robot nudged off its ray
by far more than the angular tolerance.  The robustness experiments use
small jitter to confirm the tolerant predicates absorb sensor-grade
noise without changing the classification.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from ..geometry import Point

__all__ = ["jitter", "break_symmetry"]


def jitter(
    points: List[Point], magnitude: float, seed: int = 0
) -> List[Point]:
    """Displace every point by a uniform random vector of at most
    ``magnitude`` — isotropic noise of a bounded amplitude."""
    rng = random.Random(seed)
    out: List[Point] = []
    for p in points:
        angle = rng.uniform(0.0, 2.0 * math.pi)
        r = rng.uniform(0.0, magnitude)
        out.append(Point(p.x + r * math.cos(angle), p.y + r * math.sin(angle)))
    return out


def break_symmetry(
    points: List[Point],
    magnitude: float = 0.1,
    seed: int = 0,
    tangential_about: Optional[Point] = None,
    count: int = 1,
) -> List[Point]:
    """Nudge exactly one point by a macroscopic offset.

    Turns a regular/symmetric configuration into a near miss: all other
    structure intact, one ray angle off as seen from the former center.
    Used to verify detectors reject almost-QR configurations instead of
    rounding them in.

    With ``tangential_about`` the nudge is applied *perpendicular* to the
    ray from that point (and points sitting on it are never chosen).
    This matters for negative QR workloads: regularity is an angular
    property, so a nudge with a large radial component can leave the
    configuration genuinely quasi-regular — only the tangential part
    breaks the structure.

    ``count`` nudges that many *distinct* robots.  One nudge is not
    always a negative: a configuration with ``k`` wildcard robots on its
    center can absorb up to ``k`` dislodged rays (Lemma 3.4!), so
    negative workloads for occupied-center configurations must displace
    more robots than the center holds.
    """
    if not points:
        return []
    rng = random.Random(seed)
    out = list(points)
    if tangential_about is None:
        candidates = list(range(len(points)))
    else:
        candidates = [
            i
            for i, p in enumerate(points)
            if p.distance_to(tangential_about) > 3.0 * magnitude
        ]
        if len(candidates) < count:
            raise ValueError("not enough points far from the center to nudge")
    chosen = rng.sample(candidates, count)
    for index in chosen:
        p = out[index]
        if tangential_about is None:
            angle = rng.uniform(0.0, 2.0 * math.pi)
            offset = Point(
                magnitude * math.cos(angle), magnitude * math.sin(angle)
            )
        else:
            radial = (p - tangential_about).normalized()
            sign = 1.0 if rng.random() < 0.5 else -1.0
            offset = radial.perpendicular() * (sign * magnitude)
        out[index] = p + offset
    return out
