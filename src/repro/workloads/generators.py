"""Seeded workload generators — one per configuration class.

Every generator returns a plain list of :class:`Point` (the engine's
input) and is deterministic in its ``seed``.  Class-targeted generators
*verify* their output lands in the intended class and re-draw otherwise,
so experiments can rely on the label.

The geometry is kept at unit scale (coordinates within a few units);
tolerances and deltas in the experiments are chosen relative to that.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Optional

from ..core import ConfigClass, Configuration, classify
from ..geometry import DEFAULT_TOLERANCE, Point, Tolerance, rotate_clockwise

__all__ = [
    "random_points",
    "gathered",
    "multiple",
    "bivalent",
    "near_bivalent",
    "linear_unique_weber",
    "linear_weber_interval_config",
    "regular_polygon",
    "biangular",
    "quasi_regular_occupied_center",
    "asymmetric",
    "generate",
    "CLASS_GENERATORS",
]


def _rng(seed: int) -> random.Random:
    return random.Random(seed)


def random_points(n: int, seed: int = 0, scale: float = 10.0) -> List[Point]:
    """``n`` i.i.d. uniform points in a ``scale x scale`` square.

    Almost surely distinct, non-collinear and asymmetric — the "generic"
    workload.
    """
    if n < 1:
        raise ValueError("need at least one robot")
    rng = _rng(seed)
    return [
        Point(rng.uniform(0.0, scale), rng.uniform(0.0, scale))
        for _ in range(n)
    ]


def gathered(n: int, seed: int = 0, scale: float = 10.0) -> List[Point]:
    """All robots at one point — the trivial gathered configuration."""
    rng = _rng(seed)
    p = Point(rng.uniform(0.0, scale), rng.uniform(0.0, scale))
    return [p] * n


def multiple(n: int, seed: int = 0, scale: float = 10.0) -> List[Point]:
    """A configuration of class ``M``: one strict maximum multiplicity.

    Places ``k >= 2`` robots on a single point (with ``k`` strictly above
    every other multiplicity) and spreads the rest.
    """
    if n < 3:
        raise ValueError("class M with distinct other points needs n >= 3")
    seed_try = seed
    while True:
        rng = _rng(seed_try)
        k = rng.randint(2, max(2, n - 1))
        anchor = Point(rng.uniform(0, scale), rng.uniform(0, scale))
        pts = [anchor] * k
        while len(pts) < n:
            pts.append(Point(rng.uniform(0, scale), rng.uniform(0, scale)))
        if classify(Configuration(pts)) is ConfigClass.MULTIPLE:
            return pts
        seed_try += 7919


def bivalent(n: int, seed: int = 0, scale: float = 10.0) -> List[Point]:
    """The impossible configuration ``B``: two points, ``n/2`` robots each."""
    if n < 2 or n % 2 != 0:
        raise ValueError("bivalent configurations need an even n >= 2")
    rng = _rng(seed)
    a = Point(rng.uniform(0, scale), rng.uniform(0, scale))
    b = Point(rng.uniform(0, scale), rng.uniform(0, scale))
    while b.close_to(a, DEFAULT_TOLERANCE):
        b = Point(rng.uniform(0, scale), rng.uniform(0, scale))
    return [a] * (n // 2) + [b] * (n // 2)


def near_bivalent(n: int, seed: int = 0, scale: float = 10.0) -> List[Point]:
    """Two clusters of sizes ``ceil`` / ``floor`` of ``n/2`` plus jitter.

    The workload of the safe-point ablation (experiment E9): one greedy
    step away from the bivalent trap.
    """
    if n < 3:
        raise ValueError("need n >= 3")
    seed_try = seed
    while True:
        rng = _rng(seed_try)
        a = Point(rng.uniform(0, scale), rng.uniform(0, scale))
        b = Point(rng.uniform(0, scale), rng.uniform(0, scale))
        while b.distance_to(a) < scale / 4:
            b = Point(rng.uniform(0, scale), rng.uniform(0, scale))
        k = n // 2
        pts = [a] * (n - k - 1) + [b] * k
        # One stray robot keeps the configuration out of B while leaving
        # it one merge away from it.
        pts.append(Point(rng.uniform(0, scale), rng.uniform(0, scale)))
        if classify(Configuration(pts)) is not ConfigClass.BIVALENT:
            return pts
        seed_try += 7919


def linear_unique_weber(n: int, seed: int = 0, scale: float = 10.0) -> List[Point]:
    """A collinear configuration of class ``L1W`` (unique median).

    Odd counts: distinct random points on a line (the median is unique,
    and with all multiplicities 1 there is no unique maximum).  Even
    counts need multiplicity ties: we use the block pattern
    ``(k, 2, k)`` with ``k = n/2 - 1`` — the median falls inside the
    middle block while the maximum multiplicity is shared by the two
    outer blocks.  (``n = 4`` admits no L1W configuration at all: three
    collinear locations with total multiplicity 4 always have a unique
    maximum, and four distinct points have a median interval.)
    """
    if n < 3 or n == 4:
        raise ValueError("L1W needs n = 3 or n >= 5")
    rng = _rng(seed)
    seed_try = seed
    while True:
        rng = _rng(seed_try)
        origin = Point(rng.uniform(0, scale), rng.uniform(0, scale))
        angle = rng.uniform(0, 2 * math.pi)
        direction = Point(math.cos(angle), math.sin(angle))
        if n % 2 == 1:
            ts = sorted(rng.uniform(-scale, scale) for _ in range(n))
        else:
            k = n // 2 - 1
            t1, t2, t3 = sorted(rng.uniform(-scale, scale) for _ in range(3))
            ts = [t1] * k + [t2] * 2 + [t3] * k
        pts = [origin + direction * t for t in ts]
        if classify(Configuration(pts)) is ConfigClass.LINEAR_UNIQUE_WEBER:
            return pts
        seed_try += 7919


def linear_weber_interval_config(
    n: int, seed: int = 0, scale: float = 10.0
) -> List[Point]:
    """A collinear configuration of class ``L2W`` (median interval).

    Needs an even number of robots on at least four distinct points
    (Lemma 4.1) with distinct middle order statistics and no unique
    multiplicity maximum.
    """
    if n < 4 or n % 2 != 0:
        raise ValueError("L2W needs an even n >= 4 (Lemma 4.1)")
    rng = _rng(seed)
    origin = Point(rng.uniform(0, scale), rng.uniform(0, scale))
    angle = rng.uniform(0, 2 * math.pi)
    direction = Point(math.cos(angle), math.sin(angle))
    while True:
        ts = sorted(rng.uniform(-scale, scale) for _ in range(n))
        if abs(ts[n // 2 - 1] - ts[n // 2]) < 1e-3:
            continue
        pts = [origin + direction * t for t in ts]
        config = Configuration(pts)
        if classify(config) is ConfigClass.LINEAR_MANY_WEBER:
            return pts


def regular_polygon(
    n: int, seed: int = 0, scale: float = 10.0, center_robots: int = 0
) -> List[Point]:
    """``n - center_robots`` robots on a regular polygon, rest at center.

    A rotationally symmetric configuration — class ``QR`` (every
    symmetric configuration is regular, hence quasi-regular).
    """
    k = n - center_robots
    if k < 3:
        raise ValueError("need at least 3 robots on the polygon")
    rng = _rng(seed)
    center = Point(rng.uniform(0, scale), rng.uniform(0, scale))
    radius = rng.uniform(scale / 4, scale / 2)
    phase = rng.uniform(0, 2 * math.pi)
    pts = [
        Point(
            center.x + radius * math.cos(phase + 2 * math.pi * i / k),
            center.y + radius * math.sin(phase + 2 * math.pi * i / k),
        )
        for i in range(k)
    ]
    pts.extend([center] * center_robots)
    return pts


def biangular(n: int, seed: int = 0, scale: float = 10.0) -> List[Point]:
    """A biangular configuration: angles alternate ``alpha, beta`` around
    the center, radii free (class ``QR`` via regularity with ``m = n/2``).

    Requires an even ``n >= 6``; radii are drawn independently per robot,
    so the configuration is regular but (generically) *not* symmetric —
    the case where the string-of-angles machinery genuinely earns its
    keep.
    """
    if n < 6 or n % 2 != 0:
        raise ValueError("biangular configurations need an even n >= 6")
    seed_try = seed
    while True:
        rng = _rng(seed_try)
        center = Point(rng.uniform(0, scale), rng.uniform(0, scale))
        half = n // 2
        alpha = rng.uniform(0.2, 2 * math.pi / half - 0.2)
        beta = 2 * math.pi / half - alpha
        phase = rng.uniform(0, 2 * math.pi)
        pts: List[Point] = []
        angle = phase
        for i in range(n):
            radius = rng.uniform(scale / 8, scale / 2)
            pts.append(
                Point(
                    center.x + radius * math.cos(angle),
                    center.y + radius * math.sin(angle),
                )
            )
            angle += alpha if i % 2 == 0 else beta
        if classify(Configuration(pts)) is ConfigClass.QUASI_REGULAR:
            return pts
        seed_try += 7919


def quasi_regular_occupied_center(
    n: int, seed: int = 0, scale: float = 10.0
) -> List[Point]:
    """Quasi-regular with an *occupied* center — the Lemma 3.4 case.

    Construction (period ``m = 2``): one robot at the center, the others
    on singleton rays that come in opposite pairs; for even ``n`` one
    ray is left unpaired, so the angular pattern has a one-slot
    deficiency and the center robot is exactly the wildcard Lemma 3.4
    spends to complete it.  The center's multiplicity must stay 1:
    stacking more robots there would make it the unique maximum and the
    class would collapse to ``M``.
    """
    if n < 6:
        raise ValueError("need n >= 6")
    seed_try = seed
    while True:
        rng = _rng(seed_try)
        center = Point(rng.uniform(0, scale), rng.uniform(0, scale))
        unpaired = (n - 1) % 2  # 0 for odd n, 1 for even n
        pairs = (n - 1 - unpaired) // 2
        angles = sorted(
            rng.uniform(0.05, math.pi - 0.05) for _ in range(pairs)
        )
        pts = [center]
        for a in angles:
            for direction in (a, a + math.pi):
                radius = rng.uniform(scale / 8, scale / 2)
                pts.append(
                    Point(
                        center.x + radius * math.cos(direction),
                        center.y + radius * math.sin(direction),
                    )
                )
        if unpaired:
            beta = rng.uniform(0.05, math.pi - 0.05) + math.pi / 2.0
            radius = rng.uniform(scale / 8, scale / 2)
            pts.append(
                Point(
                    center.x + radius * math.cos(beta),
                    center.y + radius * math.sin(beta),
                )
            )
        pts = pts[:n]
        if classify(Configuration(pts)) is ConfigClass.QUASI_REGULAR:
            return pts
        seed_try += 7919


def unsafe_ray(n: int, seed: int = 0, scale: float = 10.0) -> List[Point]:
    """A class-``M`` configuration whose gathering target is *unsafe*.

    Layout (even ``n >= 6``): the maximum-multiplicity point ``p`` holds
    ``n/2 - 1`` robots; ``n/2`` robots sit at distinct positions on a
    single half-line from ``p``; one stray robot sits off the line.  The
    ray from ``p`` carries ``ceil(n/2)`` robots, so ``p`` violates
    Definition 8 — an algorithm that sends the ray robots *straight* at
    ``p`` lets a collusive movement adversary stack them into one point
    of multiplicity ``n/2`` while the stray tops ``p`` up to ``n/2``:
    the bivalent trap.  The paper's side-step rule (case ``M``) exists
    precisely to make this impossible.  Used by experiment E9.
    """
    if n < 6 or n % 2 != 0:
        raise ValueError("unsafe-ray needs an even n >= 6")
    rng = _rng(seed)
    p = Point(rng.uniform(0, scale), rng.uniform(0, scale))
    angle = rng.uniform(0, 2 * math.pi)
    direction = Point(math.cos(angle), math.sin(angle))
    ray_count = n // 2
    distances = sorted(
        rng.uniform(scale / 4, scale) for _ in range(ray_count)
    )
    pts = [p] * (n // 2 - 1)
    pts.extend(p + direction * d for d in distances)
    side = direction.perpendicular()
    pts.append(p + side * rng.uniform(scale / 4, scale / 2))
    config = Configuration(pts)
    assert classify(config) is ConfigClass.MULTIPLE
    return pts


def asymmetric(n: int, seed: int = 0, scale: float = 10.0) -> List[Point]:
    """A configuration of class ``A`` — generic position, verified."""
    if n < 3:
        raise ValueError("need n >= 3")
    seed_try = seed
    while True:
        pts = random_points(n, seed_try, scale)
        if classify(Configuration(pts)) is ConfigClass.ASYMMETRIC:
            return pts
        seed_try += 7919


#: Generators per configuration class, used by experiments and the CLI.
CLASS_GENERATORS: Dict[str, Callable[[int, int], List[Point]]] = {
    "random": random_points,
    "gathered": gathered,
    "multiple": multiple,
    "bivalent": bivalent,
    "near-bivalent": near_bivalent,
    "linear-unique": linear_unique_weber,
    "linear-interval": linear_weber_interval_config,
    "regular-polygon": regular_polygon,
    "biangular": biangular,
    "qr-occupied-center": quasi_regular_occupied_center,
    "unsafe-ray": unsafe_ray,
    "asymmetric": asymmetric,
}


def generate(kind: str, n: int, seed: int = 0, scale: float = 10.0) -> List[Point]:
    """Dispatch on a workload kind name (see :data:`CLASS_GENERATORS`)."""
    try:
        gen = CLASS_GENERATORS[kind]
    except KeyError:
        known = ", ".join(sorted(CLASS_GENERATORS))
        raise ValueError(f"unknown workload kind {kind!r}; known: {known}")
    return gen(n, seed, scale)
