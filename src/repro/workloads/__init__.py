"""Workload generators for every configuration class, plus perturbations."""

from .generators import (
    CLASS_GENERATORS,
    asymmetric,
    biangular,
    bivalent,
    gathered,
    generate,
    linear_unique_weber,
    linear_weber_interval_config,
    multiple,
    near_bivalent,
    quasi_regular_occupied_center,
    random_points,
    regular_polygon,
    unsafe_ray,
)
from .perturb import break_symmetry, jitter

__all__ = [
    "CLASS_GENERATORS",
    "asymmetric",
    "biangular",
    "bivalent",
    "gathered",
    "generate",
    "linear_unique_weber",
    "linear_weber_interval_config",
    "multiple",
    "near_bivalent",
    "quasi_regular_occupied_center",
    "random_points",
    "regular_polygon",
    "unsafe_ray",
    "break_symmetry",
    "jitter",
]
