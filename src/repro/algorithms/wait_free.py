"""The paper's algorithm as a pluggable :class:`GatheringAlgorithm`."""

from __future__ import annotations

from ..core import Configuration, wait_free_gather
from ..geometry import Point

__all__ = ["WaitFreeGather"]


class WaitFreeGather:
    """``WAIT-FREE-GATHER`` (Bouzid–Das–Tixeuil, Figure 2).

    Tolerates up to ``n - 1`` crash faults from any non-bivalent initial
    configuration in the ATOM model with strong multiplicity detection
    and chirality (Theorem 5.1).  This class is a thin adapter over
    :func:`repro.core.wait_free_gather`, which holds the real logic.
    """

    name = "wait-free-gather"

    def compute(self, config: Configuration, me: Point) -> Point:
        return wait_free_gather(config, me)
