"""The interface every gathering algorithm implements.

A gathering algorithm in the LCM model is a *pure function* of the
snapshot: given the observed configuration (in the robot's own coordinate
system) and the robot's own position within it, return the destination.
Purity is what makes the robots oblivious — no state survives between
cycles — and anonymous — the function never sees an identity.

The simulation engine invokes :meth:`GatheringAlgorithm.compute` with the
snapshot expressed in each robot's private frame, so implementations must
be invariant only up to the capabilities they claim (chirality yes,
common North no).  A property test runs the paper's algorithm in random
frames and checks the global behaviour is frame-independent.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..core import Configuration
from ..geometry import Point

__all__ = ["GatheringAlgorithm"]


@runtime_checkable
class GatheringAlgorithm(Protocol):
    """Protocol for LCM gathering algorithms.

    Attributes
    ----------
    name:
        Stable identifier used in experiment tables and traces.
    """

    name: str

    def compute(self, config: Configuration, me: Point) -> Point:
        """Destination for the robot located at ``me`` given ``config``.

        Both ``config`` and ``me`` are expressed in the calling robot's
        local coordinate system; the returned point is interpreted in the
        same system.  Implementations may raise
        :class:`repro.core.BivalentConfigurationError` when the task is
        provably impossible from ``config``.
        """
        ...
