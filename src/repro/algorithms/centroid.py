"""Gravitational convergence baseline (reference [9] of the paper).

Every robot moves towards the center of gravity of the observed
configuration.  This *converges* — the robots approach a common location
— but does not *gather*: the centroid moves whenever a strict subset of
the robots moves, so the robots chase a drifting target and (except from
symmetric starts under FSYNC) never all coincide.  Crashes make it worse:
a crashed robot permanently drags the centroid towards itself, so the
live robots converge to a point weighted by the corpses.

The baseline exists to demonstrate the gathering-vs-convergence gap the
paper's introduction draws (experiment E4).
"""

from __future__ import annotations

from ..core import Configuration
from ..geometry import Point, centroid

__all__ = ["CentroidConvergence"]


class CentroidConvergence:
    """Move to the center of gravity of all observed robots."""

    name = "centroid"

    def compute(self, config: Configuration, me: Point) -> Point:
        return centroid(config.points)
