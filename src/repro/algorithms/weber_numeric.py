"""Numerical move-to-Weber-point baseline.

If the Weber point were computable, gathering would be trivial: everyone
walks towards it and Lemma 3.2 keeps it fixed while they do.  The paper's
whole difficulty is that no finite algorithm computes the Weber point of
an *arbitrary* configuration.  This baseline "cheats" with a numerical
geometric-median solver (Weiszfeld to ~1e-12), which a real oblivious
robot cannot do exactly — but in simulation it provides:

* an upper-bound reference for convergence speed (experiment E4), and
* ground truth for validating the exact quasi-regular Weber computation
  (experiment E7).

Degenerate cases are inherited from the mathematics: for a linear
configuration with a median *interval* the chosen point (the interval
midpoint) is **not** invariant under partial moves, and from a bivalent
configuration the baseline oscillates — both failures are measured, and
both are exactly the cases the paper handles specially.
"""

from __future__ import annotations

from ..core import Configuration, numeric_weber_point
from ..geometry import Point

__all__ = ["NumericalWeberGather"]


class NumericalWeberGather:
    """Move towards the numerically computed geometric median."""

    name = "weber-numeric"

    def compute(self, config: Configuration, me: Point) -> Point:
        target = numeric_weber_point(config)
        if target is None:
            # Uncertified solve (numerically pathological input): the
            # robot has no better idea than staying put this cycle.
            return me
        return target
