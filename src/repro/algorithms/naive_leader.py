"""Ablation baseline: leader election *without* the safe-point filter.

This algorithm is ``WAIT-FREE-GATHER``'s asymmetric-case rule applied
indiscriminately: elect the position maximizing ``(mult, -sum of
distances, view)`` over **all** occupied positions — ignoring the safe
point restriction (Definition 8) and the special cases for linear,
quasi-regular and bivalent configurations — and send everyone there.

It is wait-free and often works, but it demonstrates precisely why the
paper's machinery exists:

* Electing an *unsafe* point can funnel ``>= ceil(n/2)`` robots down one
  ray; an adversarial move cut-off then stacks them into a **bivalent**
  configuration, from which no deterministic algorithm recovers
  (Lemma 5.2).  Experiment E9 measures how often this happens on
  near-bivalent workloads.
* In a rotationally symmetric configuration the views tie, the "unique"
  maximum does not exist, and anonymous robots cannot agree: this
  implementation then falls back to the tied candidate nearest the
  caller, which scatters the team (each orbit member pulls towards a
  different corner) — the failure the quasi-regular Weber point rule
  repairs.
"""

from __future__ import annotations

from typing import List

from ..core import Configuration, election_key
from ..geometry import Point

__all__ = ["NaiveLeaderGather"]


class NaiveLeaderGather:
    """Elect max-(mult, -distance sum, view) over all positions; no safety."""

    name = "naive-leader"

    def compute(self, config: Configuration, me: Point) -> Point:
        best_key = max(election_key(config, p) for p in config.support)
        tied: List[Point] = [
            p
            for p in config.support
            if election_key(config, p) == best_key
        ]
        if len(tied) == 1:
            return tied[0]
        # Symmetric tie: anonymous robots cannot agree on a common
        # winner; each follows the tied candidate nearest itself (a
        # realistic — and provably inadequate — local heuristic).
        return min(tied, key=me.distance_to)
