"""Gathering algorithms: the paper's contribution and the baselines.

========================  ====================================================
Algorithm                 Role
========================  ====================================================
:class:`WaitFreeGather`   The paper (Figure 2); tolerates ``f < n`` crashes.
:class:`CentroidConvergence`  Gravitational convergence [9]; converges, never
                          gathers, corrupted by crashed robots.
:class:`NumericalWeberGather` Idealized move-to-Weber; upper-bound reference
                          and ground truth for the exact QR computation.
:class:`SequentialGather` Classic single-mover gathering; deadlocks under one
                          crash (wait-freedom motivation, Lemma 5.1).
:class:`NaiveLeaderGather` Election without safe points; can be driven into
                          the bivalent trap (ablation of Definition 8).
========================  ====================================================
"""

from .base import GatheringAlgorithm
from .centroid import CentroidConvergence
from .naive_leader import NaiveLeaderGather
from .sequential import SequentialGather
from .wait_free import WaitFreeGather
from .weber_numeric import NumericalWeberGather

__all__ = [
    "GatheringAlgorithm",
    "CentroidConvergence",
    "NaiveLeaderGather",
    "SequentialGather",
    "WaitFreeGather",
    "NumericalWeberGather",
]

#: Registry used by the CLI and the experiment harness.
ALGORITHMS = {
    cls.name: cls
    for cls in (
        WaitFreeGather,
        CentroidConvergence,
        NumericalWeberGather,
        SequentialGather,
        NaiveLeaderGather,
    )
}

__all__.append("ALGORITHMS")
