"""Classic wait-*ful* gathering baseline — the algorithm crashes break.

This reconstructs the pre-fault-tolerance style of gathering algorithm
that the paper (and Agmon–Peleg [1]) use as a foil: establish a unique
point of maximum multiplicity, then let robots join it **one at a time**
in a fixed order, every other robot *waiting* for its turn.  Ordered
joining guarantees no second multiplicity point ever forms, which makes
the algorithm correct for fault-free executions — and deadlock-prone the
moment one robot crashes:

* if the *designated mover* crashes, every other robot waits forever
  (the execution stalls in a non-gathered fixpoint);
* Lemma 5.1's wait-freedom condition ``|U(P \\ M(P, A))| <= 1`` is
  violated at every configuration with more than two occupied points.

Experiment E5 measures both effects.  The mover is chosen anonymously:
the occupied position closest to the target, ties broken by the view
order, so all robots agree on who moves without identities.
"""

from __future__ import annotations

from typing import List, Optional

from ..core import Configuration, election_key
from ..geometry import Point

__all__ = ["SequentialGather"]


class SequentialGather:
    """Single-mover gathering: correct without faults, deadlocks with one."""

    name = "sequential"

    def _target(self, config: Configuration) -> Point:
        tops = config.max_multiplicity_points()
        if len(tops) == 1:
            return tops[0]
        # No unique multiplicity point yet (e.g. the initial all-distinct
        # configuration): bootstrap deterministically towards the
        # election-maximal position.
        return max(tops, key=lambda p: election_key(config, p))

    def compute(self, config: Configuration, me: Point) -> Point:
        target = self._target(config)
        r = config.locate(me)
        if r is None or r == target:
            return me
        candidates: List[Point] = [
            p for p in config.support if p != target
        ]
        # Designated mover: nearest to the target; break distance ties
        # with the election key so the choice is common to all robots.
        mover = min(
            candidates,
            key=lambda p: (
                config.tol.quantize_length(p.distance_to(target)),
                election_key(config, p),
            ),
        )
        if r == mover:
            return target
        return me  # everyone else waits for the mover — NOT wait-free
