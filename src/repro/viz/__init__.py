"""SVG rendering of configurations and executions (no plotting deps)."""

from .render import render_configuration, render_trace, robot_color
from .svg import SvgDocument

__all__ = [
    "render_configuration",
    "render_trace",
    "robot_color",
    "SvgDocument",
]
