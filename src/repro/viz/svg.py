"""A minimal, dependency-free SVG document builder.

The offline reproduction environment has no plotting library, but SVG is
plain text: this module provides just enough of it to draw robot
configurations and execution trajectories.  Elements are accumulated in
document order; :meth:`SvgDocument.to_string` serializes with proper XML
escaping.  Only the primitives the renderers need are implemented —
circles, lines, polylines, paths, rectangles, text and groups.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape, quoteattr

__all__ = ["SvgDocument"]


def _fmt(value: float) -> str:
    """Compact numeric formatting: trims trailing zeros, 3 decimals."""
    if isinstance(value, float):
        text = f"{value:.3f}".rstrip("0").rstrip(".")
        return text if text not in ("", "-") else "0"
    return str(value)


class SvgDocument:
    """An SVG scene with a fixed pixel viewport.

    Coordinates given to the drawing methods are *world* coordinates;
    the document maps the world window ``(x0, y0)-(x1, y1)`` onto the
    pixel viewport with the y-axis flipped (SVG grows downward, the
    plane grows upward) and a uniform scale.
    """

    def __init__(
        self,
        width: int = 640,
        height: int = 640,
        world: Optional[Tuple[float, float, float, float]] = None,
        margin: float = 0.05,
        background: str = "#ffffff",
    ) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("viewport must be positive")
        self.width = width
        self.height = height
        self._elements: List[str] = []
        self.background = background
        if world is None:
            world = (0.0, 0.0, 1.0, 1.0)
        self.set_world(world, margin)

    # -- coordinate mapping ---------------------------------------------------

    def set_world(
        self, world: Tuple[float, float, float, float], margin: float = 0.05
    ) -> None:
        """Define the world-coordinate window shown by the viewport."""
        x0, y0, x1, y1 = world
        if x1 <= x0:
            x1 = x0 + 1.0
        if y1 <= y0:
            y1 = y0 + 1.0
        pad_x = (x1 - x0) * margin
        pad_y = (y1 - y0) * margin
        x0, x1 = x0 - pad_x, x1 + pad_x
        y0, y1 = y0 - pad_y, y1 + pad_y
        span = max(x1 - x0, y1 - y0)
        # Center the square world window.
        cx, cy = (x0 + x1) / 2.0, (y0 + y1) / 2.0
        self._x0 = cx - span / 2.0
        self._y0 = cy - span / 2.0
        self._scale = min(self.width, self.height) / span

    def px(self, x: float, y: float) -> Tuple[float, float]:
        """World -> pixel (y flipped)."""
        return (
            (x - self._x0) * self._scale,
            self.height - (y - self._y0) * self._scale,
        )

    # -- primitives -------------------------------------------------------------

    def _tag(self, name: str, attrs: Dict[str, object], body: str = "") -> None:
        parts = [f"<{name}"]
        for key, value in attrs.items():
            if value is None:
                continue
            rendered = _fmt(value) if isinstance(value, float) else str(value)
            parts.append(f" {key}={quoteattr(rendered)}")
        if body:
            parts.append(f">{body}</{name}>")
        else:
            parts.append("/>")
        self._elements.append("".join(parts))

    def circle(
        self,
        x: float,
        y: float,
        radius_px: float,
        fill: str = "#000000",
        stroke: Optional[str] = None,
        stroke_width: float = 1.0,
        opacity: float = 1.0,
        title: Optional[str] = None,
    ) -> None:
        cx, cy = self.px(x, y)
        body = f"<title>{escape(title)}</title>" if title else ""
        self._tag(
            "circle",
            {
                "cx": cx,
                "cy": cy,
                "r": radius_px,
                "fill": fill,
                "stroke": stroke,
                "stroke-width": stroke_width if stroke else None,
                "opacity": opacity,
            },
            body,
        )

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        stroke: str = "#000000",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
        dashed: bool = False,
    ) -> None:
        px1, py1 = self.px(x1, y1)
        px2, py2 = self.px(x2, y2)
        self._tag(
            "line",
            {
                "x1": px1,
                "y1": py1,
                "x2": px2,
                "y2": py2,
                "stroke": stroke,
                "stroke-width": stroke_width,
                "opacity": opacity,
                "stroke-dasharray": "4 3" if dashed else None,
            },
        )

    def polyline(
        self,
        points: Sequence[Tuple[float, float]],
        stroke: str = "#000000",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        if len(points) < 2:
            return
        rendered = " ".join(
            f"{_fmt(px)},{_fmt(py)}" for px, py in (self.px(x, y) for x, y in points)
        )
        self._tag(
            "polyline",
            {
                "points": rendered,
                "fill": "none",
                "stroke": stroke,
                "stroke-width": stroke_width,
                "opacity": opacity,
                "stroke-linejoin": "round",
            },
        )

    def cross(
        self,
        x: float,
        y: float,
        size_px: float = 5.0,
        stroke: str = "#cc0000",
        stroke_width: float = 1.5,
    ) -> None:
        """An X marker (used for crash sites)."""
        cx, cy = self.px(x, y)
        for dx, dy in ((1, 1), (1, -1)):
            self._elements.append(
                f'<line x1={quoteattr(_fmt(cx - size_px * dx))} '
                f'y1={quoteattr(_fmt(cy - size_px * dy))} '
                f'x2={quoteattr(_fmt(cx + size_px * dx))} '
                f'y2={quoteattr(_fmt(cy + size_px * dy))} '
                f'stroke={quoteattr(stroke)} '
                f'stroke-width={quoteattr(_fmt(stroke_width))}/>'
            )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size_px: float = 12.0,
        fill: str = "#333333",
        anchor: str = "start",
    ) -> None:
        px, py = self.px(x, y)
        self._tag(
            "text",
            {
                "x": px,
                "y": py,
                "font-size": size_px,
                "fill": fill,
                "text-anchor": anchor,
                "font-family": "monospace",
            },
            escape(content),
        )

    def text_px(
        self,
        px: float,
        py: float,
        content: str,
        size_px: float = 12.0,
        fill: str = "#333333",
        anchor: str = "start",
    ) -> None:
        """Text at raw pixel coordinates (captions, legends)."""
        self._tag(
            "text",
            {
                "x": px,
                "y": py,
                "font-size": size_px,
                "fill": fill,
                "text-anchor": anchor,
                "font-family": "monospace",
            },
            escape(content),
        )

    # -- output ---------------------------------------------------------------

    def to_string(self) -> str:
        head = (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">'
        )
        bg = (
            f'<rect x="0" y="0" width="{self.width}" height="{self.height}" '
            f'fill={quoteattr(self.background)}/>'
        )
        return "\n".join([head, bg, *self._elements, "</svg>"])

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_string())
