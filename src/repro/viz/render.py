"""Renderers: configurations and execution traces as SVG scenes.

Two entry points:

* :func:`render_configuration` — a single snapshot with multiplicity
  labels, the smallest enclosing circle, the Weber point (when exactly
  computable) and safe-point highlighting;
* :func:`render_trace` — a whole execution: per-robot trajectories
  (colored), start markers, crash sites, the gathering point, and a
  caption with the class trajectory.

Both return the SVG text; callers save it wherever they want.  These are
diagnostic drawings for humans, not paper figures — the experiment
tables in EXPERIMENTS.md are the quantitative product.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core import (
    ConfigClass,
    Configuration,
    classify,
    quasi_regularity,
    safe_points,
)
from ..geometry import Point
from ..sim import SimulationResult, Trace
from .svg import SvgDocument

__all__ = ["render_configuration", "render_trace", "robot_color"]

#: Qualitative palette (colorblind-aware Okabe-Ito-ish), cycled per robot.
_PALETTE = [
    "#0072b2",
    "#e69f00",
    "#009e73",
    "#cc79a7",
    "#56b4e9",
    "#d55e00",
    "#f0e442",
    "#7f7f7f",
]


def robot_color(robot_id: int) -> str:
    """Stable color for a robot id."""
    return _PALETTE[robot_id % len(_PALETTE)]


def _world_of(points: Sequence[Point]) -> Tuple[float, float, float, float]:
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    return (min(xs), min(ys), max(xs), max(ys))


def render_configuration(
    config: Configuration,
    width: int = 480,
    height: int = 480,
    caption: Optional[str] = None,
) -> str:
    """One snapshot: support points sized/labelled by multiplicity.

    Safe points get a green halo; the smallest enclosing circle is drawn
    dashed; the exactly-computable Weber point (QR center / L1W median)
    is marked with a small diamond-ish dot.
    """
    doc = SvgDocument(width, height, world=_world_of(config.points))
    sec = config.sec()
    # SEC outline (dashed ring approximated by a plain circle element).
    cx, cy = doc.px(sec.center.x, sec.center.y)
    doc._elements.append(
        f'<circle cx="{cx:.2f}" cy="{cy:.2f}" '
        f'r="{sec.radius * doc._scale:.2f}" fill="none" '
        f'stroke="#bbbbbb" stroke-width="1" stroke-dasharray="5 4"/>'
    )

    cls = classify(config)
    safe = set(safe_points(config))
    for p in config.support:
        mult = config.mult(p)
        if p in safe:
            doc.circle(p.x, p.y, 9.0, fill="none", stroke="#2ca02c",
                       stroke_width=1.5, opacity=0.9)
        doc.circle(
            p.x,
            p.y,
            3.5 + 1.5 * (mult - 1),
            fill="#1f3b70",
            title=f"mult={mult}",
        )
        if mult > 1:
            doc.text(p.x, p.y, f" x{mult}", size_px=11, fill="#1f3b70")

    qr = quasi_regularity(config)
    if qr.is_quasi_regular:
        doc.circle(qr.center.x, qr.center.y, 3.0, fill="#d62728",
                   title=f"Weber point (qreg={qr.m})")

    doc.text_px(
        8, 16, caption or f"class {cls} | n={config.n}", size_px=13
    )
    return doc.to_string()


def render_trace(
    trace: Trace,
    result: Optional[SimulationResult] = None,
    width: int = 640,
    height: int = 640,
    caption: Optional[str] = None,
) -> str:
    """A whole execution: one polyline per robot across all rounds."""
    if len(trace) == 0:
        raise ValueError("cannot render an empty trace")

    # Reconstruct per-robot position sequences from the recorded
    # configurations (points preserve robot order).
    first = trace.records[0].config_before
    n = first.n
    paths: List[List[Point]] = [[] for _ in range(n)]
    for record in trace:
        for rid in range(n):
            paths[rid].append(record.config_before.points[rid])
    last = trace.records[-1].config_after
    for rid in range(n):
        paths[rid].append(last.points[rid])

    every_point = [p for path in paths for p in path]
    doc = SvgDocument(width, height, world=_world_of(every_point))

    crash_sites: Dict[int, Point] = {}
    for record in trace:
        for rid in record.crashed_now:
            crash_sites[rid] = record.config_before.points[rid]

    for rid, path in enumerate(paths):
        color = robot_color(rid)
        doc.polyline(
            [(p.x, p.y) for p in path],
            stroke=color,
            stroke_width=1.6,
            opacity=0.85,
        )
        start = path[0]
        doc.circle(start.x, start.y, 4.0, fill="none", stroke=color,
                   stroke_width=1.5, title=f"robot {rid} start")
        end = path[-1]
        doc.circle(end.x, end.y, 3.0, fill=color, title=f"robot {rid} end")

    for rid, site in crash_sites.items():
        doc.cross(site.x, site.y, size_px=5.0)

    if result is not None and result.gathering_point is not None:
        gp = result.gathering_point
        doc.circle(gp.x, gp.y, 7.0, fill="none", stroke="#2ca02c",
                   stroke_width=2.0, title="gathering point")

    classes = " > ".join(
        str(c)
        for c, _ in _dedup_consecutive(
            [r.config_class for r in trace]
        )
    )
    header = caption or (
        f"rounds={len(trace)}  classes: {classes}"
        + (f"  verdict={result.verdict}" if result else "")
    )
    doc.text_px(8, 16, header, size_px=13)
    doc.text_px(
        8, height - 8,
        "o start   * end   X crash   ring = gathering point",
        size_px=11, fill="#777777",
    )
    return doc.to_string()


def _dedup_consecutive(items: Sequence) -> List[Tuple[object, int]]:
    out: List[Tuple[object, int]] = []
    for item in items:
        if out and out[-1][0] == item:
            out[-1] = (item, out[-1][1] + 1)
        else:
            out.append((item, 1))
    return out
