"""Reproduction of *Gathering of Mobile Robots Tolerating Multiple Crash
Faults* (Bouzid, Das, Tixeuil; ICDCS 2013).

A complete implementation of the paper's wait-free gathering algorithm
for anonymous, oblivious, disoriented robots in the semi-synchronous
ATOM model with strong multiplicity detection and chirality — plus the
full substrate it needs (planar geometry, Weber points, configuration
classification) and an ATOM simulator with adversarial schedulers, crash
adversaries and interruptible movement.

Quickstart::

    from repro import WaitFreeGather, Simulation, RandomCrashes
    from repro.workloads import random_points

    sim = Simulation(
        WaitFreeGather(),
        random_points(n=8, seed=1),
        crash_adversary=RandomCrashes(f=7),
        seed=1,
    )
    result = sim.run()
    assert result.gathered  # all correct robots meet, despite 7 crashes

See DESIGN.md for the architecture and EXPERIMENTS.md for the
experiment-by-experiment validation of the paper's claims.
"""

from .algorithms import (
    ALGORITHMS,
    CentroidConvergence,
    GatheringAlgorithm,
    NaiveLeaderGather,
    NumericalWeberGather,
    SequentialGather,
    WaitFreeGather,
)
from .core import (
    BivalentConfigurationError,
    ConfigClass,
    Configuration,
    classify,
    is_gathering_possible,
    wait_free_gather,
)
from .geometry import Point, Tolerance
from .sim import (
    AdversarialStop,
    AntiGatherByzantine,
    AsyncSimulation,
    CollusiveStop,
    ElectionThiefByzantine,
    CrashAfterMove,
    CrashAtRounds,
    CrashElected,
    FullySynchronous,
    HalfSplitAdversary,
    LaggardAdversary,
    NoCrashes,
    PerRobotSpeed,
    PoissonScheduler,
    RandomCrashes,
    RandomStop,
    RandomSubset,
    RigidMovement,
    RoundRobin,
    Simulation,
    SimulationResult,
    StationaryByzantine,
    OscillatingByzantine,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "CentroidConvergence",
    "GatheringAlgorithm",
    "NaiveLeaderGather",
    "NumericalWeberGather",
    "SequentialGather",
    "WaitFreeGather",
    "BivalentConfigurationError",
    "ConfigClass",
    "Configuration",
    "classify",
    "is_gathering_possible",
    "wait_free_gather",
    "Point",
    "Tolerance",
    "AdversarialStop",
    "AntiGatherByzantine",
    "AsyncSimulation",
    "CollusiveStop",
    "ElectionThiefByzantine",
    "OscillatingByzantine",
    "StationaryByzantine",
    "CrashAfterMove",
    "CrashAtRounds",
    "CrashElected",
    "FullySynchronous",
    "HalfSplitAdversary",
    "LaggardAdversary",
    "NoCrashes",
    "PerRobotSpeed",
    "PoissonScheduler",
    "RandomCrashes",
    "RandomStop",
    "RandomSubset",
    "RigidMovement",
    "RoundRobin",
    "Simulation",
    "SimulationResult",
    "__version__",
]
