"""Crash-safe file writes: temp file + fsync + atomic rename.

A plain ``open(path, "w")`` interrupted mid-write leaves a truncated
file *at the final path* — which later poisons every consumer that
globs for it (``repro check --corpus`` over a half-written archive, the
bench regression guard over a torn history).  Every one-shot document
the harness writes (trace archives, bench history, obs streams) goes
through here instead: the content lands at the destination either whole
or not at all.
"""

from __future__ import annotations

import os
import tempfile

__all__ = ["atomic_write", "fsync_handle", "promote"]


def fsync_handle(handle) -> None:
    """Flush python and OS buffers of an open file handle to disk."""
    handle.flush()
    os.fsync(handle.fileno())


def promote(tmp_path: str, final_path: str) -> None:
    """Atomically move a fully-written temp file into its final place.

    ``os.replace`` is atomic on POSIX and Windows when source and
    destination share a filesystem — which they do, because every
    caller creates the temp file next to the destination.
    """
    os.replace(tmp_path, final_path)


def atomic_write(path: str, text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically (temp file + fsync + rename).

    Creates the parent directory if needed.  On any failure the partial
    temp file is removed; the destination is never left truncated —
    either the old content survives or the new content is complete.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            fsync_handle(handle)
        promote(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
