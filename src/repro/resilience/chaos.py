"""Deterministic chaos injection — ``REPRO_CHAOS`` / :class:`ChaosPolicy`.

The recovery guarantees of the resilient runner (retry, pool rebuild,
checkpoint-resume) are *proved* by the test suite rather than asserted:
a chaos policy kills worker processes, raises injected exceptions and
inserts delays at deterministic points, and the tests then require the
sweep to finish with results bit-identical to a clean sequential run.

Determinism is the whole design: every decision is a pure function of
``(policy.seed, item key, attempt number)`` via SHA-256, so a chaos run
is exactly reproducible across processes and platforms — a fault that
fired once fires every time, and a retry (which increments the attempt
number) re-rolls the dice in a reproducible way.

Environment syntax (comma-separated ``key=value``)::

    REPRO_CHAOS="seed=7,kill=0.2,error=0.1,delay=0.3,delay_s=0.5,match=seed3"

``kill``/``error``/``delay``
    Probabilities (decided once per attempt, mutually exclusive in that
    order) of: hard-killing the worker process (``os._exit``), raising
    :class:`~repro.resilience.errors.ChaosInjectedError`, or sleeping
    ``delay_s`` seconds before computing.
``match``
    Optional substring filter — only item keys containing it are
    eligible, which lets a test target one seed of a sweep.
``seed``
    Decorrelates one chaos schedule from another.

``raise`` is accepted as an alias for ``error``.

Serve-scoped faults (``repro serve`` consults these; the worker-side
``inject`` ignores them, so one spec can drive both layers)::

    REPRO_CHAOS="seed=7,serve_slow=0.3,serve_slow_s=0.2,store_read=0.2,store_write=0.2"

``serve_slow``
    Probability that a request handler sleeps ``serve_slow_s`` before
    doing any work — a synthetic slow client/handler that holds its
    admission slot and trips deadlines.
``store_read``/``store_write``
    Probabilities that one :class:`~repro.serve.store.ResultStore` disk
    read / write raises ``OSError`` — exercising exactly the production
    degradation paths (a failed read is a miss, a failed write degrades
    to memory-only), never a bespoke test-only branch.
"""

from __future__ import annotations

import hashlib
import os
import sys
import time
from dataclasses import dataclass
from typing import Optional

from .errors import ChaosInjectedError, ReproError

__all__ = ["ChaosPolicy", "CHAOS_ENV", "KILL_EXIT_CODE"]

#: Environment variable holding the policy spec.
CHAOS_ENV = "REPRO_CHAOS"

#: Exit status of a chaos-killed worker (distinctive in process tables).
KILL_EXIT_CODE = 86

_FIELD_ALIASES = {"raise": "error"}
_FLOAT_FIELDS = {
    "kill",
    "error",
    "delay",
    "delay_s",
    "serve_slow",
    "serve_slow_s",
    "store_read",
    "store_write",
}
_INT_FIELDS = {"seed"}
_STR_FIELDS = {"match"}


@dataclass(frozen=True)
class ChaosPolicy:
    """Seeded fault-injection schedule (picklable, crosses into workers)."""

    seed: int = 0
    kill: float = 0.0
    error: float = 0.0
    delay: float = 0.0
    delay_s: float = 0.05
    serve_slow: float = 0.0
    serve_slow_s: float = 0.05
    store_read: float = 0.0
    store_write: float = 0.0
    match: Optional[str] = None

    @property
    def enabled(self) -> bool:
        """Worker-side faults present (what the executor consults)."""
        return (self.kill + self.error + self.delay) > 0.0

    @property
    def serve_enabled(self) -> bool:
        """Serve-scoped faults present (what the daemon consults)."""
        return (self.serve_slow + self.store_read + self.store_write) > 0.0

    @classmethod
    def from_env(cls, environ: Optional[dict] = None) -> Optional["ChaosPolicy"]:
        """Parse ``REPRO_CHAOS``; ``None`` when unset or empty."""
        spec = (environ if environ is not None else os.environ).get(CHAOS_ENV, "")
        spec = spec.strip()
        if not spec:
            return None
        return cls.parse(spec)

    @classmethod
    def parse(cls, spec: str) -> "ChaosPolicy":
        """Parse a ``key=value,key=value`` spec string."""
        values: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ReproError(
                    f"bad {CHAOS_ENV} entry {part!r}: expected key=value"
                )
            key, _, raw = part.partition("=")
            key = _FIELD_ALIASES.get(key.strip(), key.strip())
            raw = raw.strip()
            try:
                if key in _FLOAT_FIELDS:
                    values[key] = float(raw)
                elif key in _INT_FIELDS:
                    values[key] = int(raw)
                elif key in _STR_FIELDS:
                    values[key] = raw
                else:
                    raise ReproError(
                        f"unknown {CHAOS_ENV} key {key!r}; known: "
                        f"{sorted(_FLOAT_FIELDS | _INT_FIELDS | _STR_FIELDS)}"
                    )
            except ValueError as exc:
                raise ReproError(
                    f"bad {CHAOS_ENV} value for {key!r}: {raw!r}"
                ) from exc
        return cls(**values)

    def to_spec(self) -> str:
        """Inverse of :meth:`parse` (for re-exporting into child envs)."""
        parts = [f"seed={self.seed}"]
        for name in ("kill", "error", "delay"):
            value = getattr(self, name)
            if value:
                parts.append(f"{name}={value}")
        if self.delay:
            parts.append(f"delay_s={self.delay_s}")
        for name in ("serve_slow", "store_read", "store_write"):
            value = getattr(self, name)
            if value:
                parts.append(f"{name}={value}")
        if self.serve_slow:
            parts.append(f"serve_slow_s={self.serve_slow_s}")
        if self.match:
            parts.append(f"match={self.match}")
        return ",".join(parts)

    # -- decisions ---------------------------------------------------------

    def _uniform(self, key: str, attempt: int) -> float:
        digest = hashlib.sha256(
            f"repro-chaos:{self.seed}:{key}:{attempt}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64

    def decide(self, key: str, attempt: int) -> Optional[str]:
        """The fault (``"kill" | "error" | "delay" | None``) scheduled for
        one attempt of one item — a pure function of its arguments."""
        if self.match is not None and self.match not in key:
            return None
        u = self._uniform(key, attempt)
        if u < self.kill:
            return "kill"
        if u < self.kill + self.error:
            return "error"
        if u < self.kill + self.error + self.delay:
            return "delay"
        return None

    def inject(self, key: str, attempt: int, allow_kill: bool = True) -> None:
        """Execute the scheduled fault, if any, for this attempt.

        ``allow_kill=False`` (serial execution in the parent process)
        converts a scheduled kill into an injected exception — chaos
        must never take down the orchestrating process itself.
        """
        fault = self.decide(key, attempt)
        if fault is None:
            return
        if fault == "kill":
            if allow_kill:
                sys.stderr.write(
                    f"[chaos] killing worker pid={os.getpid()} "
                    f"({key!r}, attempt {attempt})\n"
                )
                sys.stderr.flush()
                os._exit(KILL_EXIT_CODE)
            raise ChaosInjectedError(
                f"chaos kill (converted to exception in-process) for "
                f"{key!r}, attempt {attempt}"
            )
        if fault == "error":
            raise ChaosInjectedError(
                f"chaos exception for {key!r}, attempt {attempt}"
            )
        time.sleep(self.delay_s)

    # -- serve-scoped decisions --------------------------------------------

    def decide_serve(self, kind: str, key: str, attempt: int) -> bool:
        """Whether serve-scoped fault ``kind`` fires for one attempt of
        one key — deterministic like :meth:`decide`, but each fault kind
        rolls its own independent dice (a slow handler and a store-read
        error are separate hazards, not mutually exclusive branches of
        one)."""
        probability = getattr(self, kind)
        if probability <= 0.0:
            return False
        if self.match is not None and self.match not in key:
            return False
        return self._uniform(f"{kind}:{key}", attempt) < probability
