"""Wait-free parallel execution: futures, timeouts, retries, rebuilds.

The paper proves that up to ``n - 1`` crashed robots cannot block the
correct ones; this module gives the sweep harness the same property.
``concurrent.futures.ProcessPoolExecutor.map`` is *not* wait-free: one
OOM-killed worker raises :class:`BrokenProcessPool` for the whole batch
and the pool is dead, and one hung item stalls the sweep forever.
:class:`ResilientExecutor` replaces it with per-item ``submit()``:

* per-attempt wall-clock **timeouts** (a hung worker is abandoned and
  its process terminated);
* bounded **retries** with exponential backoff per item;
* automatic **pool rebuild** when the pool breaks or a worker hangs —
  re-dispatching only the incomplete items — degrading to serial
  in-process execution after ``max_pool_rebuilds`` breakages;
* an ``on_result`` callback fired the moment each item completes, which
  is what the checkpoint journal hangs off.

Determinism under retry is free: every item is a pure function of its
own arguments, so however many times an attempt is killed, timed out or
re-dispatched, the value that finally lands is bit-identical to the one
a clean sequential run produces.

Failure accounting distinguishes *attempts* from *strikes*.  Every try
increments the attempt number (which re-rolls the chaos dice and grows
the backoff), but only failures attributable to the item itself — an
exception from the function, or its own timeout — count against the
``retries`` budget.  A pool breakage cannot be attributed (the executor
marks every in-flight future broken), so innocent items re-dispatched
after a crash keep their full budget; runaway breakage is bounded by
``max_pool_rebuilds`` and the serial fallback instead.
"""

from __future__ import annotations

import logging
import math
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set

from .chaos import ChaosPolicy
from .errors import SeedTimeoutError, WorkerCrashError

__all__ = ["RunPolicy", "ResilientExecutor", "DEFAULT_POLICY"]

logger = logging.getLogger("repro.resilience")

# Warn-once registry: unexpected-but-tolerated conditions (a broken
# telemetry observer, a worker raising SystemExit) are worth one warning,
# not one per item per retry — a 10k-seed sweep with a bad observer must
# not bury the real failures under 10k identical log lines.
_warned: set = set()


def _warn_once(key: str, event: str, message: str, *args, **fields) -> None:
    """Emit one structured warning per ``key`` per process.

    Routes through :mod:`repro.obs.log` (imported lazily: ``repro.obs``
    itself imports from this package, so a module-level import would
    cycle).  The structured record mirrors to the stdlib
    ``repro.resilience`` logger, preserving the pre-existing log lines.
    """
    if key in _warned:
        return
    _warned.add(key)
    if fields.pop("exc_info", False):
        fields["traceback"] = traceback.format_exc()
    from ..obs.log import get_logger

    get_logger(logger.name).warning(
        event,
        (message % args if args else message) + " (warning once)",
        warn_once_key=key,
        **fields,
    )


def _as_charged_exception(exc: BaseException, key: str) -> Exception:
    """Map a worker-raised exception onto the structured taxonomy.

    Ordinary exceptions pass through untouched (chaos faults, timeouts
    and user errors already subclass the right things).  A
    non-``Exception`` ``BaseException`` — a worker calling
    ``sys.exit()``, a stray ``GeneratorExit`` — must *not* propagate
    into the orchestrator's retry loop, where it would abort the whole
    sweep and forfeit wait-freedom; it is wrapped as
    :class:`WorkerCrashError` and charged to its item like any crash.
    """
    if isinstance(exc, Exception):
        return exc
    _warn_once(
        f"base-exception:{type(exc).__name__}",
        "pool.worker_base_exception",
        "worker for %r raised %s; treating as a worker crash",
        key,
        type(exc).__name__,
        exception=type(exc).__name__,
    )
    return WorkerCrashError(
        f"{key}: worker raised {type(exc).__name__}: {exc}"
    )


@dataclass(frozen=True)
class RunPolicy:
    """Resilience knobs for one batch execution."""

    #: Wall-clock seconds per attempt (``None`` = unbounded).  Measured
    #: from submission; an attempt still queued at its deadline is
    #: requeued without charge.  Not enforced in serial execution
    #: (in-process work cannot be preempted).
    timeout: Optional[float] = None
    #: Attributable failures tolerated per item beyond the first try.
    retries: int = 2
    #: Base of the exponential backoff before a retry (seconds).
    backoff: float = 0.1
    #: Ceiling of the backoff (seconds).
    backoff_cap: float = 5.0
    #: Pool breakages/hangs tolerated before degrading to serial.
    max_pool_rebuilds: int = 3
    #: Granularity of the future-wait loop (seconds).
    tick: float = 0.05

    def backoff_for(self, attempt: int) -> float:
        if self.backoff <= 0.0:
            return 0.0
        return min(self.backoff * (2.0**attempt), self.backoff_cap)


DEFAULT_POLICY = RunPolicy()


def _worker_call(fn: Callable, chaos: Optional[ChaosPolicy], key: str,
                 attempt: int, item):
    """Worker-side entry point (module-level so it pickles): inject any
    scheduled chaos fault for this attempt, then compute."""
    if chaos is not None:
        chaos.inject(key, attempt, allow_kill=True)
    return fn(item)


class _PoolRestart(Exception):
    """Internal: the current pool must be torn down and rebuilt."""

    def __init__(self, reason: str, in_flight: Set[int]) -> None:
        super().__init__(reason)
        self.reason = reason
        self.in_flight = set(in_flight)


class _MapState:
    """Book-keeping of one :meth:`ResilientExecutor.map_resilient` call."""

    def __init__(self, items: List, keys: List[str], policy: RunPolicy,
                 on_result: Optional[Callable],
                 on_failure: Optional[Callable] = None) -> None:
        self.items = items
        self.keys = keys
        self.policy = policy
        self.on_result = on_result
        self.on_failure = on_failure
        self.results: List = [None] * len(items)
        self.attempts = [0] * len(items)
        self.strikes = [0] * len(items)
        self.not_before = [0.0] * len(items)
        self.failures: Dict[int, BaseException] = {}
        self.incomplete: Set[int] = set(range(len(items)))

    def finish(self, index: int, value) -> None:
        self.results[index] = value
        self.incomplete.discard(index)
        if self.on_result is not None:
            self.on_result(index, value)

    def charge(self, index: int, exc: BaseException, strike: bool = True) -> None:
        """Record a failed attempt; a *strike* counts against the retry
        budget, a chargeless failure (pool breakage) only re-rolls."""
        self.attempts[index] += 1
        if self.on_failure is not None:
            # Telemetry only (the sweep dashboard's retry/timeout
            # counters); a broken observer must never fail the sweep.
            try:
                self.on_failure(self.keys[index], exc, strike)
            except Exception:
                _warn_once(
                    "on_failure-observer",
                    "pool.on_failure_observer_raised",
                    "on_failure observer raised; ignoring",
                    exc_info=True,
                )
        if strike:
            self.strikes[index] += 1
            if self.strikes[index] > self.policy.retries:
                self.failures[index] = exc
                self.incomplete.discard(index)
                return
        self.not_before[index] = time.monotonic() + self.policy.backoff_for(
            self.attempts[index] - 1
        )

    def raise_if_failed(self) -> None:
        if not self.failures:
            return
        parts = [
            f"{self.keys[i]}: {type(e).__name__}: {e}"
            for i, e in sorted(self.failures.items())
        ]
        failures = {self.keys[i]: e for i, e in self.failures.items()}
        message = (
            f"{len(self.failures)} of {len(self.items)} item(s) failed "
            f"permanently after retries: " + "; ".join(parts)
        )
        if all(isinstance(e, SeedTimeoutError) for e in self.failures.values()):
            raise SeedTimeoutError(message, failures=failures)
        raise WorkerCrashError(message, failures=failures)


class ResilientExecutor:
    """A rebuildable process pool with wait-free map semantics.

    ``workers <= 1`` (or ``None``) runs everything serially in-process —
    same retry/chaos/checkpoint machinery, no pool.  The pool itself is
    created lazily and recreated transparently after breakage, so one
    executor can serve a whole series of batches (the experiment
    harness opens one per matrix and threads it through every cell).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        policy: Optional[RunPolicy] = None,
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
    ) -> None:
        self.workers = workers or 0
        self.policy = policy or DEFAULT_POLICY
        self._initializer = initializer
        self._initargs = initargs
        self._pool: Optional[ProcessPoolExecutor] = None
        self.rebuilds = 0

    @property
    def serial(self) -> bool:
        return self.workers <= 1

    # -- pool lifecycle ----------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=self._initializer,
                initargs=self._initargs,
            )
        return self._pool

    def _kill_pool(self) -> None:
        """Tear the pool down *now*: cancel queued work and terminate
        worker processes (a hung worker never exits on its own)."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        processes = list((getattr(pool, "_processes", None) or {}).values())
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        finally:
            for process in processes:
                try:
                    process.terminate()
                except (OSError, ValueError):  # pragma: no cover
                    # Best-effort cleanup: the process may already be
                    # dead (OSError) or closed (ValueError); anything
                    # else is a bug worth surfacing, not swallowing.
                    pass

    def shutdown(self, cancel: bool = True) -> None:
        """Graceful teardown; ``cancel`` drops queued (not yet running)
        work so Ctrl-C never hangs behind a full queue."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=cancel)

    def __enter__(self) -> "ResilientExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(cancel=True)

    # -- execution ---------------------------------------------------------

    def map_resilient(
        self,
        fn: Callable,
        items: Sequence,
        *,
        keys: Optional[Sequence[str]] = None,
        chaos: Optional[ChaosPolicy] = None,
        on_result: Optional[Callable[[int, object], None]] = None,
        on_failure: Optional[Callable[[str, BaseException, bool], None]] = None,
        policy: Optional[RunPolicy] = None,
    ) -> List:
        """``[fn(x) for x in items]`` with crash recovery; input order.

        ``keys`` are stable human-readable item labels (error messages,
        chaos decisions, journal callbacks); they default to the item
        index.  ``on_result(index, value)`` fires as each item
        completes, in completion order.  ``on_failure(key, exc,
        strike)`` fires on every failed attempt (telemetry; exceptions
        from it are logged and swallowed).  Raises
        :class:`~repro.resilience.errors.WorkerCrashError` /
        :class:`~repro.resilience.errors.SeedTimeoutError` only after
        every other item has been driven to completion.
        """
        policy = policy or self.policy
        items = list(items)
        if keys is None:
            keys = [f"item{i}" for i in range(len(items))]
        keys = [str(k) for k in keys]
        if len(keys) != len(items):
            raise ValueError("keys must match items one to one")
        if chaos is not None and not chaos.enabled:
            chaos = None
        state = _MapState(items, keys, policy, on_result, on_failure)

        try:
            while state.incomplete:
                if self.serial or self.rebuilds > policy.max_pool_rebuilds:
                    if not self.serial:
                        logger.warning(
                            "pool broke %d time(s); degrading to serial "
                            "execution for %d remaining item(s)",
                            self.rebuilds,
                            len(state.incomplete),
                        )
                    self._run_serial(fn, chaos, state)
                    break
                try:
                    self._run_pooled(fn, chaos, state)
                except _PoolRestart as restart:
                    self._kill_pool()
                    self.rebuilds += 1
                    # Unattributable: re-roll (attempt += 1) without a
                    # strike for everything that was in flight.
                    for index in restart.in_flight:
                        if index in state.incomplete:
                            state.charge(
                                index,
                                WorkerCrashError(
                                    f"{keys[index]}: in flight when "
                                    f"{restart.reason}"
                                ),
                                strike=False,
                            )
                    logger.warning(
                        "rebuilding worker pool (%s); re-dispatching %d "
                        "incomplete item(s)",
                        restart.reason,
                        len(state.incomplete),
                    )
        except KeyboardInterrupt:
            # Propagate cleanly: kill workers, drop queued futures, and
            # let the caller see KeyboardInterrupt — not a
            # BrokenProcessPool traceback from a half-dead pool.
            self._kill_pool()
            raise

        state.raise_if_failed()
        return state.results

    # -- pooled epoch ------------------------------------------------------

    def _run_pooled(self, fn: Callable, chaos: Optional[ChaosPolicy],
                    state: _MapState) -> None:
        """Submit every incomplete item once and resolve the attempts.

        Returns when all submitted attempts resolved (completed, struck,
        or requeued); raises :class:`_PoolRestart` when the pool died or
        a running attempt exceeded its deadline.
        """
        policy = state.policy
        pool = self._ensure_pool()
        futures: Dict[Future, int] = {}
        deadlines: Dict[Future, float] = {}
        in_flight: Set[int] = set()
        try:
            for index in sorted(state.incomplete):
                pause = state.not_before[index] - time.monotonic()
                if pause > 0:
                    time.sleep(pause)
                future = pool.submit(
                    _worker_call,
                    fn,
                    chaos,
                    state.keys[index],
                    state.attempts[index],
                    state.items[index],
                )
                futures[future] = index
                deadlines[future] = (
                    time.monotonic() + policy.timeout if policy.timeout else math.inf
                )
                in_flight.add(index)
        except BrokenProcessPool:
            raise _PoolRestart("pool broke during submission", in_flight)

        pending = set(futures)
        while pending:
            done, pending = wait(
                pending, timeout=policy.tick, return_when=FIRST_COMPLETED
            )
            for future in done:
                index = futures[future]
                try:
                    value = future.result()
                except BrokenProcessPool:
                    raise _PoolRestart("a worker process died", in_flight)
                except KeyboardInterrupt:  # pragma: no cover - signal timing
                    raise
                except BaseException as exc:
                    # BaseException, not Exception: a worker raising
                    # SystemExit must charge its own item, not tear down
                    # the orchestrator mid-sweep (wait-freedom).
                    in_flight.discard(index)
                    state.charge(
                        index, _as_charged_exception(exc, state.keys[index])
                    )
                else:
                    in_flight.discard(index)
                    state.finish(index, value)
            if not policy.timeout:
                continue
            now = time.monotonic()
            for future in list(pending):
                if now < deadlines[future]:
                    continue
                index = futures[future]
                if future.cancel():
                    # Never started — the queue was backed up behind
                    # slower items.  Requeue without charging.
                    pending.discard(future)
                    in_flight.discard(index)
                    continue
                # Running past its deadline: the worker holding it
                # cannot be reclaimed; charge the item and rebuild.
                in_flight.discard(index)
                state.charge(
                    index,
                    SeedTimeoutError(
                        f"{state.keys[index]}: attempt "
                        f"{state.attempts[index]} exceeded "
                        f"{policy.timeout}s timeout"
                    ),
                )
                raise _PoolRestart(
                    f"hung attempt on {state.keys[index]!r}", in_flight
                )

    # -- serial fallback ---------------------------------------------------

    def _run_serial(self, fn: Callable, chaos: Optional[ChaosPolicy],
                    state: _MapState) -> None:
        """In-process execution of the incomplete items — the terminal
        fallback that cannot suffer pool breakage.  Chaos kills are
        converted to exceptions (never kill the orchestrator); timeouts
        are not enforced (in-process work cannot be preempted)."""
        for index in sorted(state.incomplete):
            while index in state.incomplete:
                try:
                    if chaos is not None:
                        chaos.inject(
                            state.keys[index],
                            state.attempts[index],
                            allow_kill=False,
                        )
                    value = fn(state.items[index])
                except KeyboardInterrupt:
                    raise
                except BaseException as exc:
                    # Mirror the pooled path: SystemExit et al. from the
                    # item's own code count as that item's crash.
                    state.charge(
                        index, _as_charged_exception(exc, state.keys[index])
                    )
                    if index in state.incomplete:
                        time.sleep(
                            state.policy.backoff_for(state.attempts[index] - 1)
                        )
                else:
                    state.finish(index, value)
