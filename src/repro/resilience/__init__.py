"""Resilient execution layer — the harness's own wait-freedom.

The paper proves gathering tolerates up to ``n - 1`` crashed robots;
this package gives the *sweep infrastructure* the matching property:

* :mod:`~repro.resilience.errors` — the structured error taxonomy
  (:class:`ReproError` and friends) the CLI turns into clean exits;
* :mod:`~repro.resilience.atomic` — crash-safe file writes (temp file +
  fsync + atomic rename) for every one-shot document on disk;
* :mod:`~repro.resilience.pool` — :class:`ResilientExecutor`, the
  wait-free replacement for ``pool.map``: per-item futures, timeouts,
  bounded retries, automatic pool rebuild, serial degradation;
* :mod:`~repro.resilience.journal` — the ``repro-sweep-v1`` checkpoint
  journal that makes interrupted sweeps resumable;
* :mod:`~repro.resilience.chaos` — deterministic fault injection
  (``REPRO_CHAOS``) that the test suite uses to *prove* the recovery
  guarantees rather than assert them.
"""

from .atomic import atomic_write, fsync_handle, promote
from .chaos import CHAOS_ENV, KILL_EXIT_CODE, ChaosPolicy
from .errors import (
    ChaosInjectedError,
    ReproError,
    RequestDeadlineError,
    SeedTimeoutError,
    ServerDrainingError,
    ServerOverloadedError,
    TraceFormatError,
    WorkerCrashError,
)
from .journal import JOURNAL_SCHEMA, SweepJournal, result_from_dict, result_to_dict
from .pool import DEFAULT_POLICY, ResilientExecutor, RunPolicy

__all__ = [
    "ReproError",
    "WorkerCrashError",
    "SeedTimeoutError",
    "ChaosInjectedError",
    "TraceFormatError",
    "ServerOverloadedError",
    "ServerDrainingError",
    "RequestDeadlineError",
    "atomic_write",
    "fsync_handle",
    "promote",
    "ChaosPolicy",
    "CHAOS_ENV",
    "KILL_EXIT_CODE",
    "SweepJournal",
    "JOURNAL_SCHEMA",
    "result_to_dict",
    "result_from_dict",
    "ResilientExecutor",
    "RunPolicy",
    "DEFAULT_POLICY",
]
