"""Structured error taxonomy of the reproduction tooling.

Everything the harness can fail with derives from :class:`ReproError`,
so the CLI has exactly one catch site: it prints the message and exits
with the error's ``exit_code`` — a user (or CI log) always sees a
structured one-liner, never a traceback, for anticipated failure modes
(corrupted archives, crashed workers, hung seeds).

The hierarchy deliberately multiple-inherits from the closest builtin:
:class:`TraceFormatError` *is a* :class:`ValueError` and
:class:`SeedTimeoutError` *is a* :class:`TimeoutError`, so pre-existing
callers (and tests) that catch the builtin keep working unchanged.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproError",
    "WorkerCrashError",
    "SeedTimeoutError",
    "ChaosInjectedError",
    "TraceFormatError",
    "ServerOverloadedError",
    "ServerDrainingError",
    "RequestDeadlineError",
]


class ReproError(Exception):
    """Base class of every structured harness error.

    ``exit_code`` is what the CLI returns when the error escapes a
    subcommand; subclasses override it where a different code is
    conventional (2 for bad input data, matching argparse usage errors).
    ``http_status`` is the matching HTTP response code when the same
    error escapes a ``repro serve`` request handler: the taxonomy maps
    onto the wire once, here, so the daemon and the CLI never disagree
    about what kind of failure something was.
    """

    exit_code = 1
    http_status = 500


class WorkerCrashError(ReproError):
    """A worker process died (or kept raising) and the retry budget for
    one or more items is exhausted.

    Raised *after* every other item has been driven to completion — a
    crashing seed never blocks the rest of the sweep (wait-freedom).
    ``failures`` maps item keys to the final exception per failed item.
    """

    def __init__(self, message: str, failures: Optional[dict] = None) -> None:
        super().__init__(message)
        self.failures = failures or {}


class SeedTimeoutError(ReproError, TimeoutError):
    """An attempt exceeded its wall-clock timeout and the retry budget
    is exhausted (also used per-attempt internally before aggregation).

    Like :class:`WorkerCrashError` this surfaces only after the rest of
    the batch finished; ``failures`` maps item keys to final errors.
    """

    http_status = 504  # the request ran out of wall clock, not the server

    def __init__(self, message: str, failures: Optional[dict] = None) -> None:
        super().__init__(message)
        self.failures = failures or {}


class ChaosInjectedError(ReproError):
    """The deterministic fault the chaos harness injects.

    Never raised in production runs — only when ``REPRO_CHAOS`` (or an
    explicit :class:`~repro.resilience.chaos.ChaosPolicy`) is active.
    Distinct from real errors so a chaos test can assert that every
    failure it saw was one it injected.
    """


class ServerOverloadedError(ReproError):
    """``repro serve`` shed this request: the weighted in-flight budget
    (``--max-inflight``) is spent.

    Deliberately cheap to raise and map — load shedding only protects
    the daemon if rejecting costs microseconds while computing costs
    seconds.  ``retry_after_s`` becomes the ``Retry-After`` header, the
    standard signal for a well-behaved client's backoff loop.
    """

    http_status = 429

    def __init__(self, message: str, *, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServerDrainingError(ReproError):
    """``repro serve`` is shutting down gracefully: in-flight requests
    are being drained and no new work is admitted.

    503 (not 429): the condition is not load-dependent — the client
    should fail over to another instance, not back off and retry here.
    """

    http_status = 503


class RequestDeadlineError(ReproError, TimeoutError):
    """A ``repro serve`` request exceeded its deadline (the server's
    ``--request-deadline`` or the request's own ``"deadline_s"``).

    Distinct from :class:`SeedTimeoutError` (one attempt of one seed ran
    long) — this is the *request-level* budget: queue wait, cache
    lookups and every seed's compute all draw from the same clock, and
    when it runs out the slot is freed whether or not any single
    attempt was slow.
    """

    http_status = 504


class TraceFormatError(ReproError, ValueError):
    """A trace / bench / obs / journal file — or a ``repro serve``
    request body — failed to parse.

    Carries the offending ``path`` plus, when known, the 1-based
    ``line`` and character ``offset`` of the corruption, so "repro
    check --corpus" failures point at the byte that poisoned them.
    """

    exit_code = 2
    http_status = 400  # the input was malformed, not the computation

    def __init__(
        self,
        message: str,
        *,
        path: Optional[str] = None,
        line: Optional[int] = None,
        offset: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.path = path
        self.line = line
        self.offset = offset

    def __reduce__(self):
        # Keyword-only attributes break the default Exception pickling;
        # errors must survive a trip back from a worker process.
        return (_rebuild_trace_format_error,
                (str(self), self.path, self.line, self.offset))


def _rebuild_trace_format_error(message, path, line, offset):
    return TraceFormatError(message, path=path, line=line, offset=offset)
