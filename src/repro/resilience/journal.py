"""Crash-safe sweep checkpointing — the ``repro-sweep-v1`` journal.

A sweep journal is append-only JSONL:

* line 1 — header: ``{"format": "repro-sweep-v1", "scenario": {...}}``
  where ``scenario`` is the canonical dict of the swept
  :class:`~repro.experiments.runner.Scenario`;
* one line per completed seed: ``{"seed": s, "result": {...}}`` with the
  full serialized :class:`~repro.sim.engine.SimulationResult` (floats
  via ``repr`` — float64 round-trips exactly, so a resumed result is
  bit-identical to the one the killed sweep computed).

Every append is flushed and fsynced before the runner considers the
seed checkpointed, so a SIGKILL can lose at most the entry being
written.  On resume the loader tolerates exactly that: a torn *final*
line (no trailing newline, or undecodable) is truncated away; a
malformed *interior* line means real corruption and raises
:class:`~repro.resilience.errors.TraceFormatError`.

Resuming validates the header scenario against the sweep's scenario —
a journal never silently continues a different experiment.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, TextIO

from .atomic import fsync_handle
from .errors import TraceFormatError

__all__ = ["SweepJournal", "JOURNAL_SCHEMA", "result_to_dict", "result_from_dict"]

#: Schema identifier of the journal header line.
JOURNAL_SCHEMA = "repro-sweep-v1"


def result_to_dict(result) -> dict:
    """Serialize a :class:`~repro.sim.engine.SimulationResult` (sans
    trace — sweeps never record traces) to a JSON-ready dict."""
    return {
        "verdict": result.verdict,
        "rounds": result.rounds,
        "final_positions": [
            [rid, p.x, p.y] for rid, p in sorted(result.final_positions.items())
        ],
        "live_ids": list(result.live_ids),
        "crashed_ids": list(result.crashed_ids),
        "gathering_point": (
            [result.gathering_point.x, result.gathering_point.y]
            if result.gathering_point is not None
            else None
        ),
        "total_distance": result.total_distance,
        "initial_class": result.initial_class.value,
        "classes_seen": [c.value for c in result.classes_seen],
    }


def result_from_dict(data: dict, *, source: str = "<journal>"):
    """Inverse of :func:`result_to_dict` (``trace`` is always ``None``)."""
    # Deferred imports: repro.sim.trace imports this package's errors at
    # module level, so importing the engine here at import time would
    # create a cycle through repro/resilience/__init__.
    from ..core import ConfigClass
    from ..geometry import Point
    from ..sim.engine import SimulationResult

    try:
        return SimulationResult(
            verdict=data["verdict"],
            rounds=data["rounds"],
            final_positions={
                int(rid): Point(x, y) for rid, x, y in data["final_positions"]
            },
            live_ids=tuple(data["live_ids"]),
            crashed_ids=tuple(data["crashed_ids"]),
            gathering_point=(
                Point(*data["gathering_point"])
                if data["gathering_point"] is not None
                else None
            ),
            total_distance=data["total_distance"],
            trace=None,
            initial_class=ConfigClass(data["initial_class"]),
            classes_seen=tuple(ConfigClass(v) for v in data["classes_seen"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(
            f"{source}: malformed result record: {exc}", path=source
        ) from exc


class SweepJournal:
    """Append-only checkpoint journal of completed ``(scenario, seed)``
    results; see the module docstring for format and crash semantics."""

    def __init__(self, path: str, scenario: dict) -> None:
        self.path = path
        self.scenario = scenario
        self._completed: Dict[int, object] = {}
        self._handle: Optional[TextIO] = None

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def open(cls, path: str, scenario: dict, resume: bool = False) -> "SweepJournal":
        """Open a journal for writing.

        ``resume=True`` with an existing file loads its completed
        results (validating the header scenario), truncates any torn
        tail, and appends from there.  Otherwise a fresh journal is
        started (truncating whatever was at ``path``).
        """
        journal = cls(path, scenario)
        if resume and os.path.exists(path):
            completed, valid_end = _parse(path, expected_scenario=scenario)
            journal._completed = completed
            if valid_end < os.path.getsize(path):
                with open(path, "r+", encoding="utf-8") as handle:
                    handle.truncate(valid_end)
            journal._handle = open(path, "a", encoding="utf-8")
        else:
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
            journal._handle = open(path, "w", encoding="utf-8")
            journal._write_line({"format": JOURNAL_SCHEMA, "scenario": scenario})
        return journal

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reads -------------------------------------------------------------

    def completed(self) -> Dict[int, object]:
        """Seed -> deserialized result for every checkpointed seed."""
        return dict(self._completed)

    @classmethod
    def peek(cls, path: str, scenario: Optional[dict] = None) -> Dict[int, object]:
        """Read a journal's completed results without opening it for
        writing (scenario validation only when ``scenario`` is given)."""
        completed, _ = _parse(path, expected_scenario=scenario)
        return completed

    # -- writes ------------------------------------------------------------

    def _write_line(self, payload: dict) -> None:
        if self._handle is None:
            raise ValueError(f"journal {self.path!r} is closed")
        self._handle.write(json.dumps(payload) + "\n")
        fsync_handle(self._handle)

    def append(self, seed: int, result) -> None:
        """Checkpoint one completed seed (flushed + fsynced on return)."""
        self._write_line({"seed": seed, "result": result_to_dict(result)})
        self._completed[seed] = result


def _parse(path: str, expected_scenario: Optional[dict] = None):
    """Parse a journal file -> ``(completed, valid_end_offset)``.

    ``valid_end_offset`` is the byte offset just past the last fully
    valid line; the caller truncates to it before appending so a torn
    tail can never corrupt the line that follows it.
    """
    with open(path, "rb") as handle:
        raw = handle.read()
    lines = raw.split(b"\n")
    # The final chunk is either empty (file ends with a newline) or a
    # torn line from an interrupted write; both are excluded from the
    # complete chunks, and only the torn case is remembered.
    chunks = lines[:-1]
    torn_tail = lines[-1] if lines[-1] else None

    if not chunks:
        raise TraceFormatError(
            f"{path}: empty or torn journal (no complete header line)",
            path=path,
            line=1,
        )

    try:
        header = json.loads(chunks[0].decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise TraceFormatError(
            f"{path}: undecodable journal header: {exc}", path=path, line=1
        ) from exc
    if not isinstance(header, dict) or header.get("format") != JOURNAL_SCHEMA:
        raise TraceFormatError(
            f"{path}: not a {JOURNAL_SCHEMA} journal "
            f"(format={header.get('format') if isinstance(header, dict) else header!r})",
            path=path,
            line=1,
        )
    if expected_scenario is not None and header.get("scenario") != expected_scenario:
        raise TraceFormatError(
            f"{path}: journal records a different scenario; refusing to "
            f"resume (journaled: {header.get('scenario')!r})",
            path=path,
        )

    completed: Dict[int, object] = {}
    offset = len(chunks[0]) + 1
    for line_no, chunk in enumerate(chunks[1:], start=2):
        is_last_complete_line = line_no == len(chunks) and torn_tail is None
        try:
            entry = json.loads(chunk.decode("utf-8"))
            seed = entry["seed"]
            result = result_from_dict(
                entry["result"], source=f"{path}:{line_no}"
            )
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError,
                TraceFormatError) as exc:
            if is_last_complete_line and isinstance(
                exc, (json.JSONDecodeError, UnicodeDecodeError)
            ):
                # A torn final write that happened to end at a newline
                # boundary of the partial buffer: drop it like any tail.
                return completed, offset
            raise TraceFormatError(
                f"{path}: corrupted journal entry at line {line_no}: {exc}",
                path=path,
                line=line_no,
            ) from exc
        completed[seed] = result
        offset += len(chunk) + 1
    return completed, offset
