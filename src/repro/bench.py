"""Benchmark harness — ``repro-gather bench``.

Measures the hot geometry primitives (micro benchmarks) and end-to-end
round throughput of the simulator for every available kernel backend,
and writes the results as one JSON document (``BENCH_micro.json`` at the
repo root by default).  The JSON is the repo's performance record: the
recorded ``speedups`` section is how the "numpy backend is >= 3x faster
at n = 256" claim in README.md is regenerated.

Schema (``repro-bench/1``)
--------------------------
``micro``
    One entry per (name, backend, n): ``best_s``/``mean_s`` over
    ``repeats`` timed calls of one primitive on a fresh input.
``round_throughput``
    One entry per (backend, n): seconds for one fully-synchronous
    ATOM round of ``wait-free-gather`` on a random workload, and the
    derived ``robots_per_s``.
``batch_round_throughput``
    One entry per (backend, n): seconds for one vectorized
    :class:`~repro.sim.BatchedSimulation` round stepping ``n_sims``
    seeds at once, plus the derived ``per_seed_round_s`` (the number
    the batched-engine regression gate watches) and
    ``seed_rounds_per_s``.  Measured on the numpy backend only — the
    batched engine exists to amortize kernel calls across sims, which
    the python backend cannot do.
``lcm_round_throughput``
    One entry per (activation, n): seconds for one complete LCM cycle
    of the unified engine under each activation model — one round for
    ``atom``, a LOOK tick plus a MOVE tick for ``async`` — on the
    python backend.  This is the dispatch-overhead guard for the
    engine unification: the pluggable activation model must not make
    the scalar loop slower.
``serve_request_latency``
    Cold-vs-warm ``POST /run`` latency against an in-process
    ``repro serve`` daemon on an ephemeral port: ``cold_s`` is the
    first request (cache miss, full simulation), ``warm_s`` the best of
    ``repeats`` cache hits — the serving layer's overhead floor, which
    the regression gate watches.  Skipped (empty) when the loopback
    socket cannot bind.
``serve_shed_latency``
    Response latency under synthetic overload (every handler slowed by
    deterministic chaos, all clients firing at once), once with
    ``--max-inflight`` admission control and once unbounded: p50/p99/max
    plus the shed count per mode.  Recorded for the load-shed curve in
    EXPERIMENTS.md, not gated — the warm-hit key above is the gate.
``speedups``
    Python-over-numpy ratios of the round times per size (only when
    both backends ran), plus batched-over-scalar per-seed-round ratios
    (``metric: "batch_round_throughput"``) when the batched rounds ran.

Timing methodology: wall-clock ``time.perf_counter`` around the call,
*best of repeats* as the headline number (robust against scheduler
noise; the mean is also recorded).  Inputs are rebuilt fresh for every
repetition because configurations memoize their derived structure — a
second call on the same object would time a dict lookup.

History (``repro-bench/2``)
---------------------------
The file on disk is a *history*, not a single run: ``latest`` holds the
most recent per-run document (the regression-guard view) and ``runs`` an
append-only array of ``{git_sha, recorded_at, document}`` entries, one
per ``repro bench`` invocation — the perf trajectory across commits.
:func:`write_bench` converts a legacy single-document file into the
first history entry instead of discarding it.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

from .algorithms import WaitFreeGather
from .core import Configuration, safe_points
from .core.views import view_table
from .geometry import geometric_median, kernels
from .resilience import TraceFormatError, atomic_write
from .sim import AtomicActivation, BatchedSimulation, PhasedActivation, Simulation
from .sim.scheduler import FullySynchronous
from .workloads import generate

__all__ = [
    "run_bench",
    "write_bench",
    "load_history",
    "check_regressions",
    "DEFAULT_SIZES",
    "QUICK_SIZES",
]

#: Schema of one benchmark run's document.
SCHEMA = "repro-bench/1"
#: Schema of the on-disk file: a history of run documents.
HISTORY_SCHEMA = "repro-bench/2"
DEFAULT_SIZES = [16, 64, 256]
QUICK_SIZES = [16, 64]

#: Workload seed shared by all benchmarks: timings are comparable across
#: runs and backends because everybody measures the same point set.
_SEED = 42

#: Sims stepped together per batched-round measurement, by team size:
#: large batches where rounds are cheap, small where one round is
#: already seconds of work.  Sizes outside the table fall back to
#: roughly 1024 robots per batch.
_BATCH_SIMS = {16: 256, 64: 64, 256: 8}


def _time_best(fn: Callable[[], object], repeats: int) -> Dict[str, float]:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return {
        "best_s": min(samples),
        "mean_s": sum(samples) / len(samples),
        "repeats": repeats,
    }


def _micro_cases(points) -> Dict[str, Callable[[], object]]:
    """The micro-benchmarked primitives, each on a *fresh* input.

    Every thunk rebuilds its :class:`Configuration` inside the timed
    region where the primitive needs one, except ``configuration``
    itself (whose construction — the tolerant cluster merge — is the
    thing being measured).
    """
    return {
        "configuration": lambda: Configuration(points),
        "view_table": lambda: view_table(Configuration(points)),
        "safe_points": lambda: safe_points(Configuration(points)),
        "geometric_median": lambda: geometric_median(points),
    }


def _one_round_seconds(n: int) -> float:
    """One fully-synchronous round of the paper's algorithm, timed."""
    sim = Simulation(
        WaitFreeGather(),
        generate("random", n, _SEED),
        scheduler=FullySynchronous(),
        seed=1,
    )
    start = time.perf_counter()
    sim.step()
    return time.perf_counter() - start


def _lcm_cycle_seconds(n: int, activation_name: str) -> float:
    """One complete LCM cycle under the named activation model, timed.

    ``atom`` completes a cycle per round; ``async`` needs a LOOK tick
    and a MOVE tick under the fully-synchronous scheduler, so two
    steps are timed — either way the measurement covers one full
    look/compute/move pass for every robot.
    """
    activation = (
        AtomicActivation() if activation_name == "atom" else PhasedActivation()
    )
    sim = Simulation(
        WaitFreeGather(),
        generate("random", n, _SEED),
        scheduler=FullySynchronous(),
        activation=activation,
        seed=1,
    )
    steps = 1 if activation_name == "atom" else 2
    start = time.perf_counter()
    for _ in range(steps):
        sim.step()
    return time.perf_counter() - start


def _batched_round_seconds(n: int, n_sims: int) -> float:
    """One vectorized batched round over ``n_sims`` seeds, timed.

    Mirrors :func:`_one_round_seconds` — same algorithm, workload
    family and fully-synchronous activation — so ``round_s / n_sims``
    compares directly against the scalar round time.
    """
    sims = BatchedSimulation(
        [WaitFreeGather() for _ in range(n_sims)],
        [generate("random", n, _SEED + i) for i in range(n_sims)],
        schedulers=[FullySynchronous() for _ in range(n_sims)],
        seeds=list(range(1, n_sims + 1)),
    )
    start = time.perf_counter()
    sims.step_round()
    return time.perf_counter() - start


#: Scenario served by the request-latency benchmark: small enough that
#: the cold request finishes in tens of milliseconds, deterministic so
#: every warm repetition hits the same cache entry.
_SERVE_SCENARIO = {
    "workload": "random",
    "n": 6,
    "f": 1,
    "crashes": "random",
    "max_rounds": 5_000,
}


def _serve_request_latency(repeats: int) -> List[Dict]:
    """Cold/warm ``POST /run`` timings against an in-process daemon.

    Returns a one-entry list (schema-wise a section like the others), or
    an empty list when the loopback socket cannot bind — bench must
    degrade, not die, in network-less sandboxes.
    """
    import threading

    from .serve.server import ReproServer, _request

    try:
        server = ReproServer(port=0)
    except OSError:
        return []
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        payload = {"scenario": _SERVE_SCENARIO, "seed": 0}

        start = time.perf_counter()
        status, _, _ = _request(
            server.host, server.port, "POST", "/run", payload
        )
        cold_s = time.perf_counter() - start
        if status != 200:
            return []

        warm = []
        for _ in range(repeats):
            start = time.perf_counter()
            _request(server.host, server.port, "POST", "/run", payload)
            warm.append(time.perf_counter() - start)
    finally:
        server.close()
        thread.join(timeout=30)
    warm_s = min(warm)
    return [
        {
            "endpoint": "run",
            "n": _SERVE_SCENARIO["n"],
            "cold_s": cold_s,
            "warm_s": warm_s,
            "warm_mean_s": sum(warm) / len(warm),
            "repeats": repeats,
            "speedup": cold_s / warm_s,
        }
    ]


def _serve_shed_latency(threads: int = 8, per_thread: int = 4) -> List[Dict]:
    """Response latency under real overload, with and without admission
    control.

    ``threads * per_thread`` uncacheable requests (``"cache": false`` —
    every one computes) arrive at once and serialize behind the daemon's
    single simulation slot.  With ``--max-inflight`` the daemon sheds
    the excess as instant 429s, so the latency distribution stays flat;
    unbounded, every request queues behind the slot and the tail grows
    linearly with the offered load.  Recorded (p50/p99/shed per mode),
    not gated — the *warm hit* latency key is the regression gate; this
    section documents the load-shed curve for EXPERIMENTS.md.
    """
    import threading as _threading

    from .serve.server import ReproServer, _request

    entries: List[Dict] = []
    for mode, max_inflight in (("admission", 2), ("unbounded", None)):
        try:
            server = ReproServer(port=0, max_inflight=max_inflight)
        except OSError:
            return entries
        thread = _threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        try:
            payload = {
                "scenario": _SERVE_SCENARIO,
                "seed": 0,
                "cache": False,
            }
            status, _, _ = _request(
                server.host, server.port, "POST", "/run", payload
            )
            if status != 200:
                return entries
            latencies: List[float] = []
            shed = [0]
            lock = _threading.Lock()
            barrier = _threading.Barrier(threads)

            def client_thread():
                barrier.wait()
                for _ in range(per_thread):
                    start = time.perf_counter()
                    response_status, _, _ = _request(
                        server.host, server.port, "POST", "/run", payload
                    )
                    elapsed = time.perf_counter() - start
                    with lock:
                        latencies.append(elapsed)
                        if response_status == 429:
                            shed[0] += 1

            workers = [
                _threading.Thread(target=client_thread)
                for _ in range(threads)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        finally:
            server.close()
            thread.join(timeout=30)
        latencies.sort()
        offered = len(latencies)
        entries.append(
            {
                "mode": mode,
                "max_inflight": max_inflight,
                "offered": offered,
                "ok": offered - shed[0],
                "shed": shed[0],
                "p50_s": latencies[offered // 2],
                "p99_s": latencies[min(offered - 1, (offered * 99) // 100)],
                "max_s": latencies[-1],
            }
        )
    return entries


def run_bench(
    sizes: Optional[Sequence[int]] = None,
    repeats: int = 3,
    backends: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict:
    """Run the full benchmark matrix and return the JSON-ready document."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    sizes = list(sizes if sizes is not None else DEFAULT_SIZES)
    backends = list(backends if backends is not None else kernels.available_backends())
    say = progress or (lambda message: None)

    numpy_version = None
    if "numpy" in kernels.available_backends():
        import numpy

        numpy_version = numpy.__version__

    micro: List[Dict] = []
    round_throughput: List[Dict] = []
    for backend_name in backends:
        with kernels.backend(backend_name):
            for n in sizes:
                points = generate("random", n, _SEED)
                for name, thunk in _micro_cases(points).items():
                    say(f"micro {name} backend={backend_name} n={n}")
                    entry = {"name": name, "backend": backend_name, "n": n}
                    entry.update(_time_best(thunk, repeats))
                    micro.append(entry)
                say(f"round backend={backend_name} n={n}")
                # One round is seconds-to-minutes of work at the larger
                # sizes; a single sample is already noise-dominated by
                # real computation, so rounds are not repeated.
                round_s = _one_round_seconds(n)
                round_throughput.append(
                    {
                        "backend": backend_name,
                        "n": n,
                        "round_s": round_s,
                        "robots_per_s": n / round_s,
                    }
                )

    batch_round_throughput: List[Dict] = []
    if "numpy" in backends and "numpy" in kernels.available_backends():
        with kernels.backend("numpy"):
            for n in sizes:
                n_sims = _BATCH_SIMS.get(n, max(2, 1024 // max(n, 1)))
                say(f"batched round backend=numpy n={n} sims={n_sims}")
                round_s = _batched_round_seconds(n, n_sims)
                batch_round_throughput.append(
                    {
                        "backend": "numpy",
                        "n": n,
                        "n_sims": n_sims,
                        "round_s": round_s,
                        "per_seed_round_s": round_s / n_sims,
                        "seed_rounds_per_s": n_sims / round_s,
                    }
                )

    lcm_round_throughput: List[Dict] = []
    with kernels.backend("python"):
        for activation_name in ("atom", "async"):
            for n in sizes:
                say(f"lcm cycle activation={activation_name} n={n}")
                cycle_s = _lcm_cycle_seconds(n, activation_name)
                lcm_round_throughput.append(
                    {
                        "activation": activation_name,
                        "backend": "python",
                        "n": n,
                        "cycle_s": cycle_s,
                        "robots_per_s": n / cycle_s,
                    }
                )

    say("serve request latency (cold vs warm)")
    # Warm hits are sub-millisecond; extra repeats are free and make the
    # best-of robust against scheduler noise.
    serve_request_latency = _serve_request_latency(max(repeats, 5))

    say("serve shed latency (overload, admission on/off)")
    serve_shed_latency = _serve_shed_latency()

    speedups: List[Dict] = []
    by_size: Dict[int, Dict[str, float]] = {}
    for entry in round_throughput:
        by_size.setdefault(entry["n"], {})[entry["backend"]] = entry["round_s"]
    for n in sizes:
        times = by_size.get(n, {})
        if "python" in times and "numpy" in times:
            speedups.append(
                {
                    "metric": "round_throughput",
                    "n": n,
                    "python_s": times["python"],
                    "numpy_s": times["numpy"],
                    "speedup": times["python"] / times["numpy"],
                }
            )
    batch_by_size = {entry["n"]: entry for entry in batch_round_throughput}
    for n in sizes:
        times = by_size.get(n, {})
        batch = batch_by_size.get(n)
        if batch is not None and "numpy" in times:
            speedups.append(
                {
                    "metric": "batch_round_throughput",
                    "n": n,
                    "scalar_numpy_s": times["numpy"],
                    "batched_per_seed_s": batch["per_seed_round_s"],
                    "speedup": times["numpy"] / batch["per_seed_round_s"],
                }
            )

    return {
        "schema": SCHEMA,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python_version": sys.version.split()[0],
        "numpy_version": numpy_version,
        "platform": platform.platform(),
        "workload": {"kind": "random", "seed": _SEED},
        "sizes": sizes,
        "repeats": repeats,
        "backends": backends,
        "micro": micro,
        "round_throughput": round_throughput,
        "batch_round_throughput": batch_round_throughput,
        "lcm_round_throughput": lcm_round_throughput,
        "serve_request_latency": serve_request_latency,
        "serve_shed_latency": serve_shed_latency,
        "speedups": speedups,
    }


def _git_sha() -> Optional[str]:
    """HEAD commit of the working directory's repo, or ``None``."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else None


def load_history(path: str) -> Dict:
    """Read a bench file into history form, whatever schema is on disk.

    A legacy ``repro-bench/1`` single-run file becomes a one-entry
    history (its ``generated_at`` as the timestamp, no git SHA — the
    commit it ran at was never recorded).  Corrupted JSON or a foreign
    schema raises :class:`~repro.resilience.errors.TraceFormatError`
    (a :class:`ValueError`) carrying the path and, for syntax errors,
    the line/offset — so a stale or truncated file fails loudly rather
    than being silently clobbered by the next bench run.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(
            f"{path}: corrupted bench history: invalid JSON at line "
            f"{exc.lineno} column {exc.colno}: {exc.msg}",
            path=path,
            line=exc.lineno,
            offset=exc.pos,
        ) from exc
    except OSError as exc:
        raise TraceFormatError(
            f"{path}: cannot read bench history: {exc}", path=path
        ) from exc
    except UnicodeDecodeError as exc:
        raise TraceFormatError(
            f"{path}: not a text file (binary garbage at byte "
            f"{exc.start})",
            path=path,
            offset=exc.start,
        ) from exc
    schema = data.get("schema") if isinstance(data, dict) else None
    if schema == HISTORY_SCHEMA:
        return data
    if schema == SCHEMA:
        return {
            "schema": HISTORY_SCHEMA,
            "latest": data,
            "runs": [
                {
                    "git_sha": None,
                    "recorded_at": data.get("generated_at"),
                    "document": data,
                }
            ],
        }
    raise TraceFormatError(
        f"{path!r} is not a {SCHEMA}/{HISTORY_SCHEMA} file "
        f"(schema={schema!r})",
        path=path,
    )


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def check_regressions(
    history: Dict,
    document: Dict,
    threshold: float = 0.25,
    window: int = 5,
) -> List[Dict]:
    """Regression gate: ``document`` against the recent history.

    For every benchmark key — ``(name, backend, n)`` of a micro
    benchmark (``best_s``), ``(backend, n)`` of a round-throughput
    measurement (``round_s``) and ``(backend, n)`` of a batched
    round-throughput measurement (``per_seed_round_s``; normalized per
    seed so retuning ``n_sims`` cannot dodge the gate),
    ``(activation, n)`` of an LCM-cycle measurement (``cycle_s``, the
    unified engine's per-activation-model dispatch cost) and
    ``(endpoint, n)`` of a serve-latency measurement (``warm_s``, the
    cache-hit overhead floor; ``cold_s`` is simulation-dominated and
    already covered by the round gates) — the baseline
    is the **median over the last ``window`` history runs** that
    measured that key.  The median
    (not the best or the mean) absorbs the odd noisy run without
    letting a slow drift hide; keys the history never measured are
    skipped, so shrinking or growing the size matrix cannot fail the
    gate spuriously.

    Returns one dict per regression (``current > baseline * (1 +
    threshold)``): metric, key, current/baseline seconds, ratio, and
    the number of history samples behind the baseline.  Empty list =
    gate passes.  ``repro bench --check`` exits non-zero on a
    non-empty return.
    """
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    if window < 1:
        raise ValueError("window must be >= 1")
    recent = [
        run.get("document") or {} for run in history.get("runs", [])[-window:]
    ]

    micro_samples: Dict[tuple, List[float]] = {}
    round_samples: Dict[tuple, List[float]] = {}
    batch_samples: Dict[tuple, List[float]] = {}
    lcm_samples: Dict[tuple, List[float]] = {}
    serve_samples: Dict[tuple, List[float]] = {}
    for doc in recent:
        for entry in doc.get("micro", []):
            key = (entry["name"], entry["backend"], entry["n"])
            micro_samples.setdefault(key, []).append(entry["best_s"])
        for entry in doc.get("round_throughput", []):
            key = (entry["backend"], entry["n"])
            round_samples.setdefault(key, []).append(entry["round_s"])
        for entry in doc.get("batch_round_throughput", []):
            key = (entry["backend"], entry["n"])
            batch_samples.setdefault(key, []).append(
                entry["per_seed_round_s"]
            )
        for entry in doc.get("lcm_round_throughput", []):
            key = (entry["activation"], entry["n"])
            lcm_samples.setdefault(key, []).append(entry["cycle_s"])
        for entry in doc.get("serve_request_latency", []):
            key = (entry["endpoint"], entry["n"])
            serve_samples.setdefault(key, []).append(entry["warm_s"])

    regressions: List[Dict] = []

    def gate(metric: str, key: tuple, current: float,
             samples: Optional[List[float]]) -> None:
        if not samples:
            return
        baseline = _median(samples)
        if baseline <= 0.0 or current <= baseline * (1.0 + threshold):
            return
        regressions.append(
            {
                "metric": metric,
                "key": "/".join(str(part) for part in key),
                "current_s": current,
                "baseline_s": baseline,
                "ratio": current / baseline,
                "window": len(samples),
            }
        )

    for entry in document.get("micro", []):
        key = (entry["name"], entry["backend"], entry["n"])
        gate("micro", key, entry["best_s"], micro_samples.get(key))
    for entry in document.get("round_throughput", []):
        key = (entry["backend"], entry["n"])
        gate(
            "round_throughput", key, entry["round_s"], round_samples.get(key)
        )
    for entry in document.get("batch_round_throughput", []):
        key = (entry["backend"], entry["n"])
        gate(
            "batch_round_throughput",
            key,
            entry["per_seed_round_s"],
            batch_samples.get(key),
        )
    for entry in document.get("lcm_round_throughput", []):
        key = (entry["activation"], entry["n"])
        gate(
            "lcm_round_throughput",
            key,
            entry["cycle_s"],
            lcm_samples.get(key),
        )
    for entry in document.get("serve_request_latency", []):
        key = (entry["endpoint"], entry["n"])
        gate(
            "serve_request_latency",
            key,
            entry["warm_s"],
            serve_samples.get(key),
        )
    return regressions


def write_bench(document: Dict, path: str) -> None:
    """Append ``document`` to the bench history at ``path``.

    ``latest`` always mirrors the newest run so regression guards read
    one key; the ``runs`` array keeps every prior run (keyed by git SHA
    and timestamp), which is what makes the performance trajectory
    across commits recoverable from the file alone.

    The history is written atomically (temp file + fsync + rename): an
    interrupt mid-append leaves the previous history intact instead of
    a truncated JSON that poisons every later ``load_history``.
    """
    if os.path.exists(path):
        history = load_history(path)
    else:
        history = {"schema": HISTORY_SCHEMA, "latest": None, "runs": []}
    history["runs"].append(
        {
            "git_sha": _git_sha(),
            "recorded_at": document.get("generated_at"),
            "document": document,
        }
    )
    history["latest"] = document
    atomic_write(path, json.dumps(history, indent=2, sort_keys=False) + "\n")
