"""Run metrics and small statistics helpers for experiment tables."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..geometry import Point, kernels
from .engine import SimulationResult

__all__ = ["spread", "summarize_runs", "RunSummary"]


def spread(positions: Iterable[Point]) -> float:
    """Diameter of a point set — the simplest convergence measure.

    Routed through the vectorized ``pairwise_diameter`` kernel under the
    numpy backend: per-round spread logging (the observability layer
    emits it on every round event) must not reintroduce an O(n^2)
    pure-Python loop on the hot path the kernels exist to avoid.  The
    loop below is the reference fallback.
    """
    pts = list(positions)
    if kernels.enabled_for(len(pts)):
        return kernels.pairwise_diameter([(p.x, p.y) for p in pts])
    best = 0.0
    for i, p in enumerate(pts):
        for q in pts[i + 1 :]:
            best = max(best, p.distance_to(q))
    return best


@dataclass(frozen=True)
class RunSummary:
    """Aggregate view over a batch of simulation results."""

    runs: int
    gathered: int
    impossible: int
    stalled: int
    timed_out: int
    mean_rounds_gathered: float
    #: ``None`` when no run gathered — never ``0``: tables render the
    #: absence as ``-``, and aggregation code cannot mistake a fully
    #: failed batch for instant gathering.
    max_rounds_gathered: Optional[int]
    mean_distance: float

    @property
    def success_rate(self) -> float:
        return self.gathered / self.runs if self.runs else 0.0


def summarize_runs(results: Sequence[SimulationResult]) -> RunSummary:
    """Fold a batch of results into the row an experiment table prints."""
    gathered = [r for r in results if r.gathered]
    rounds = [r.rounds for r in gathered]
    return RunSummary(
        runs=len(results),
        gathered=len(gathered),
        impossible=sum(1 for r in results if r.verdict == "impossible"),
        stalled=sum(1 for r in results if r.verdict == "stalled"),
        timed_out=sum(1 for r in results if r.verdict == "max-rounds"),
        mean_rounds_gathered=(sum(rounds) / len(rounds)) if rounds else math.nan,
        max_rounds_gathered=max(rounds) if rounds else None,
        mean_distance=(
            sum(r.total_distance for r in gathered) / len(gathered)
            if gathered
            else math.nan
        ),
    )
