"""The GATHERED predicate (Definition 9).

Gathering is achieved at time ``tau`` when (a) all live robots occupy a
single location and (b) the algorithm does not instruct that location to
move — i.e. the configuration is a fixpoint for the survivors.  Clause
(b) matters: robots transiently co-located mid-execution do not count as
gathered if the algorithm would scatter them again.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..algorithms.base import GatheringAlgorithm
from ..core import Configuration, GatheringError
from ..geometry import Point

__all__ = ["gathered_point", "is_gathered"]


def gathered_point(
    positions: Dict[int, Point],
    live_ids: Sequence[int],
    tol,
) -> Optional[Point]:
    """The common location of all live robots, or ``None``.

    ``positions`` maps robot ids to global positions; crashed robots are
    ignored (they may be stranded anywhere).
    """
    live = [positions[rid] for rid in live_ids]
    if not live:
        return None
    anchor = live[0]
    if all(p.close_to(anchor, tol) for p in live[1:]):
        return anchor
    return None


def is_gathered(
    positions: Dict[int, Point],
    live_ids: Sequence[int],
    algorithm: GatheringAlgorithm,
    tol,
) -> bool:
    """Definition 9, evaluated on global state.

    The stability clause is checked by running the algorithm once on the
    *current* configuration from the common location: gathered iff the
    instruction is "stay".  Algorithms that error on the current
    configuration (e.g. bivalent refusal) are not gathered.
    """
    spot = gathered_point(positions, live_ids, tol)
    if spot is None:
        return False
    config = Configuration(
        [positions[rid] for rid in sorted(positions)], tol
    )
    try:
        destination = algorithm.compute(config, spot)
    except GatheringError:
        return False
    return destination.close_to(spot, tol)
