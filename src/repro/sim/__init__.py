"""LCM-cycle simulator: robots, schedulers, faults, movement, engine.

One engine (:class:`Simulation`) runs both the paper's ATOM model and
the ASYNC/CORDA model; the pluggable activation models in
:mod:`repro.sim.lcm` select between them.
"""

from .async_engine import AsyncSimulation
from .batch import BatchedSimulation
from .byzantine import (
    AntiGatherByzantine,
    ByzantinePolicy,
    ElectionThiefByzantine,
    OscillatingByzantine,
    StationaryByzantine,
)
from .engine import Simulation, SimulationResult, Verdict, component_rng, snap_destination
from .lcm import ActivationModel, AtomicActivation, PendingMove, PhasedActivation
from .faults import (
    CrashAdversary,
    CrashAfterMove,
    CrashAtRounds,
    CrashElected,
    NoCrashes,
    RandomCrashes,
)
from .gathering import gathered_point, is_gathered
from .metrics import RunSummary, spread, summarize_runs
from .movement import (
    AdversarialStop,
    CollusiveStop,
    MovementModel,
    PerRobotSpeed,
    RandomStop,
    RigidMovement,
)
from .robot import Robot
from .scheduler import (
    FairnessWrapper,
    HalfSplitAdversary,
    FullySynchronous,
    LaggardAdversary,
    PoissonScheduler,
    RandomSubset,
    RoundRobin,
    Scheduler,
)
from .trace import RoundRecord, Trace, TraceMeta
from .replay import (
    DiffReport,
    Divergence,
    ReplayReport,
    compare_traces,
    differential_check,
    load_trace,
    replay_trace,
    save_trace,
)

__all__ = [
    "AsyncSimulation",
    "BatchedSimulation",
    "AntiGatherByzantine",
    "ByzantinePolicy",
    "ElectionThiefByzantine",
    "OscillatingByzantine",
    "StationaryByzantine",
    "Simulation",
    "SimulationResult",
    "Verdict",
    "component_rng",
    "snap_destination",
    "ActivationModel",
    "AtomicActivation",
    "PendingMove",
    "PhasedActivation",
    "CrashAdversary",
    "CrashAfterMove",
    "CrashAtRounds",
    "CrashElected",
    "NoCrashes",
    "RandomCrashes",
    "gathered_point",
    "is_gathered",
    "RunSummary",
    "spread",
    "summarize_runs",
    "AdversarialStop",
    "CollusiveStop",
    "MovementModel",
    "PerRobotSpeed",
    "RandomStop",
    "RigidMovement",
    "Robot",
    "FairnessWrapper",
    "HalfSplitAdversary",
    "FullySynchronous",
    "LaggardAdversary",
    "PoissonScheduler",
    "RandomSubset",
    "RoundRobin",
    "Scheduler",
    "RoundRecord",
    "Trace",
    "TraceMeta",
    "DiffReport",
    "Divergence",
    "ReplayReport",
    "compare_traces",
    "differential_check",
    "load_trace",
    "replay_trace",
    "save_trace",
]
