"""ATOM-model simulator: robots, schedulers, faults, movement, engine."""

from .async_engine import AsyncSimulation
from .batch import BatchedSimulation
from .byzantine import (
    AntiGatherByzantine,
    ByzantinePolicy,
    ElectionThiefByzantine,
    OscillatingByzantine,
    StationaryByzantine,
)
from .engine import Simulation, SimulationResult, Verdict
from .faults import (
    CrashAdversary,
    CrashAfterMove,
    CrashAtRounds,
    CrashElected,
    NoCrashes,
    RandomCrashes,
)
from .gathering import gathered_point, is_gathered
from .metrics import RunSummary, spread, summarize_runs
from .movement import (
    AdversarialStop,
    CollusiveStop,
    MovementModel,
    RandomStop,
    RigidMovement,
)
from .robot import Robot
from .scheduler import (
    FairnessWrapper,
    HalfSplitAdversary,
    FullySynchronous,
    LaggardAdversary,
    RandomSubset,
    RoundRobin,
    Scheduler,
)
from .trace import RoundRecord, Trace, TraceMeta
from .replay import (
    DiffReport,
    Divergence,
    ReplayReport,
    compare_traces,
    differential_check,
    load_trace,
    replay_trace,
    save_trace,
)

__all__ = [
    "AsyncSimulation",
    "BatchedSimulation",
    "AntiGatherByzantine",
    "ByzantinePolicy",
    "ElectionThiefByzantine",
    "OscillatingByzantine",
    "StationaryByzantine",
    "Simulation",
    "SimulationResult",
    "Verdict",
    "CrashAdversary",
    "CrashAfterMove",
    "CrashAtRounds",
    "CrashElected",
    "NoCrashes",
    "RandomCrashes",
    "gathered_point",
    "is_gathered",
    "RunSummary",
    "spread",
    "summarize_runs",
    "AdversarialStop",
    "CollusiveStop",
    "MovementModel",
    "RandomStop",
    "RigidMovement",
    "Robot",
    "FairnessWrapper",
    "HalfSplitAdversary",
    "FullySynchronous",
    "LaggardAdversary",
    "RandomSubset",
    "RoundRobin",
    "Scheduler",
    "RoundRecord",
    "Trace",
    "TraceMeta",
    "DiffReport",
    "Divergence",
    "ReplayReport",
    "compare_traces",
    "differential_check",
    "load_trace",
    "replay_trace",
    "save_trace",
]
