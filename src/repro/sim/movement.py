"""Movement models — the MOVE phase and the ``delta`` guarantee.

The model of Section II: a move towards the computed destination may be
stopped by the adversary, but there is an unknown constant ``delta > 0``
such that a robot either reaches a destination closer than ``delta`` or
travels at least ``delta`` towards it.  The progress measures of the
correctness proofs (e.g. the ``phi`` decrease of Lemma 5.6, claim C2)
lean on exactly this guarantee.

Models:

* :class:`RigidMovement` — moves always complete (the classic *rigid*
  special case).
* :class:`AdversarialStop` — the worst case: every long move is cut at
  exactly ``delta``.
* :class:`RandomStop` — uniformly random cut in ``[delta, distance]``.

All models return the destination *bitwise* when it is reached, so exact
multiplicities form whenever the algorithm sends robots to an occupied
position.
"""

from __future__ import annotations

import random
from typing import Protocol

from ..geometry import Point

__all__ = [
    "MovementModel",
    "RigidMovement",
    "AdversarialStop",
    "RandomStop",
    "CollusiveStop",
]


class MovementModel(Protocol):
    """Strategy resolving where an interrupted move actually ends."""

    name: str

    def endpoint(self, origin: Point, destination: Point, rng: random.Random) -> Point:
        """Actual end position of a move ``origin -> destination``."""
        ...


class RigidMovement:
    """Every move reaches its destination (delta = infinity)."""

    name = "rigid"

    def endpoint(self, origin: Point, destination: Point, rng: random.Random) -> Point:
        return destination


class _DeltaModel:
    """Shared validation for the non-rigid models."""

    def __init__(self, delta: float) -> None:
        if not delta > 0.0:
            raise ValueError("delta must be strictly positive (Section II)")
        self.delta = delta


class AdversarialStop(_DeltaModel):
    """Cut every move at exactly ``delta`` — the slowest legal progress.

    This is the strongest movement adversary: any algorithm correct
    under it is correct under every ``t >= delta`` stopping rule.
    """

    def __init__(self, delta: float) -> None:
        super().__init__(delta)
        self.name = f"adversarial-stop(delta={delta:g})"

    def endpoint(self, origin: Point, destination: Point, rng: random.Random) -> Point:
        dist = origin.distance_to(destination)
        if dist <= self.delta:
            return destination
        step = (destination - origin) * (self.delta / dist)
        return origin + step


class CollusiveStop(_DeltaModel):
    """The bivalent-manufacturing adversary (experiment E9).

    When several robots move along a *common ray* towards a *common
    destination*, this adversary stops all of them at one shared point
    (the legal stop closest to the destination for the least-advanced
    mover), stacking them into a single multiplicity point.  All other
    moves complete.  This is the strongest stopping adversary the model
    permits — every robot still progresses at least ``delta`` — and it
    is exactly the attack that Definition 8 (safe points) and the
    side-step rule of case ``M`` are designed to survive.

    The engine calls :meth:`begin_round` with all of the round's moves
    so the adversary can coordinate; ``endpoint`` then serves each robot
    its pre-computed stop.
    """

    def __init__(self, delta: float) -> None:
        super().__init__(delta)
        self.name = f"collusive-stop(delta={delta:g})"
        self._stops = {}

    def begin_round(self, moves) -> None:
        """Coordinate: ``moves`` is ``{robot_id: (origin, destination)}``."""
        self._stops = {}
        groups = {}
        for rid, (origin, dest) in moves.items():
            dist = origin.distance_to(dest)
            if dist <= self.delta:
                continue  # will legally arrive; nothing to collude on
            d = origin - dest
            direction = d.normalized()
            # Ray signature: destination plus quantized direction.
            key = (
                round(dest.x, 9),
                round(dest.y, 9),
                round(direction.x, 6),
                round(direction.y, 6),
            )
            groups.setdefault(key, []).append((rid, origin, dest, dist))
        for members in groups.values():
            if len(members) < 2:
                continue
            # Shared stop: the least-advanced mover travels exactly
            # delta; everyone else is stopped at the same point (legal,
            # since they travel more than delta).
            rid0, origin0, dest0, dist0 = min(members, key=lambda m: m[3])
            stop = origin0 + (dest0 - origin0) * (self.delta / dist0)
            for rid, _origin, _dest, _dist in members:
                self._stops[rid] = stop

    def endpoint_for(self, robot_id: int, origin: Point, destination: Point):
        """Engine-facing resolution with the robot's identity."""
        if robot_id in self._stops:
            return self._stops[robot_id]
        return destination

    def endpoint(self, origin: Point, destination: Point, rng: random.Random) -> Point:
        # Fallback for engines that do not pass identities: behave
        # rigidly (collusion needs begin_round + endpoint_for).
        return destination


class RandomStop(_DeltaModel):
    """Cut long moves at a uniform point of ``[delta, distance]``.

    Models jitter rather than malice; used by the statistical
    experiments to decorrelate robots' progress.
    """

    def __init__(self, delta: float) -> None:
        super().__init__(delta)
        self.name = f"random-stop(delta={delta:g})"

    def endpoint(self, origin: Point, destination: Point, rng: random.Random) -> Point:
        dist = origin.distance_to(destination)
        if dist <= self.delta:
            return destination
        travelled = rng.uniform(self.delta, dist)
        if travelled >= dist:
            return destination
        step = (destination - origin) * (travelled / dist)
        return origin + step
