"""Movement models — the MOVE phase and the ``delta`` guarantee.

The model of Section II: a move towards the computed destination may be
stopped by the adversary, but there is an unknown constant ``delta > 0``
such that a robot either reaches a destination closer than ``delta`` or
travels at least ``delta`` towards it.  The progress measures of the
correctness proofs (e.g. the ``phi`` decrease of Lemma 5.6, claim C2)
lean on exactly this guarantee.

Models:

* :class:`RigidMovement` — moves always complete (the classic *rigid*
  special case).
* :class:`AdversarialStop` — the worst case: every long move is cut at
  exactly ``delta``.
* :class:`RandomStop` — uniformly random cut in ``[delta, distance]``.
* :class:`CollusiveStop` — coordinated stops stacking common-ray movers
  (identity-aware via ``begin_round`` / ``endpoint_for``).
* :class:`PerRobotSpeed` — heterogeneous per-robot speed caps (not an
  adversary; the LCMmodel-style speed axis).

All models return the destination *bitwise* when it is reached, so exact
multiplicities form whenever the algorithm sends robots to an occupied
position.
"""

from __future__ import annotations

import random
from typing import Protocol

from ..geometry import Point

__all__ = [
    "MovementModel",
    "RigidMovement",
    "AdversarialStop",
    "RandomStop",
    "CollusiveStop",
    "PerRobotSpeed",
]


class MovementModel(Protocol):
    """Strategy resolving where an interrupted move actually ends."""

    name: str

    def endpoint(self, origin: Point, destination: Point, rng: random.Random) -> Point:
        """Actual end position of a move ``origin -> destination``."""
        ...


class RigidMovement:
    """Every move reaches its destination (delta = infinity)."""

    name = "rigid"

    def endpoint(self, origin: Point, destination: Point, rng: random.Random) -> Point:
        return destination


class _DeltaModel:
    """Shared validation for the non-rigid models."""

    def __init__(self, delta: float) -> None:
        if not delta > 0.0:
            raise ValueError("delta must be strictly positive (Section II)")
        self.delta = delta


class AdversarialStop(_DeltaModel):
    """Cut every move at exactly ``delta`` — the slowest legal progress.

    This is the strongest movement adversary: any algorithm correct
    under it is correct under every ``t >= delta`` stopping rule.
    """

    def __init__(self, delta: float) -> None:
        super().__init__(delta)
        self.name = f"adversarial-stop(delta={delta:g})"

    def endpoint(self, origin: Point, destination: Point, rng: random.Random) -> Point:
        dist = origin.distance_to(destination)
        if dist <= self.delta:
            return destination
        step = (destination - origin) * (self.delta / dist)
        return origin + step


class CollusiveStop(_DeltaModel):
    """The bivalent-manufacturing adversary (experiment E9).

    When several robots move along a *common ray* towards a *common
    destination*, this adversary stops all of them at one shared point
    (the ``delta``-stop of the *most*-advanced mover — the farthest
    legal common stop from the destination), stacking them into a
    single multiplicity point.  All other moves complete.  This is the
    strongest stopping adversary the model permits — every robot still
    progresses at least ``delta`` — and it is exactly the attack that
    Definition 8 (safe points) and the side-step rule of case ``M`` are
    designed to survive.

    The engine calls :meth:`begin_round` with all of the round's moves
    so the adversary can coordinate; ``endpoint`` then serves each robot
    its pre-computed stop.
    """

    def __init__(self, delta: float) -> None:
        super().__init__(delta)
        self.name = f"collusive-stop(delta={delta:g})"
        self._stops = {}

    def begin_round(self, moves) -> None:
        """Coordinate: ``moves`` is ``{robot_id: (origin, destination)}``."""
        self._stops = {}
        groups = {}
        for rid, (origin, dest) in moves.items():
            dist = origin.distance_to(dest)
            if dist <= self.delta:
                continue  # will legally arrive; nothing to collude on
            d = origin - dest
            direction = d.normalized()
            # Ray signature: destination plus quantized direction.
            key = (
                round(dest.x, 9),
                round(dest.y, 9),
                round(direction.x, 6),
                round(direction.y, 6),
            )
            groups.setdefault(key, []).append((rid, origin, dest, dist))
        for members in groups.values():
            if len(members) < 2:
                continue
            # Shared stop: the most-advanced mover (smallest remaining
            # distance) travels exactly delta; everyone farther back is
            # stopped at the same point (legal, since they travel more
            # than delta to reach it).
            rid0, origin0, dest0, dist0 = min(members, key=lambda m: m[3])
            stop = origin0 + (dest0 - origin0) * (self.delta / dist0)
            for rid, _origin, _dest, _dist in members:
                self._stops[rid] = stop

    def endpoint_for(self, robot_id: int, origin: Point, destination: Point):
        """Engine-facing resolution with the robot's identity."""
        if robot_id in self._stops:
            return self._stops[robot_id]
        return destination

    def endpoint(self, origin: Point, destination: Point, rng: random.Random) -> Point:
        # Fallback for engines that do not pass identities: behave
        # rigidly (collusion needs begin_round + endpoint_for).
        return destination


class PerRobotSpeed:
    """Heterogeneous robot speeds (the LCMmodel scheduler axis).

    Robot ``i`` travels at most ``speeds[i % len(speeds)]`` per MOVE
    activation (reaching the destination exactly when it is within
    reach).  Every speed is strictly positive, so the Section II
    ``delta`` guarantee holds with ``delta = min(speeds)`` — this is a
    *fault-free* heterogeneity model, not an adversary: slow robots
    simply take more activations to arrive.

    The engine resolves moves through :meth:`endpoint_for` (identity
    aware); the identity-blind :meth:`endpoint` fallback caps every
    move at the slowest speed, the only identity-free bound that never
    overshoots a robot's real capability.
    """

    def __init__(self, speeds) -> None:
        self.speeds = tuple(float(s) for s in speeds)
        if not self.speeds:
            raise ValueError("per-robot-speed needs at least one speed")
        if any(not s > 0.0 for s in self.speeds):
            raise ValueError("speeds must be strictly positive (Section II)")
        label = ",".join(f"{s:g}" for s in self.speeds)
        self.name = f"per-robot-speed({label})"

    def speed_of(self, robot_id: int) -> float:
        return self.speeds[robot_id % len(self.speeds)]

    def _capped(self, origin: Point, destination: Point, cap: float) -> Point:
        dist = origin.distance_to(destination)
        if dist <= cap:
            return destination
        return origin + (destination - origin) * (cap / dist)

    def endpoint_for(self, robot_id: int, origin: Point, destination: Point) -> Point:
        return self._capped(origin, destination, self.speed_of(robot_id))

    def endpoint(self, origin: Point, destination: Point, rng: random.Random) -> Point:
        return self._capped(origin, destination, min(self.speeds))


class RandomStop(_DeltaModel):
    """Cut long moves at a uniform point of ``[delta, distance]``.

    Models jitter rather than malice; used by the statistical
    experiments to decorrelate robots' progress.
    """

    def __init__(self, delta: float) -> None:
        super().__init__(delta)
        self.name = f"random-stop(delta={delta:g})"

    def endpoint(self, origin: Point, destination: Point, rng: random.Random) -> Point:
        dist = origin.distance_to(destination)
        if dist <= self.delta:
            return destination
        travelled = rng.uniform(self.delta, dist)
        if travelled >= dist:
            return destination
        step = (destination - origin) * (travelled / dist)
        return origin + step
