"""Crash adversaries — when and whom to crash (fault model of Section II).

A crashed robot stops taking actions forever but remains visible; up to
``f < n`` robots may crash at arbitrary times.  The adversary decides
*which* robots and *when*, and the interesting adversaries are the ones
aimed at the proofs' progress arguments:

* :class:`CrashAfterMove` realizes the adversary of Lemma 5.3's claim C2
  — it crashes a robot immediately after that robot moves, trying to
  forever re-block the path of some correct robot.  The lemma argues the
  adversary "runs out of live robots"; experiment E1 confirms it.
* :class:`CrashElected` kills robots located at the current gathering
  target, forcing the election/maximum to keep shifting.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Protocol, Sequence, Set

from ..core import Configuration
from ..geometry import Point

__all__ = [
    "CrashAdversary",
    "NoCrashes",
    "CrashAtRounds",
    "RandomCrashes",
    "CrashAfterMove",
    "CrashElected",
]


class CrashAdversary(Protocol):
    """Strategy deciding the robots that crash at the start of a round."""

    name: str
    budget: int

    def crashes(
        self,
        round_index: int,
        live_ids: Sequence[int],
        positions: Dict[int, Point],
        last_moved: Set[int],
        rng: random.Random,
    ) -> Set[int]:
        """Ids (subset of ``live_ids``) crashing now.

        ``last_moved`` contains the robots that changed position during
        the previous round — ammunition for move-reactive adversaries.
        The engine truncates the result to the remaining fault budget.
        """
        ...


class NoCrashes:
    """The fault-free baseline adversary."""

    name = "no-crash"
    budget = 0

    def crashes(self, round_index, live_ids, positions, last_moved, rng):
        return set()


class CrashAtRounds:
    """Deterministic schedule: ``{robot_id: round_index}``.

    Used by regression tests to replay exact fault patterns.
    """

    name = "scheduled"

    def __init__(self, schedule: Dict[int, int]) -> None:
        self.schedule = dict(schedule)
        self.budget = len(self.schedule)

    def crashes(self, round_index, live_ids, positions, last_moved, rng):
        return {
            rid
            for rid, when in self.schedule.items()
            if when == round_index and rid in set(live_ids)
        }


class RandomCrashes:
    """Crash up to ``f`` uniformly random robots, one with probability
    ``rate`` per round.

    With the default rate the faults spread over the execution rather
    than front-loading, which exercises mid-flight re-classification.
    """

    name = "random-crash"

    def __init__(self, f: int, rate: float = 0.2) -> None:
        if f < 0:
            raise ValueError("fault budget must be non-negative")
        if not 0.0 < rate <= 1.0:
            raise ValueError("crash rate must be in (0, 1]")
        self.budget = f
        self.rate = rate
        self._crashed = 0

    def crashes(self, round_index, live_ids, positions, last_moved, rng):
        if self._crashed >= self.budget or not live_ids:
            return set()
        if rng.random() < self.rate:
            self._crashed += 1
            return {rng.choice(sorted(live_ids))}
        return set()


class CrashAfterMove:
    """Lemma 5.3's adversary: crash a robot right after it moves.

    Each time some robot moves, the adversary spends one unit of its
    budget to crash one of the movers (the first in id order, for
    determinism).  The proof's point: each crash can re-block a correct
    robot at most once, so the adversary exhausts its ``f < n`` budget
    and gathering still completes.
    """

    name = "crash-after-move"

    def __init__(self, f: int) -> None:
        if f < 0:
            raise ValueError("fault budget must be non-negative")
        self.budget = f
        self._crashed = 0

    def crashes(self, round_index, live_ids, positions, last_moved, rng):
        if self._crashed >= self.budget:
            return set()
        movers = sorted(set(live_ids) & last_moved)
        if not movers:
            return set()
        self._crashed += 1
        return {movers[0]}


class CrashElected:
    """Crash robots sitting on the point of maximum multiplicity.

    Aimed at the election invariants: by killing the robots that reached
    the target, the adversary hopes the "unique maximum" tie-breaks keep
    changing.  (They do not — multiplicity never decreases — which is
    exactly what the experiment verifies.)
    """

    name = "crash-elected"

    def __init__(self, f: int) -> None:
        if f < 0:
            raise ValueError("fault budget must be non-negative")
        self.budget = f
        self._crashed = 0

    def crashes(self, round_index, live_ids, positions, last_moved, rng):
        if self._crashed >= self.budget or not live_ids:
            return set()
        config = Configuration([positions[rid] for rid in sorted(positions)])
        target = config.max_multiplicity_points()[0]
        at_target = [
            rid
            for rid in sorted(live_ids)
            if positions[rid].close_to(target, config.tol)
        ]
        if not at_target:
            return set()
        self._crashed += 1
        return {at_target[0]}
