"""Activation models — the pluggable half of the unified LCM engine.

Every robot model in the literature runs the same LOOK–COMPUTE–MOVE
cycle; what distinguishes ATOM (FSYNC/SSYNC) from ASYNC (CORDA) is
*how the cycle is scheduled*:

:class:`AtomicActivation`
    one activation executes the whole cycle atomically, and all moves of
    a round are applied against one shared snapshot — a round-global
    barrier.  This is the semi-synchronous model the paper proves
    WAIT-FREE-GATHER correct in (FSYNC is the special case where the
    scheduler activates everybody).

:class:`PhasedActivation`
    LOOK+COMPUTE and MOVE are *separate* activations, scheduled
    independently per robot with no barrier in between: a robot's
    destination is computed against the configuration at its LOOK and
    executed whenever the scheduler next activates it, by which time the
    world may have moved on.  The pending (stale) destination is the
    hazard the CORDA model adds, and the :class:`PendingMove` table here
    is exactly that staleness made explicit.

The engine (:class:`repro.sim.Simulation`) owns everything the two
models share — crashes, fair scheduling, snapshots with visibility /
noise / byzantine ablations, movement-model identity hooks, destination
snapping, trace records — and asks its activation model which phase an
activation runs and where half-finished cycles live.  The legacy
``Simulation`` / ``AsyncSimulation`` split is reproduced as the two
models here; the committed corpus pins both configurations bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Protocol, runtime_checkable

from ..geometry import Point

__all__ = [
    "ActivationModel",
    "AtomicActivation",
    "PendingMove",
    "PhasedActivation",
]


@dataclass
class PendingMove:
    """A computed but not yet executed move (the stale destination)."""

    destination: Point
    looked_at_tick: int


@runtime_checkable
class ActivationModel(Protocol):
    """Strategy deciding how LCM cycles map onto scheduler activations."""

    #: Engine label — flows into trace meta, obs events and span attrs.
    name: str
    #: ``False``: one activation = one atomic cycle with a round-global
    #: move barrier.  ``True``: LOOK and MOVE are separate activations
    #: resolved sequentially in robot order, no barrier.
    phased: bool
    #: Half-finished cycles: robot id -> its computed destination.
    #: Always empty for an atomic model.
    pending: Dict[int, PendingMove]

    def on_crash(self, robot_id: int) -> None:
        """A robot crashed: drop whatever cycle state it held."""
        ...


class AtomicActivation:
    """ATOM semantics: every activation is a full atomic LCM cycle.

    All active robots observe the *same* snapshot and their moves are
    applied simultaneously — no robot ever holds a pending destination,
    so :attr:`pending` stays empty by construction.
    """

    name = "atom"
    phased = False

    def __init__(self) -> None:
        self.pending: Dict[int, PendingMove] = {}

    def on_crash(self, robot_id: int) -> None:
        # Nothing to drop: cycles never outlive their activation.
        return None


class PhasedActivation:
    """CORDA semantics: LOOK+COMPUTE and MOVE are separate activations.

    An idle robot's next activation snapshots the *current* world and
    parks the computed destination in :attr:`pending`; its following
    activation executes that (possibly stale) move.  Activations resolve
    sequentially in robot order within a tick — a later robot's LOOK
    already sees an earlier robot's move of the same tick, which is
    precisely the absence of the ATOM barrier.
    """

    name = "async"
    phased = True

    def __init__(self) -> None:
        self.pending: Dict[int, PendingMove] = {}

    def on_crash(self, robot_id: int) -> None:
        # A crashed robot never executes its computed move.
        self.pending.pop(robot_id, None)

    def divergent_pending(
        self, spot: Point, live_ids: Iterable[int], tol
    ) -> bool:
        """Does any live robot hold a pending move away from ``spot``?

        The gathered predicate must refuse a configuration where
        everyone stands together but a stale destination is about to
        pull someone back out.
        """
        live = set(live_ids)
        return any(
            rid in live and not entry.destination.close_to(spot, tol)
            for rid, entry in self.pending.items()
        )
