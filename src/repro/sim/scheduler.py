"""Activation schedulers for the LCM-cycle engine.

Each round the adversarial scheduler picks an arbitrary subset of the
live robots to advance (one atomic cycle under ATOM, one phase under
the phased/CORDA activation model).  The only obligation is *fairness*:
every correct robot is activated infinitely often.  The engine enforces
fairness mechanically (see :class:`FairnessWrapper`), so individual
schedulers are free to be as hostile as they like.

The suite of schedulers mirrors the extremes the correctness proofs
quantify over:

* :class:`FullySynchronous` — everybody, every round (FSYNC).
* :class:`RoundRobin` — exactly one robot per round (maximal asynchrony
  among fair ATOM schedules).
* :class:`RandomSubset` — independent coin per robot (the "generic"
  adversary used for statistical experiments).
* :class:`LaggardAdversary` — starves a chosen victim for as long as
  fairness permits, modelling the slowest-robot worst case.
* :class:`HalfSplitAdversary` — the impossibility proof's scheduler:
  activates one co-located cluster at a time, re-creating bivalent
  stand-offs forever against naive algorithms.
* :class:`PoissonScheduler` — per-robot exponential activation clocks
  (the LCMmodel-style continuous-time schedule, discretized).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Protocol, Sequence, Set

__all__ = [
    "Scheduler",
    "FullySynchronous",
    "RoundRobin",
    "RandomSubset",
    "LaggardAdversary",
    "HalfSplitAdversary",
    "PoissonScheduler",
    "FairnessWrapper",
]


class Scheduler(Protocol):
    """Strategy choosing the robots to activate in a round."""

    name: str

    def select(
        self, round_index: int, live_ids: Sequence[int], rng: random.Random
    ) -> Set[int]:
        """Subset of ``live_ids`` to activate (may be empty; the engine
        guarantees overall progress via the fairness wrapper)."""
        ...


class FullySynchronous:
    """FSYNC: all live robots act every round."""

    name = "fsync"

    def select(
        self, round_index: int, live_ids: Sequence[int], rng: random.Random
    ) -> Set[int]:
        return set(live_ids)


class RoundRobin:
    """Exactly one live robot per round, cycling in id order.

    The strictest fair schedule: between two activations of a robot,
    every other robot acts exactly once.
    """

    name = "round-robin"

    def select(
        self, round_index: int, live_ids: Sequence[int], rng: random.Random
    ) -> Set[int]:
        if not live_ids:
            return set()
        ordered = sorted(live_ids)
        return {ordered[round_index % len(ordered)]}


class RandomSubset:
    """Each live robot is activated independently with probability ``p``."""

    name = "random"

    def __init__(self, p: float = 0.5) -> None:
        if not 0.0 < p <= 1.0:
            raise ValueError("activation probability must be in (0, 1]")
        self.p = p
        self.name = f"random(p={p:g})"

    def select(
        self, round_index: int, live_ids: Sequence[int], rng: random.Random
    ) -> Set[int]:
        return {rid for rid in live_ids if rng.random() < self.p}


class LaggardAdversary:
    """Starve one victim robot as long as fairness allows.

    The victim is re-chosen whenever it crashes: the adversary always
    wants a *correct* robot to lag, since starving a crashed robot is a
    no-op.  All other robots are activated every round, producing maximal
    divergence between the laggard's stale world-view and reality.
    """

    name = "laggard"

    def __init__(self, victim: int = 0) -> None:
        self.initial_victim = victim

    def select(
        self, round_index: int, live_ids: Sequence[int], rng: random.Random
    ) -> Set[int]:
        ids = set(live_ids)
        victim = self.initial_victim
        if victim not in ids and ids:
            victim = min(ids)
        return ids - {victim}


class HalfSplitAdversary:
    """The impossibility proof's scheduler: activate one cluster at a time.

    The argument behind Lemma 5.2 (and the classic ``n = 2``
    impossibility) lets the adversary activate the robots of one of the
    two bivalent locations per round, so that any "move to a common
    point" rule re-creates a two-location configuration forever.  This
    scheduler generalizes that: each round it activates either the
    robots on the lexicographically smallest occupied location or all
    the others, alternating.

    It needs to see positions; the engine feeds them through
    :meth:`observe` before each selection.
    """

    name = "half-split"

    def __init__(self) -> None:
        self._positions = {}

    def observe(self, positions) -> None:
        """Engine hook: latest global positions (id -> Point)."""
        self._positions = dict(positions)

    def select(
        self, round_index: int, live_ids: Sequence[int], rng: random.Random
    ) -> Set[int]:
        ids = [rid for rid in live_ids if rid in self._positions]
        if not ids:
            return set(live_ids)
        anchor = min(self._positions[rid] for rid in ids)
        cluster = {
            rid
            for rid in ids
            if self._positions[rid].distance_to(anchor) <= 1e-9
        }
        rest = set(ids) - cluster
        if round_index % 2 == 0 or not rest:
            return cluster
        return rest


class PoissonScheduler:
    """Per-robot exponential activation clocks, discretized to rounds.

    Each robot owns an independent Poisson process of rate ``rate``: the
    gaps between its activations are exponential draws, so activations
    cluster and starve stochastically the way continuous-time schedules
    (the LCMmodel design) do — unlike :class:`RandomSubset`, whose
    per-round coins make every gap geometric with a hard floor of one
    round.  A robot is activated in every round its next event time has
    reached; its clock then advances by fresh exponential gaps past the
    current round.

    Robots are iterated in sorted id order and all draws come from the
    engine's dedicated scheduler substream, so a (seed, rate) pair fixes
    the whole schedule.  Fairness is not guaranteed by the process alone
    (a tail of long gaps can starve a robot arbitrarily long);
    :class:`FairnessWrapper` supplies the bound as usual.
    """

    name = "poisson"

    def __init__(self, rate: float = 0.5) -> None:
        if not rate > 0.0:
            raise ValueError("activation rate must be strictly positive")
        self.rate = rate
        self.name = f"poisson(rate={rate:g})"
        self._next: dict = {}

    def select(
        self, round_index: int, live_ids: Sequence[int], rng: random.Random
    ) -> Set[int]:
        chosen: Set[int] = set()
        for rid in sorted(live_ids):
            t = self._next.get(rid)
            if t is None:
                # Clock starts at the robot's first scheduled round: the
                # first gap is drawn from the same exponential as later
                # ones (time 0 is the start of the execution).
                t = rng.expovariate(self.rate)
            if t <= round_index:
                chosen.add(rid)
                while t <= round_index:
                    t += rng.expovariate(self.rate)
            self._next[rid] = t
        return chosen


class FairnessWrapper:
    """Engine-side fairness enforcement around any scheduler.

    Any live robot not activated for ``bound`` consecutive rounds is
    force-activated, and an empty selection falls back to activating the
    longest-idle live robot.  With ``bound`` finite every correct robot
    acts infinitely often in an infinite execution — the ATOM fairness
    obligation — regardless of the wrapped scheduler's malice.
    """

    def __init__(self, inner: Scheduler, bound: int = 32) -> None:
        if bound < 1:
            raise ValueError("fairness bound must be at least 1")
        self.inner = inner
        self.bound = bound
        self.name = inner.name

    def select(
        self,
        round_index: int,
        live_ids: Sequence[int],
        rng: random.Random,
        last_active: dict,
        positions: Optional[dict] = None,
    ) -> Set[int]:
        if positions is not None and hasattr(self.inner, "observe"):
            self.inner.observe(positions)
        chosen = set(self.inner.select(round_index, live_ids, rng)) & set(live_ids)
        for rid in live_ids:
            if round_index - last_active.get(rid, -1) >= self.bound:
                chosen.add(rid)
        if not chosen and live_ids:
            chosen.add(min(live_ids, key=lambda r: last_active.get(r, -1)))
        return chosen
