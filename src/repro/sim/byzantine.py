"""Byzantine robots — the stronger fault model the paper rules out.

Section I of the paper recalls the Agmon–Peleg result that a **single
byzantine robot** can prevent gathering of the correct robots even for
``n = 3`` — which is exactly why the paper restricts itself to crash
faults.  Experiment E11 reproduces that separation empirically: the same
algorithm that shrugs off ``n - 1`` crashes is derailed by one byzantine
robot executing a targeted strategy.

A byzantine robot is *controlled by the adversary*: when activated it
moves wherever its policy says, with full knowledge of the global state
(the adversary is omniscient), and it remains visible to — and counted
by — the correct robots, who cannot tell it apart from a teammate.
"""

from __future__ import annotations

import random
from typing import Dict, List, Protocol, Sequence

from ..geometry import Point, centroid

__all__ = [
    "ByzantinePolicy",
    "StationaryByzantine",
    "OscillatingByzantine",
    "ElectionThiefByzantine",
    "AntiGatherByzantine",
]


class ByzantinePolicy(Protocol):
    """Adversary strategy steering one byzantine robot."""

    name: str

    def destination(
        self,
        robot_id: int,
        positions: Dict[int, Point],
        correct_ids: Sequence[int],
        round_index: int,
        rng: random.Random,
    ) -> Point:
        """Where the byzantine robot moves this activation (global)."""
        ...


class StationaryByzantine:
    """Never moves — behaviourally identical to a crashed robot.

    The sanity policy: against it, gathering must still succeed
    (byzantine subsumes crash; a byzantine robot *choosing* to act
    crashed gives exactly the crash model the paper tolerates).
    """

    name = "stationary"

    def destination(self, robot_id, positions, correct_ids, round_index, rng):
        return positions[robot_id]


class OscillatingByzantine:
    """Bounces between two fixed locations forever.

    The classic anti-gathering strategy: any rule that incorporates the
    byzantine robot's position into its target computation chases a
    target that never settles.
    """

    name = "oscillating"

    def __init__(self, a: Point, b: Point) -> None:
        if a == b:
            raise ValueError("oscillation needs two distinct anchors")
        self.a = a
        self.b = b

    def destination(self, robot_id, positions, correct_ids, round_index, rng):
        current = positions[robot_id]
        # Head for whichever anchor is farther away: guarantees motion.
        if current.distance_to(self.a) >= current.distance_to(self.b):
            return self.a
        return self.b


class ElectionThiefByzantine:
    """Win the election, let the correct robots approach, then flee.

    The strategy behind the Agmon–Peleg byzantine impossibility: the
    byzantine robot makes *itself* the most attractive gathering target
    (multiplicities tie at 1, so the smallest sum of distances wins —
    i.e. a spot amid the correct robots), waits until a correct robot
    gets close, and relocates far away, stealing the election again from
    its new position.  Correct robots keep marching towards a target
    that never lets them arrive.

    The theft only works while no multiplicity point exists and the
    scheduler never lets two correct robots complete the same march in
    one round — which is why experiment E11 pairs this policy with the
    round-robin scheduler and short movement cut-offs.
    """

    name = "election-thief"

    def __init__(self, flee_radius: float = 1.0) -> None:
        if flee_radius <= 0:
            raise ValueError("flee radius must be positive")
        self.flee_radius = flee_radius
        self._phase = 0

    def destination(self, robot_id, positions, correct_ids, round_index, rng):
        me = positions[robot_id]
        others = [positions[rid] for rid in correct_ids]
        if not others:
            return me
        closest = min(me.distance_to(p) for p in others)
        center = centroid(others)
        spread = max(
            (center.distance_to(p) for p in others), default=1.0
        )
        if closest > self.flee_radius:
            # Camp near (not exactly on) the centroid: smallest distance
            # sum among all positions, hence election winner — the tiny
            # offset avoids accidentally stacking onto a robot and
            # creating the very multiplicity point that would end the
            # game.
            offset = Point(0.17 * self.flee_radius, 0.11 * self.flee_radius)
            return center + offset
        # Too close for comfort: relocate far out, rotating the escape
        # direction so the correct robots are dragged around forever.
        self._phase += 1
        angle = 2.39996 * self._phase  # golden-angle spin
        import math

        radius = max(2.0 * spread, 4.0 * self.flee_radius)
        return Point(
            center.x + radius * math.cos(angle),
            center.y + radius * math.sin(angle),
        )


class AntiGatherByzantine:
    """Reflects itself across the correct robots' centroid each step.

    Keeps the configuration's symmetry axis (and thus elections, Weber
    points and maximum-multiplicity tie-breaks) churning: the byzantine
    robot always appears on the *other* side of the team from where it
    last stood, at a standoff distance proportional to the team spread.
    """

    name = "anti-gather"

    def destination(self, robot_id, positions, correct_ids, round_index, rng):
        me = positions[robot_id]
        others = [positions[rid] for rid in correct_ids]
        if not others:
            return me
        center = centroid(others)
        spread = max((center.distance_to(p) for p in others), default=1.0)
        standoff = max(spread, 1.0) * 2.0
        away = me - center
        norm = away.norm()
        if norm < 1e-9:
            away = Point(1.0, 0.0)
            norm = 1.0
        # Mirror through the centroid, renormalized to the standoff.
        return center - away * (standoff / norm)
