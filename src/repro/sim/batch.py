"""Batched structure-of-arrays ATOM engine: many seeds per round.

A 10k-seed sweep runs 10k independent round loops over the *same*
scenario shape — same robot count, same component models, different RNG
substreams and workload draws.  The scalar engine spends almost all of
its time rebuilding per-robot analysis towers (cluster merge, views,
ray structure, Weber iteration); :class:`BatchedSimulation` amortizes
that work two ways:

* **One tower per sim per round.**  The algorithm is anonymous and
  equivariant under the robots' private similarity frames (asserted by
  ``tests/integration/test_frame_invariance.py``), so destinations are
  computed once per occupied position in the *global* frame and shared
  by co-located robots — instead of one full tower per robot in its
  private frame.  Outcomes agree with the scalar engine to frame
  round-trip noise (~1e-12), which the engine's snap tolerance absorbs.
* **Sims-axis kernels.**  Per-robot state lives in structure-of-arrays
  form — positions ``(n_sims, n_robots, 2)``, live masks, round
  counters — and the expensive per-round analyses are pre-seeded across
  all unretired sims with one vectorized call each (gathered prefilter,
  batched Weiszfeld for quasi-regularity detection, batched views and
  ray loads for asymmetric elections) via the ``batched_*`` kernels of
  :mod:`repro.geometry.kernels`.  Seeding happens only under conditions
  where the scalar path would call the same 2-D kernel, so per-backend
  equivalence stays tight.

Model semantics — crash adversaries, fair scheduling, movement models,
the gathered/stalled/bivalent verdict ladder, per-component RNG
substreams — replicate :class:`repro.sim.engine.Simulation` statement
for statement; the equivalence suite asserts seed-for-seed identical
verdicts and round counts with final positions inside the recorded
tolerance.

Deliberately out of scope (constructor raises): byzantine robots,
limited visibility, mirrored frames, sensor noise, per-round traces and
observers.  Those knobs are single-seed experiment tools; sweeps that
need them use the scalar engine.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..algorithms.base import GatheringAlgorithm
from ..core import (
    BivalentConfigurationError,
    ConfigClass,
    Configuration,
    GatheringError,
    classify,
)
from ..core import classification as _classification
from ..core.successor import MAX_ANGULAR_RESOLUTION
from ..core.views import _polar_view
from ..geometry import DEFAULT_TOLERANCE, Point, Tolerance, kernels
from ..geometry.predicates import all_collinear
from ..geometry.weber import _initial_guess, is_weber_point
from .. import obs as _obs
from .engine import SimulationResult, Verdict, component_rng, snap_destination
from .faults import CrashAdversary, NoCrashes
from .gathering import gathered_point
from .movement import MovementModel, RigidMovement
from .scheduler import FairnessWrapper, FullySynchronous, Scheduler

__all__ = ["BatchedSimulation"]

_UNSET = object()


class BatchedSimulation:
    """Step many same-shaped simulations one vectorized round at a time.

    Parameters mirror :class:`repro.sim.engine.Simulation` but are
    per-sim sequences: ``positions[s]`` are sim ``s``'s initial global
    positions (every sim must have the same robot count), and
    ``algorithms`` / ``schedulers`` / ``crash_adversaries`` /
    ``movements`` / ``seeds`` supply one (fresh, unshared) component per
    sim — model components are stateful, so instances must not be
    reused across sims.  ``None`` selects the scalar engine's benign
    defaults for every sim.

    Requires NumPy (the arrays are the point); the ambient
    ``REPRO_BACKEND`` is left alone, so per-sim tower computations use
    whatever backend the process runs under.
    """

    def __init__(
        self,
        algorithms: Sequence[GatheringAlgorithm],
        positions: Sequence[Sequence[Point]],
        *,
        schedulers: Optional[Sequence[Scheduler]] = None,
        crash_adversaries: Optional[Sequence[CrashAdversary]] = None,
        movements: Optional[Sequence[MovementModel]] = None,
        seeds: Optional[Sequence[int]] = None,
        tol: Tolerance = DEFAULT_TOLERANCE,
        fairness_bound: int = 32,
        snap_tolerance: float = 1e-9,
        max_rounds: int = 50_000,
        halt_on_bivalent: bool = True,
    ) -> None:
        if kernels._np is None:
            raise RuntimeError(
                "the batched engine requires NumPy; use the scalar engine "
                "when it is not installed"
            )
        np = kernels._np
        if not positions:
            raise ValueError("a batched simulation needs at least one sim")
        self.n_sims = len(positions)
        self.n_robots = len(positions[0])
        if self.n_robots == 0:
            raise ValueError("a simulation needs at least one robot")
        for pts in positions:
            if len(pts) != self.n_robots:
                raise ValueError(
                    "all sims in a batch must have the same robot count"
                )

        def _per_sim(name: str, given, default):
            if given is None:
                return [default() for _ in range(self.n_sims)]
            items = list(given)
            if len(items) != len(positions):
                raise ValueError(f"need one {name} per sim")
            return items

        self._algorithms = _per_sim("algorithm", algorithms, None)
        if any(a is None for a in self._algorithms):
            raise ValueError("need one algorithm per sim")
        self._schedulers = [
            FairnessWrapper(s, bound=fairness_bound)
            for s in _per_sim("scheduler", schedulers, FullySynchronous)
        ]
        self._crash_adversaries = _per_sim(
            "crash adversary", crash_adversaries, NoCrashes
        )
        self._movements = _per_sim("movement model", movements, RigidMovement)
        self._seeds = (
            list(range(self.n_sims)) if seeds is None else list(seeds)
        )
        if len(self._seeds) != self.n_sims:
            raise ValueError("need one seed per sim")

        self.tol = tol
        self.snap_tolerance = snap_tolerance
        self.max_rounds = max_rounds
        self.halt_on_bivalent = halt_on_bivalent

        # Decoupled per-component RNG substreams, one set per sim —
        # identical derivation to the scalar engine, so the crash /
        # scheduling / movement draws match seed for seed.  (The scalar
        # engine's ``Random(seed)`` main stream only seeds private
        # frames and sensor noise, neither of which exists here.)
        self._crash_rng = [component_rng(s, "crash") for s in self._seeds]
        self._sched_rng = [component_rng(s, "sched") for s in self._seeds]
        self._move_rng = [component_rng(s, "move") for s in self._seeds]

        # Authoritative per-sim state is exact Python geometry (Points
        # compare bitwise; multiplicities must form exactly); the numpy
        # mirror below serves the vectorized prefilters.
        self._positions: List[List[Point]] = [list(pts) for pts in positions]
        self._crash_round: List[List[Optional[int]]] = [
            [None] * self.n_robots for _ in range(self.n_sims)
        ]
        self._distance: List[List[float]] = [
            [0.0] * self.n_robots for _ in range(self.n_sims)
        ]
        self._round: List[int] = [0] * self.n_sims
        self._last_moved: List[Set[int]] = [set() for _ in range(self.n_sims)]
        self._last_active: List[Dict[int, int]] = [
            {} for _ in range(self.n_sims)
        ]
        self._classes_seen: List[List[ConfigClass]] = [
            [] for _ in range(self.n_sims)
        ]
        self._configs: List[Optional[Configuration]] = [None] * self.n_sims
        self._results: List[Optional[SimulationResult]] = [None] * self.n_sims

        # Structure-of-arrays mirror: float64 round-trips Point coords
        # exactly, so the vectorized checks see the true geometry.
        self._pos = np.array(
            [[(p.x, p.y) for p in pts] for pts in positions],
            dtype=np.float64,
        )
        self._live = np.ones((self.n_sims, self.n_robots), dtype=bool)

    # -- per-sim state accessors ---------------------------------------------

    def _configuration(self, s: int) -> Configuration:
        config = self._configs[s]
        if config is None:
            config = Configuration(list(self._positions[s]), self.tol)
            self._configs[s] = config
        return config

    def _live_ids(self, s: int) -> List[int]:
        crashed = self._crash_round[s]
        return [rid for rid in range(self.n_robots) if crashed[rid] is None]

    def _positions_dict(self, s: int) -> Dict[int, Point]:
        return dict(enumerate(self._positions[s]))

    # -- verdict checks (scalar-engine semantics, per sim) -------------------

    def _gathered_now(self, s: int) -> Optional[Point]:
        spot = gathered_point(
            self._positions_dict(s), self._live_ids(s), self.tol
        )
        if spot is None:
            return None
        view = self._configuration(s)
        try:
            dest = self._algorithms[s].compute(view, spot)
        except GatheringError:
            return None
        return spot if dest.close_to(spot, self.tol) else None

    def _stalled_now(self, s: int, config: Configuration) -> bool:
        live_positions = dict.fromkeys(
            self._positions[s][rid] for rid in self._live_ids(s)
        )
        algorithm = self._algorithms[s]
        try:
            for p in live_positions:
                if not algorithm.compute(config, p).close_to(p, self.tol):
                    return False
        except GatheringError:
            return False
        return True

    def _retire(self, s: int, verdict: str, spot=_UNSET) -> None:
        if spot is _UNSET:
            # The scalar engine recomputes the gathered spot after its
            # loop regardless of verdict (e.g. a mid-step bivalent halt
            # may leave the survivors co-located after a crash).
            spot = self._gathered_now(s)
        crashed = self._crash_round[s]
        seen = self._classes_seen[s]
        self._results[s] = SimulationResult(
            verdict=verdict,
            rounds=self._round[s],
            final_positions=self._positions_dict(s),
            live_ids=tuple(self._live_ids(s)),
            crashed_ids=tuple(
                rid
                for rid in range(self.n_robots)
                if crashed[rid] is not None
            ),
            gathering_point=spot,
            total_distance=sum(self._distance[s]),
            trace=None,
            initial_class=(
                seen[0] if seen else classify(self._configuration(s))
            ),
            classes_seen=tuple(seen),
        )
        if _obs.state.enabled:
            _obs.record_run_end(
                {
                    "engine": "batched",
                    "verdict": verdict,
                    "rounds": self._round[s],
                    "seed": self._seeds[s],
                }
            )

    # -- batched tower pre-seeding -------------------------------------------

    def _seed_weber(self, sims: List[int], configs: Dict[int, Configuration]):
        """Warm ``weber_numeric`` memos for sims about to classify QR.

        Replicates the numpy branch of
        :func:`repro.geometry.weber.geometric_median` — input-point
        screening, certification, Weiszfeld fallback — with only the
        iteration loop batched, and only under the exact conditions the
        per-sim call sites would use the 2-D kernels themselves.
        """
        if not kernels.enabled_for(self.n_robots):
            return
        pending: List[Tuple[int, Configuration, list]] = []
        for s in sims:
            config = configs[s]
            if config.memo_get("class") is not None:
                continue
            if (
                _classification._is_bivalent(config)
                or _classification._has_unique_max_multiplicity(config)
                or config.is_linear()
            ):
                continue  # classify never reaches the Weber solve
            pts = config.points
            if all_collinear(pts, config.tol):
                continue  # interval-midpoint branch: per-sim path
            coords = [(p.x, p.y) for p in pts]
            sums = kernels.distance_sums(coords, coords)
            bi = min(range(len(pts)), key=sums.__getitem__)
            best_input = pts[bi]
            if is_weber_point(best_input, pts, config.tol):
                config.memo("weber_numeric", lambda p=best_input: p)
            else:
                pending.append((s, config, coords))
        if not pending:
            return
        starts = []
        for _, config, _ in pending:
            guess = _initial_guess(config.points)
            starts.append((guess.x, guess.y))
        solved = kernels.batched_weiszfeld(
            [coords for _, _, coords in pending],
            starts,
            self.tol.eps_solver,
            10_000,
        )
        for (s, config, _), (x, y, _its) in zip(pending, solved):
            point = Point(x, y)
            certified = is_weber_point(point, config.points, config.tol)
            value = point if certified else None
            config.memo("weber_numeric", lambda v=value: v)

    def _seed_asymmetric(
        self, sims: List[int], configs: Dict[int, Configuration]
    ) -> None:
        """Warm ``ray_loads`` and ``views`` memos for asymmetric sims.

        Elections over safe points consume both; one batched kernel
        call each replaces per-sim 2-D kernel calls.  Conditions mirror
        the per-sim call sites (:func:`all_max_ray_loads`,
        :func:`view_table`) so seeded and unseeded sims take the same
        numeric path.
        """
        loads_group: List[Tuple[int, Configuration]] = []
        views_group: List[tuple] = []
        tol = self.tol
        for s in sims:
            config = configs[s]
            support = config.support
            if config.memo_get("ray_loads") is None and kernels.enabled_for(
                len(support)
            ):
                loads_group.append((s, config))
            if config.memo_get("views") is None and kernels.enabled_for(config.n):
                if len(support) > 1:
                    c = config.sec_center()
                    center_points = [
                        p for p in support if p.close_to(c, tol)
                    ]
                    outer = [
                        p for p in support if not p.close_to(c, tol)
                    ]
                    if outer:
                        views_group.append(
                            (config, c, outer, center_points)
                        )
        if loads_group:
            all_loads = kernels.batched_max_ray_loads(
                [
                    [(p.x, p.y) for p in config.support]
                    for _, config in loads_group
                ],
                [
                    [config.mult(p) for p in config.support]
                    for _, config in loads_group
                ],
                tol.eps_dist,
                tol.eps_angle,
                MAX_ANGULAR_RESOLUTION,
            )
            for (_, config), loads in zip(loads_group, all_loads):
                config.memo("ray_loads", lambda v=loads: v)
        if views_group:
            all_views = kernels.batched_polar_views(
                [
                    [(p.x, p.y) for p in outer]
                    for _, _, outer, _ in views_group
                ],
                [
                    [(q.x, q.y) for q in config.points]
                    for config, _, _, _ in views_group
                ],
                [(c.x, c.y) for _, c, _, _ in views_group],
                tol.eps_dist,
                tol.eps_angle,
            )
            for (config, c, outer, center_points), views in zip(
                views_group, all_views
            ):
                table = dict(zip(outer, views))
                # Central positions: same reference rule as
                # ``repro.core.views._compute_view_table``.
                best = max(table, key=table.get) if table else None
                for cp in center_points:
                    if best is None or cp.distance_to(best) <= tol.eps_dist:
                        table[cp] = tuple(((0.0, 0.0),) * config.n)
                    else:
                        table[cp] = _polar_view(config, cp, best)
                config.memo("views", lambda t=table: t)

    # -- the vectorized round ------------------------------------------------

    def step_round(self) -> int:
        """Advance every unretired sim by one ATOM round.

        Returns the number of sims actually stepped (retirements this
        round — gathered, bivalent, stalled, out of rounds — happen
        before their step, exactly like the scalar run loop).
        """
        alive = [s for s in range(self.n_sims) if self._results[s] is None]
        if not alive:
            return 0
        obs_on = _obs.state.enabled
        started = time.perf_counter() if obs_on else 0.0
        tracer = _obs.tracer if obs_on and _obs.tracer.active else None
        round_span = (
            tracer.begin("batch_round", "round", attrs={"sims": len(alive)})
            if tracer is not None
            else None
        )

        # 1. Out of rounds.  The scalar loop condition exits before the
        # gathered check, so these sims keep the MAX_ROUNDS verdict even
        # when their final configuration happens to be gathered.
        for s in alive:
            if self._round[s] >= self.max_rounds:
                self._retire(s, Verdict.MAX_ROUNDS)
        alive = [s for s in alive if self._results[s] is None]

        # 2. Gathered: one vectorized conservative prefilter, then the
        # exact scalar predicate on the few candidate sims.
        if alive:
            candidates = kernels.batched_gather_candidates(
                self._pos[alive], self._live[alive], self.tol.eps_dist
            )
            for s, maybe in zip(alive, candidates):
                if not maybe:
                    continue
                spot = self._gathered_now(s)
                if spot is not None:
                    self._retire(s, Verdict.GATHERED, spot)
            alive = [s for s in alive if self._results[s] is None]
        if not alive:
            if obs_on:
                self._record_round_obs(tracer, round_span, started, 0)
            return 0

        # 3. Classify, with the Weber solve pre-seeded across sims.
        configs = {s: self._configuration(s) for s in alive}
        self._seed_weber(alive, configs)
        asymmetric: List[int] = []
        for s in alive:
            cls = classify(configs[s])
            seen = self._classes_seen[s]
            if not seen or seen[-1] is not cls:
                seen.append(cls)
            if cls is ConfigClass.BIVALENT and self.halt_on_bivalent:
                self._retire(s, Verdict.IMPOSSIBLE)
            elif cls is ConfigClass.ASYMMETRIC:
                asymmetric.append(s)
        alive = [s for s in alive if self._results[s] is None]

        # 4. Asymmetric sims elect over safe points in both the stall
        # check and the step; warm their towers in two batched calls.
        self._seed_asymmetric(asymmetric, configs)

        # 5. Stalled (oblivious algorithm + all-stay = dead forever).
        for s in alive:
            if self._stalled_now(s, configs[s]):
                self._retire(s, Verdict.STALLED)
        alive = [s for s in alive if self._results[s] is None]

        # 6. One ATOM round per remaining sim.
        stepped = 0
        for s in alive:
            try:
                self._step_sim(s, configs[s])
            except BivalentConfigurationError:
                # Crashes of this round are already applied; the round
                # index is not advanced — mirroring the scalar engine.
                self._retire(s, Verdict.IMPOSSIBLE)
                continue
            self._round[s] += 1
            stepped += 1
        if obs_on:
            self._record_round_obs(tracer, round_span, started, stepped)
        return stepped

    def _record_round_obs(self, tracer, round_span, started, stepped) -> None:
        if round_span is not None:
            round_span.attrs["stepped"] = stepped
            tracer.end(round_span)
        _obs.metrics.observe(
            "batch.round_seconds", time.perf_counter() - started
        )
        _obs.metrics.inc("batch.sim_rounds", stepped)

    def _step_sim(self, s: int, config: Configuration) -> None:
        rnd = self._round[s]
        positions = self._positions_dict(s)
        crash_state = self._crash_round[s]

        # 1. Crashes.
        crash_now = self._crash_adversaries[s].crashes(
            rnd,
            self._live_ids(s),
            positions,
            set(self._last_moved[s]),
            self._crash_rng[s],
        )
        for rid in crash_now:
            if crash_state[rid] is None:
                crash_state[rid] = rnd
                self._live[s, rid] = False

        # 2. Scheduling (fair).
        active = self._schedulers[s].select(
            rnd,
            self._live_ids(s),
            self._sched_rng[s],
            self._last_active[s],
            positions=positions,
        )

        # 3. LOOK+COMPUTE against one snapshot.  The algorithm is
        # anonymous: co-located robots receive the same instruction, so
        # each occupied position is computed once, in the global frame
        # (frame equivariance — see the module docstring).
        destinations: Dict[int, Point] = {}
        dest_of_rep: Dict[Point, Point] = {}
        algorithm = self._algorithms[s]
        for rid in range(self.n_robots):
            if rid not in active:
                continue
            me = positions[rid]
            rep = config.locate(me)
            if rep is None:
                rep = me
            dest = dest_of_rep.get(rep)
            if dest is None:
                dest = algorithm.compute(config, rep)
                dest = snap_destination(dest, config, self.snap_tolerance)
                dest_of_rep[rep] = dest
            destinations[rid] = dest

        # 4. Simultaneous moves.
        movement = self._movements[s]
        if hasattr(movement, "begin_round"):
            movement.begin_round(
                {
                    rid: (positions[rid], dest)
                    for rid, dest in destinations.items()
                }
            )
        rigid_fast = type(movement) is RigidMovement
        use_endpoint_for = hasattr(movement, "endpoint_for")
        sim_positions = self._positions[s]
        sim_distance = self._distance[s]
        last_active = self._last_active[s]
        moved: List[int] = []
        for rid in range(self.n_robots):
            dest = destinations.get(rid)
            if dest is None:
                continue
            origin = positions[rid]
            if use_endpoint_for:
                end = movement.endpoint_for(rid, origin, dest)
            elif rigid_fast:
                # RigidMovement returns the destination and draws no
                # randomness — skip the call, bitwise identical.
                end = dest
            else:
                end = movement.endpoint(origin, dest, self._move_rng[s])
            if end.distance_to(dest) <= self.tol.eps_dist:
                end = dest
            if end != origin:
                sim_distance[rid] += origin.distance_to(end)
                sim_positions[rid] = end
                moved.append(rid)
            last_active[rid] = rnd
        self._last_moved[s] = set(moved)
        if moved:
            self._configs[s] = None
            row = self._pos[s]
            for rid in moved:
                p = sim_positions[rid]
                row[rid, 0] = p.x
                row[rid, 1] = p.y

    # -- run loop --------------------------------------------------------------

    def run_all(self) -> List[SimulationResult]:
        """Run every sim to a verdict; results in input-sim order."""
        run_span = (
            _obs.tracer.begin(
                "batch_run",
                "run",
                attrs={"engine": "batched", "sims": self.n_sims},
            )
            if _obs.state.enabled and _obs.tracer.active
            else None
        )
        while any(r is None for r in self._results):
            self.step_round()
        if run_span is not None:
            _obs.tracer.end(run_span)
        return list(self._results)
