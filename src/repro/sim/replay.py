"""Trace replay and differential backend verification.

This module is the offline half of the reproducibility story.  A v2
trace (see :mod:`repro.sim.trace`) embeds its scenario, seeds, backend
and tolerance, which makes three checks possible without any context
beyond the JSON file:

* :func:`replay_trace` — rebuild the simulation from the embedded
  scenario and verify the re-execution is **bit-identical** round by
  round: positions, classes, activations, crashes, destinations, moves.
  Any drift means some piece of ambient state leaked into an execution
  that claims to be a pure function of the scenario and seed.
* :func:`repro.analysis.invariants.verify_trace` (re-exported by the
  CLI) — run the proof-obligation checkers over the archived rounds
  without re-simulating.
* :func:`differential_check` — execute one scenario under both kernel
  backends in **subprocesses** (so each resolves ``REPRO_BACKEND`` from
  a clean import) and diff the executions round by round, reporting the
  first divergent round together with a minimized reproduction command.

Divergences carry a shell command that reproduces them in isolation;
``repro check`` prints it, and CI surfaces it in the failing log.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..geometry import kernels
from ..resilience import TraceFormatError, atomic_write
from .trace import Trace, RoundRecord, TraceMeta

__all__ = [
    "Divergence",
    "ReplayReport",
    "DiffReport",
    "load_trace",
    "save_trace",
    "rebuild_result",
    "replay_trace",
    "compare_records",
    "compare_traces",
    "record_subprocess_trace",
    "differential_check",
    "diff_command",
]


# -- reports -----------------------------------------------------------------


@dataclass(frozen=True)
class Divergence:
    """First point where two executions of "the same run" disagree."""

    round_index: int
    field: str
    expected: object
    actual: object

    def describe(self) -> str:
        return (
            f"round {self.round_index}: {self.field} diverged\n"
            f"  expected: {self.expected!r}\n"
            f"  actual:   {self.actual!r}"
        )


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of re-simulating an archived trace."""

    backend: str
    rounds_compared: int
    divergence: Optional[Divergence]
    command: str

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def describe(self) -> str:
        if self.ok:
            return (
                f"replay ok: {self.rounds_compared} rounds bit-identical "
                f"on backend {self.backend!r}"
            )
        return (
            f"replay FAILED on backend {self.backend!r}:\n"
            f"{self.divergence.describe()}\n"
            f"  reproduce: {self.command}"
        )


@dataclass(frozen=True)
class DiffReport:
    """Outcome of a differential backend check for one (scenario, seed)."""

    seed: int
    backends: Tuple[str, str]
    rounds: Tuple[int, int]
    divergence: Optional[Divergence]
    command: str

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def describe(self) -> str:
        a, b = self.backends
        if self.ok:
            return (
                f"seed {self.seed}: {a} and {b} agree "
                f"({self.rounds[0]} rounds bit-identical)"
            )
        return (
            f"seed {self.seed}: {a} vs {b} DIVERGED\n"
            f"{self.divergence.describe()}\n"
            f"  reproduce: {self.command}"
        )


# -- trace files -------------------------------------------------------------


def load_trace(path: str) -> Trace:
    """Read an archived trace (v1 or v2) from ``path``.

    Corruption (truncated or garbage JSON, malformed records, foreign
    headers) raises :class:`~repro.resilience.errors.TraceFormatError`
    carrying the path and, for syntax errors, the line/offset.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise TraceFormatError(
            f"{path}: cannot read trace: {exc}", path=path
        ) from exc
    except UnicodeDecodeError as exc:
        raise TraceFormatError(
            f"{path}: not a text file (binary garbage at byte "
            f"{exc.start})",
            path=path,
            offset=exc.start,
        ) from exc
    return Trace.from_json(text, source=path)


def save_trace(trace: Trace, path: str, indent: Optional[int] = 2) -> None:
    """Write ``trace`` to ``path`` atomically in the current (v2) schema.

    The write goes through :func:`~repro.resilience.atomic.atomic_write`
    (temp file + fsync + rename), so an interrupt can never leave a
    truncated archive that would later poison ``repro check --corpus``.
    """
    atomic_write(path, trace.to_json(indent=indent))


# -- replay ------------------------------------------------------------------


def _require_replayable(meta: Optional[TraceMeta]) -> TraceMeta:
    if meta is None:
        raise ValueError(
            "trace has no meta block (v1 archive?); only v2 traces "
            "recorded through the scenario runner can be replayed"
        )
    if meta.scenario is None or meta.seed is None:
        raise ValueError(
            "trace meta does not embed a scenario; re-record it via "
            "run_scenario(record_trace=True) or `repro simulate "
            "--save-trace`"
        )
    return meta


def rebuild_result(meta: TraceMeta):
    """Re-execute the run a meta block describes, recording its trace."""
    from ..experiments.runner import Scenario, run_scenario  # lazy: cycle

    meta = _require_replayable(meta)
    scenario = Scenario.from_dict(meta.scenario)
    return run_scenario(
        scenario,
        meta.seed,
        engine_seed=meta.engine_seed,
        record_trace=True,
    )


def compare_records(
    expected: RoundRecord, actual: RoundRecord
) -> Optional[Divergence]:
    """Bitwise comparison of two round records (``None`` when identical).

    Coordinates are compared exactly — the replay contract is
    *bit-identical*, not merely within tolerance: tolerant agreement
    already fails to guarantee identical classifications downstream.
    """
    checks = (
        ("class", expected.config_class.value, actual.config_class.value),
        ("active", expected.active, actual.active),
        ("crashed", expected.crashed_now, actual.crashed_now),
        ("moved", expected.moved, actual.moved),
        (
            "positions-before",
            tuple(p.as_tuple() for p in expected.config_before.points),
            tuple(p.as_tuple() for p in actual.config_before.points),
        ),
        (
            "destinations",
            {r: d.as_tuple() for r, d in sorted(expected.destinations.items())},
            {r: d.as_tuple() for r, d in sorted(actual.destinations.items())},
        ),
        (
            "positions-after",
            tuple(p.as_tuple() for p in expected.config_after.points),
            tuple(p.as_tuple() for p in actual.config_after.points),
        ),
    )
    for name, want, got in checks:
        if want != got:
            return Divergence(
                round_index=expected.round_index,
                field=name,
                expected=want,
                actual=got,
            )
    return None


def compare_traces(expected: Trace, actual: Trace) -> Optional[Divergence]:
    """First divergence between two traces, or ``None``."""
    for exp, act in zip(expected.records, actual.records):
        divergence = compare_records(exp, act)
        if divergence is not None:
            return divergence
    if len(expected) != len(actual):
        return Divergence(
            round_index=min(len(expected), len(actual)),
            field="rounds",
            expected=len(expected),
            actual=len(actual),
        )
    return None


def replay_trace(
    trace: Trace,
    backend: Optional[str] = None,
    path: str = "<trace>",
) -> ReplayReport:
    """Re-simulate an archived trace and verify bitwise identity.

    ``backend`` defaults to the backend the trace was recorded on;
    passing another verifies cross-backend reproducibility (which holds
    whenever the kernels' combinatorial-equivalence contract extends to
    the numerical outputs the scenario actually exercises).
    """
    meta = _require_replayable(trace.meta)
    backend = backend or meta.backend
    command = f"REPRO_BACKEND={backend} python -m repro check --replay {path}"
    with kernels.backend(backend):
        result = rebuild_result(meta)
    divergence = compare_traces(trace, result.trace)
    return ReplayReport(
        backend=backend,
        rounds_compared=min(len(trace), len(result.trace)),
        divergence=divergence,
        command=command,
    )


# -- differential backend check ----------------------------------------------


def _child_env(backend: str) -> dict:
    """Environment for a recorder subprocess: explicit backend, and the
    parent's package location on ``PYTHONPATH`` so ``-m repro`` resolves
    even when the package is not installed."""
    import repro

    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["REPRO_BACKEND"] = backend
    existing = env.get("PYTHONPATH")
    if package_root not in (existing or "").split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    return env


def record_subprocess_trace(
    scenario,
    seed: int,
    backend: str,
    out_path: str,
    timeout: float = 600.0,
) -> Trace:
    """Run one (scenario, seed) in a fresh subprocess pinned to ``backend``
    and return the recorded trace.

    A subprocess — not an in-process backend switch — is the point: the
    child resolves ``REPRO_BACKEND`` from the environment at import
    time, exactly the code path a user's sweep takes, so a divergence
    found here is a divergence a sweep would actually hit.
    """
    scenario_path = out_path + ".scenario.json"
    with open(scenario_path, "w", encoding="utf-8") as handle:
        json.dump(scenario.to_dict(), handle)
    command = [
        sys.executable,
        "-m",
        "repro",
        "check",
        "--emit-trace",
        scenario_path,
        "--seed",
        str(seed),
        "--out",
        out_path,
    ]
    completed = subprocess.run(
        command,
        env=_child_env(backend),
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"trace recorder failed (backend={backend}, seed={seed}):\n"
            f"{completed.stdout}{completed.stderr}"
        )
    return load_trace(out_path)


def diff_command(scenario, seed: int, max_rounds: Optional[int] = None) -> str:
    """The minimized shell command reproducing a differential divergence.

    ``max_rounds`` truncates the run just past the divergent round, so
    the reproduction is as small as the divergence allows.
    """
    parts = [
        "python -m repro check --diff",
        f"--workload {scenario.workload}",
        f"--n {scenario.n}",
        f"--algorithm {scenario.algorithm}",
        f"--scheduler {scenario.scheduler}",
        f"--crashes {scenario.crashes}",
        f"--f {scenario.f}",
        f"--movement {scenario.movement}",
        f"--seeds {seed}",
    ]
    if getattr(scenario, "visibility", None) is not None:
        parts.append(f"--visibility {scenario.visibility:g}")
    if max_rounds is not None:
        parts.append(f"--max-rounds {max_rounds}")
    return " ".join(parts)


def differential_check(
    scenario,
    seed: int,
    backends: Tuple[str, str] = ("python", "numpy"),
    timeout: float = 600.0,
) -> DiffReport:
    """Execute one (scenario, seed) under two backends and diff the runs."""
    with tempfile.TemporaryDirectory(prefix="repro-diff-") as tmp:
        traces: List[Trace] = []
        for backend in backends:
            out_path = os.path.join(tmp, f"{backend}-seed{seed}.json")
            traces.append(
                record_subprocess_trace(
                    scenario, seed, backend, out_path, timeout=timeout
                )
            )
    expected, actual = traces
    divergence = compare_traces(expected, actual)
    max_rounds = (
        min(divergence.round_index + 1, scenario.max_rounds)
        if divergence is not None
        else None
    )
    return DiffReport(
        seed=seed,
        backends=backends,
        rounds=(len(expected), len(actual)),
        divergence=divergence,
        command=diff_command(scenario, seed, max_rounds=max_rounds),
    )
