"""ASYNC (CORDA-style) execution — beyond the paper's ATOM model.

The paper proves ``WAIT-FREE-GATHER`` correct in the semi-synchronous
ATOM model, where a robot's Look-Compute-Move cycle is *atomic*.  The
fully asynchronous model drops that atomicity: arbitrary time may pass
between a robot's Look and its Move, during which other robots move — so
robots act on **stale snapshots**.  The paper leaves ASYNC open;
experiment E10 explores it empirically.

Since the engine unification this module is a thin convenience wrapper:
:class:`AsyncSimulation` is the unified :class:`~repro.sim.Simulation`
configured with :class:`~repro.sim.lcm.PhasedActivation`, plus the
historical ASYNC vocabulary (``tick`` / ``max_ticks`` / ``pending``).
Every engine mechanism — crashes, fair scheduling, destination snapping,
movement-model identity hooks (so :class:`~repro.sim.CollusiveStop`
colludes here too), visibility / noise ablations, trace records — is the
single implementation in :mod:`repro.sim.engine`.

Mechanics of the phased model
-----------------------------
Time is discretized into *ticks*.  Each live robot is in one of two
phases:

``IDLE``
    next activation performs Look+Compute: it snapshots the *current*
    global configuration (in its private frame), computes a destination
    and becomes ``MOVING``;

``MOVING``
    next activation performs the Move: the movement model resolves how
    far it gets towards its (possibly stale) destination, and the robot
    becomes ``IDLE`` again.

A scheduler picks which robots advance one phase per tick — the same
:class:`~repro.sim.scheduler.Scheduler` objects as ATOM runs, wrapped in
the same fairness enforcement.  An LCM cycle therefore takes two
(possibly far apart) activations, and interleavings where a robot moves
towards a target that stopped being meaningful rounds ago arise
naturally — exactly the hazard ASYNC adds.

Verdicts mirror the ATOM engine (`gathered` follows Definition 9 with
the extra requirement that no correct robot has a pending stale move).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..algorithms.base import GatheringAlgorithm
from ..geometry import DEFAULT_TOLERANCE, Point, Tolerance
from .engine import Simulation
from .faults import CrashAdversary
from .lcm import PendingMove, PhasedActivation
from .movement import MovementModel
from .scheduler import Scheduler

__all__ = ["AsyncSimulation"]

#: Backward-compatible alias: the pending-move record used to be this
#: module's private ``_Pending`` dataclass; it now lives with the
#: activation models.
_Pending = PendingMove


class AsyncSimulation(Simulation):
    """Fully asynchronous execution of a gathering algorithm.

    Accepts the same component types as :class:`~repro.sim.Simulation`;
    ``max_ticks`` bounds phase activations rather than rounds (one LCM
    cycle consumes two activations of its robot).  The historically
    looser defaults are kept: a fairness bound of 64 activations and a
    100k-tick budget, since every cycle needs two activations.
    """

    def __init__(
        self,
        algorithm: GatheringAlgorithm,
        positions: Sequence[Point],
        *,
        scheduler: Optional[Scheduler] = None,
        crash_adversary: Optional[CrashAdversary] = None,
        movement: Optional[MovementModel] = None,
        tol: Tolerance = DEFAULT_TOLERANCE,
        frames: str = "random",
        seed: int = 0,
        fairness_bound: int = 64,
        snap_tolerance: float = 1e-9,
        max_ticks: int = 100_000,
        halt_on_bivalent: bool = True,
        record_trace: bool = False,
        visibility: Optional[float] = None,
    ) -> None:
        super().__init__(
            algorithm,
            positions,
            scheduler=scheduler,
            crash_adversary=crash_adversary,
            movement=movement,
            activation=PhasedActivation(),
            tol=tol,
            frames=frames,
            seed=seed,
            fairness_bound=fairness_bound,
            snap_tolerance=snap_tolerance,
            max_rounds=max_ticks,
            halt_on_bivalent=halt_on_bivalent,
            record_trace=record_trace,
            visibility=visibility,
        )

    # -- historical ASYNC vocabulary ------------------------------------------

    @property
    def tick(self) -> int:
        """Ticks elapsed (the phased name for :attr:`round_index`)."""
        return self.round_index

    @property
    def max_ticks(self) -> int:
        """Activation budget (the phased name for :attr:`max_rounds`)."""
        return self.max_rounds

    @property
    def pending(self) -> Dict[int, PendingMove]:
        """Robots mid-cycle: id -> computed-but-unexecuted destination."""
        return self.activation.pending
