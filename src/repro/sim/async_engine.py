"""ASYNC (CORDA-style) engine — beyond the paper's ATOM model.

The paper proves ``WAIT-FREE-GATHER`` correct in the semi-synchronous
ATOM model, where a robot's Look-Compute-Move cycle is *atomic*.  The
fully asynchronous model drops that atomicity: arbitrary time may pass
between a robot's Look and its Move, during which other robots move — so
robots act on **stale snapshots**.  The paper leaves ASYNC open;
experiment E10 explores it empirically with this engine.

Mechanics
---------
Time is discretized into *ticks*.  Each live robot is in one of two
phases:

``IDLE``
    next activation performs Look+Compute: it snapshots the *current*
    global configuration (in its private frame), computes a destination
    and becomes ``MOVING``;

``MOVING``
    next activation performs the Move: the movement model resolves how
    far it gets towards its (possibly stale) destination, and the robot
    becomes ``IDLE`` again.

A scheduler picks which robots advance one phase per tick — the same
:class:`~repro.sim.scheduler.Scheduler` objects as the ATOM engine,
wrapped in the same fairness enforcement.  An LCM cycle therefore takes
two (possibly far apart) activations, and interleavings where a robot
moves towards a target that stopped being meaningful rounds ago arise
naturally — exactly the hazard ASYNC adds.

Verdicts mirror the ATOM engine (`gathered` follows Definition 9 with
the extra requirement that no correct robot has a pending stale move).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..algorithms.base import GatheringAlgorithm
from ..core import (
    BivalentConfigurationError,
    ConfigClass,
    Configuration,
    GatheringError,
    classify,
)
from ..geometry import DEFAULT_TOLERANCE, Frame, Point, Tolerance, random_frame
from .. import obs as _obs
from ..obs.events import RoundEvent
from .engine import SimulationResult, Verdict, component_rng
from .faults import CrashAdversary, NoCrashes
from .gathering import gathered_point
from .movement import MovementModel, RigidMovement
from .robot import Robot
from .scheduler import FairnessWrapper, FullySynchronous, Scheduler
from .trace import RoundRecord, Trace, TraceMeta

__all__ = ["AsyncSimulation"]


@dataclass
class _Pending:
    """A computed but not yet executed move (the stale destination)."""

    destination: Point
    looked_at_tick: int


class AsyncSimulation:
    """Fully asynchronous execution of a gathering algorithm.

    Accepts the same component types as :class:`~repro.sim.Simulation`;
    ``max_ticks`` bounds phase activations rather than rounds (one LCM
    cycle consumes two activations of its robot).
    """

    def __init__(
        self,
        algorithm: GatheringAlgorithm,
        positions: Sequence[Point],
        *,
        scheduler: Optional[Scheduler] = None,
        crash_adversary: Optional[CrashAdversary] = None,
        movement: Optional[MovementModel] = None,
        tol: Tolerance = DEFAULT_TOLERANCE,
        frames: str = "random",
        seed: int = 0,
        fairness_bound: int = 64,
        snap_tolerance: float = 1e-9,
        max_ticks: int = 100_000,
        halt_on_bivalent: bool = True,
        record_trace: bool = False,
    ) -> None:
        if not positions:
            raise ValueError("a simulation needs at least one robot")
        if frames not in ("identity", "random"):
            raise ValueError("frames must be 'identity' or 'random'")
        self.algorithm = algorithm
        self.seed = seed
        self.rng = random.Random(seed)
        # Same decoupled substreams as the ATOM engine (component_rng).
        self._crash_rng = component_rng(seed, "crash")
        self._sched_rng = component_rng(seed, "sched")
        self._move_rng = component_rng(seed, "move")
        self.tol = tol
        self.snap_tolerance = snap_tolerance
        self.max_ticks = max_ticks
        self.halt_on_bivalent = halt_on_bivalent
        self.scheduler = FairnessWrapper(
            scheduler or FullySynchronous(), bound=fairness_bound
        )
        self.crash_adversary = crash_adversary or NoCrashes()
        self.movement = movement or RigidMovement()

        self.robots: List[Robot] = []
        for rid, pos in enumerate(positions):
            frame = (
                random_frame(self.rng)
                if frames == "random"
                else Frame(Point(0.0, 0.0), 0.0, 1.0)
            )
            self.robots.append(Robot(robot_id=rid, position=pos, frame=frame))

        self.pending: Dict[int, _Pending] = {}
        self.tick = 0
        self._last_active: Dict[int, int] = {}
        self._last_moved: Set[int] = set()
        self.stale_moves = 0  # moves whose target was computed >1 tick ago
        # Per-tick records, same schema as the ATOM engine's — one record
        # per *tick*, so a full LCM cycle of a robot spans two records.
        # The partial meta block marks the engine so replay dispatches
        # back here and invariant checkers know the ATOM class-transition
        # lemmas do not apply.
        self.trace: Optional[Trace] = (
            Trace(
                meta=TraceMeta.for_run(
                    scenario=None,
                    seed=None,
                    engine_seed=seed,
                    tol=tol,
                    engine="async",
                )
            )
            if record_trace
            else None
        )

    # -- accessors ---------------------------------------------------------------

    def positions(self) -> Dict[int, Point]:
        return {r.robot_id: r.position for r in self.robots}

    def live_ids(self) -> List[int]:
        return [r.robot_id for r in self.robots if r.live]

    def configuration(self) -> Configuration:
        return Configuration([r.position for r in self.robots], self.tol)

    # -- phase step -----------------------------------------------------------------

    def _snap(self, dest: Point, config: Configuration) -> Point:
        best, best_d = None, self.snap_tolerance
        for p in config.support:
            d = dest.distance_to(p)
            if d <= best_d:
                best, best_d = p, d
        return best if best is not None else dest

    def step(self) -> None:
        """Advance one tick: crashes, then one phase for each activated robot.

        Observability: the tick is timed into the ``round_seconds``
        histogram, and with tracing active it becomes a ``round`` span.
        Unlike ATOM there is no round-global phase barrier — LOOK and
        MOVE activations interleave per robot, which is the point of
        the CORDA model — so each activation gets its *own* phase span
        (``look`` with a nested ``compute``, or ``move``), labelled
        with the robot id.
        """
        obs_on = _obs.state.enabled
        started = time.perf_counter() if obs_on else 0.0
        tracer = _obs.tracer if obs_on and _obs.tracer.active else None
        round_span = (
            tracer.begin("tick", "round", attrs={"round": self.tick})
            if tracer is not None
            else None
        )
        crash_now = self.crash_adversary.crashes(
            self.tick,
            self.live_ids(),
            self.positions(),
            set(self._last_moved),
            self._crash_rng,
        )
        for robot in self.robots:
            if robot.robot_id in crash_now:
                robot.crash(self.tick)
                self.pending.pop(robot.robot_id, None)

        active = self.scheduler.select(
            self.tick, self.live_ids(), self._sched_rng, self._last_active,
            positions=self.positions(),
        )

        config_now = self.configuration()
        # Recording shares the ATOM engine's RoundRecord schema, one
        # record per tick: LOOK activations record the freshly computed
        # destination, MOVE activations the (possibly stale) pending one.
        recording = self.trace is not None or _obs.state.enabled
        destinations: Dict[int, Point] = {}
        moved: List[int] = []
        for robot in self.robots:
            rid = robot.robot_id
            if rid not in active:
                continue
            self._last_active[rid] = self.tick
            entry = self.pending.get(rid)
            if entry is None:
                # LOOK + COMPUTE against the *current* configuration.
                phase_span = (
                    tracer.begin("look", "phase", attrs={"robot": rid})
                    if tracer is not None
                    else None
                )
                frame = robot.anchored_frame()
                local_points = [frame.to_local(r.position) for r in self.robots]
                local_config = Configuration(local_points, self.tol)
                compute_span = (
                    tracer.begin("compute", "phase", attrs={"robot": rid})
                    if tracer is not None
                    else None
                )
                dest_local = self.algorithm.compute(
                    local_config, frame.to_local(robot.position)
                )
                if tracer is not None:
                    tracer.end(compute_span)
                dest = self._snap(frame.to_global(dest_local), config_now)
                self.pending[rid] = _Pending(dest, self.tick)
                if tracer is not None:
                    tracer.end(phase_span)
                if recording:
                    destinations[rid] = dest
            else:
                # MOVE towards the (possibly stale) destination.
                phase_span = (
                    tracer.begin("move", "phase", attrs={"robot": rid})
                    if tracer is not None
                    else None
                )
                if entry.looked_at_tick < self.tick - 1:
                    self.stale_moves += 1
                end = self.movement.endpoint(
                    robot.position, entry.destination, self._move_rng
                )
                if end.distance_to(entry.destination) <= self.tol.eps_dist:
                    end = entry.destination
                if end != robot.position:
                    robot.distance_travelled += robot.position.distance_to(end)
                    robot.position = end
                    moved.append(rid)
                if tracer is not None:
                    tracer.end(phase_span)
                if recording:
                    destinations[rid] = entry.destination
                del self.pending[rid]
        self._last_moved = set(moved)
        if recording:
            record = RoundRecord(
                round_index=self.tick,
                config_before=config_now,
                config_class=classify(config_now),
                active=tuple(sorted(active)),
                crashed_now=tuple(sorted(crash_now)),
                destinations=destinations,
                config_after=self.configuration(),
                moved=tuple(moved),
            )
            if self.trace is not None:
                self.trace.append(record)
            if _obs.state.enabled:
                if round_span is not None:
                    round_span.attrs["moved"] = len(moved)
                    tracer.end(round_span)
                    round_span = None
                _obs.record_round(
                    RoundEvent.from_record(record, engine="async"),
                    seconds=time.perf_counter() - started,
                )
        if round_span is not None:
            tracer.end(round_span)
        self.tick += 1

    # -- run loop ----------------------------------------------------------------------

    def _gathered_now(self) -> Optional[Point]:
        spot = gathered_point(self.positions(), self.live_ids(), self.tol)
        if spot is None:
            return None
        # No live robot may hold a pending move to a different point.
        for rid, entry in self.pending.items():
            if self.robots[rid].live and not entry.destination.close_to(
                spot, self.tol
            ):
                return None
        config = self.configuration()
        try:
            dest = self.algorithm.compute(config, spot)
        except GatheringError:
            return None
        return spot if dest.close_to(spot, self.tol) else None

    def run(self) -> SimulationResult:
        run_span = (
            _obs.tracer.begin(
                "run", "run", attrs={"engine": "async", "seed": self.seed}
            )
            if _obs.state.enabled and _obs.tracer.active
            else None
        )
        classes_seen: List[ConfigClass] = []
        verdict = Verdict.MAX_ROUNDS
        while self.tick < self.max_ticks:
            spot = self._gathered_now()
            if spot is not None:
                verdict = Verdict.GATHERED
                break
            config = self.configuration()
            cls = classify(config)
            if not classes_seen or classes_seen[-1] is not cls:
                classes_seen.append(cls)
            if cls is ConfigClass.BIVALENT and self.halt_on_bivalent:
                verdict = Verdict.IMPOSSIBLE
                break
            try:
                self.step()
            except BivalentConfigurationError:
                verdict = Verdict.IMPOSSIBLE
                break

        spot = self._gathered_now()
        if _obs.state.enabled:
            if run_span is not None:
                run_span.attrs["verdict"] = verdict
                run_span.attrs["rounds"] = self.tick
                _obs.tracer.end(run_span)
            _obs.record_run_end(
                {
                    "engine": "async",
                    "verdict": verdict,
                    "rounds": self.tick,
                    "seed": self.seed,
                    "stale_moves": self.stale_moves,
                }
            )
        return SimulationResult(
            verdict=verdict,
            rounds=self.tick,
            final_positions=self.positions(),
            live_ids=tuple(self.live_ids()),
            crashed_ids=tuple(
                r.robot_id for r in self.robots if r.crashed
            ),
            gathering_point=spot,
            total_distance=sum(r.distance_travelled for r in self.robots),
            trace=self.trace,
            initial_class=classes_seen[0]
            if classes_seen
            else classify(self.configuration()),
            classes_seen=tuple(classes_seen),
        )
