"""The unified LCM-cycle engine — the heart of the simulator.

Each round (Section II):

1. the **crash adversary** may crash robots (a crashed robot never acts
   again but stays visible);
2. the **scheduler** activates a subset of the live robots, with
   fairness enforced mechanically;
3. every active robot advances its LOOK–COMPUTE–MOVE cycle, where the
   pluggable **activation model** (:mod:`repro.sim.lcm`) decides how the
   cycle maps onto activations:

   * :class:`~repro.sim.lcm.AtomicActivation` (the default — the
     paper's ATOM model): one activation runs the whole cycle, every
     active robot receives the *same* global snapshot expressed in its
     private frame, and all moves of the round apply simultaneously;
   * :class:`~repro.sim.lcm.PhasedActivation` (ASYNC / CORDA): LOOK and
     MOVE are separately scheduled activations with a pending (stale)
     destination in between, resolved sequentially with no barrier.

   Either way the **movement model** resolves how far each move
   actually gets (the ``delta`` guarantee), with collusive adversaries
   seeing the step's whole move set first (``begin_round`` /
   ``endpoint_for`` identity hooks).

Exactness plumbing
------------------
The algorithm runs in each robot's local frame, so destinations suffer a
round-trip through an affine similarity (~1e-12 relative error).  The
engine *snaps* a computed global destination onto an existing robot
position when within ``snap_tolerance``; physically this says a robot
that decides "go to where that robot stands" reaches exactly that spot.
Likewise a move ending within tolerance of its destination ends exactly
there.  Multiplicities therefore form bitwise, which keeps the strong
multiplicity detection of the core layer exact.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..algorithms.base import GatheringAlgorithm
from ..core import (
    BivalentConfigurationError,
    ConfigClass,
    Configuration,
    GatheringError,
    classify,
)
from ..geometry import DEFAULT_TOLERANCE, Frame, Point, Tolerance, random_frame
from .. import obs as _obs
from ..obs.events import RoundEvent
from .faults import CrashAdversary, NoCrashes
from .gathering import gathered_point
from .lcm import ActivationModel, AtomicActivation, PendingMove, PhasedActivation
from .movement import MovementModel, RigidMovement
from .robot import Robot
from .scheduler import FairnessWrapper, FullySynchronous, Scheduler
from .trace import RoundRecord, Trace, TraceMeta

__all__ = [
    "Simulation",
    "SimulationResult",
    "Verdict",
    "component_rng",
    "snap_destination",
]


def snap_destination(
    dest: Point, config: Configuration, snap_tolerance: float
) -> Point:
    """Snap ``dest`` onto an occupied position it is trying to name.

    Shared by the scalar and batched engines so both apply the identical
    exactness rule (see the module docstring): among support points
    within ``snap_tolerance`` the last one achieving the running minimum
    distance wins, matching the scalar engine's historical scan order.
    """
    best = None
    best_d = snap_tolerance
    for p in config.support:
        d = dest.distance_to(p)
        if d <= best_d:
            best, best_d = p, d
    return best if best is not None else dest


#: Per-robot local-configuration cache bound.  On idle rounds (no robot
#: moved) every robot's local snapshot is identical to last round's, so
#: re-deriving the analysis tower is pure waste — but an A-class tower
#: retains an O(n^2) view table, so the cache is FIFO-bounded rather
#: than unbounded at large n.
_LOCAL_CONFIG_CACHE_MAX = 64


def component_rng(seed: int, component: str) -> random.Random:
    """Deterministic per-component RNG substream for a simulation seed.

    Every stochastic model component (crash adversary, scheduler,
    movement, byzantine policies) gets its *own* generator derived from
    the simulation seed.  Sharing one stream couples the components: a
    movement model that draws once per long move shifts every later
    crash and scheduling draw, so two runs differing by a sub-quantum
    geometric detail desynchronize completely after the first extra
    draw.  Independent substreams keep e.g. the crash schedule a
    function of the crash adversary alone, which is what makes
    differential backend diffs (``repro check --diff``) localize to the
    round that actually diverged.

    String seeding is used because :class:`random.Random` hashes str
    seeds with SHA-512 — stable across processes, platforms and
    ``PYTHONHASHSEED``.
    """
    return random.Random(f"repro:{seed}:{component}")


class Verdict:
    """Terminal states of a simulation run (string constants)."""

    GATHERED = "gathered"
    MAX_ROUNDS = "max-rounds"
    IMPOSSIBLE = "impossible"  # bivalent configuration encountered
    STALLED = "stalled"  # algorithm fixpoint that is not gathered


@dataclass
class SimulationResult:
    """Outcome and metrics of one simulation run."""

    verdict: str
    rounds: int
    final_positions: Dict[int, Point]
    live_ids: Tuple[int, ...]
    crashed_ids: Tuple[int, ...]
    gathering_point: Optional[Point]
    total_distance: float
    trace: Optional[Trace]
    initial_class: ConfigClass
    classes_seen: Tuple[ConfigClass, ...]
    #: Observability payload attached by the experiment runner when the
    #: obs layer is on: the worker pid, this seed's exact metrics delta
    #: and its span tail (see :mod:`repro.obs.aggregate`).  Never
    #: serialized into sweep journals — instrumentation must not change
    #: the persisted result bytes.
    obs: Optional[dict] = None

    @property
    def gathered(self) -> bool:
        return self.verdict == Verdict.GATHERED


#: Observer signature: called after every round with the fresh record.
Observer = Callable[[RoundRecord], None]


class Simulation:
    """One configured run of an algorithm in the ATOM model.

    Parameters
    ----------
    algorithm:
        The gathering algorithm under test.
    positions:
        Initial global positions, one per robot.
    scheduler / crash_adversary / movement:
        Model components; defaults are the benign ones (FSYNC, no
        crashes, rigid moves).
    activation:
        The activation model (:mod:`repro.sim.lcm`) mapping LCM cycles
        onto scheduler activations; defaults to
        :class:`~repro.sim.lcm.AtomicActivation` (the paper's ATOM
        rounds).  :class:`~repro.sim.lcm.PhasedActivation` gives the
        ASYNC/CORDA tick semantics (or use the
        :class:`~repro.sim.AsyncSimulation` convenience wrapper).
    frames:
        ``"identity"`` runs all robots in the global frame (useful for
        debugging); ``"random"`` gives each robot a private random
        rotation + scale, exercising disorientation-with-chirality.
    fairness_bound:
        Max rounds a live robot may be starved before force-activation.
    snap_tolerance:
        Distance under which computed destinations are snapped onto
        existing robot positions (see module docstring).  The default
        equals the distance quantum: just enough to undo frame
        round-trip noise, small enough never to *relocate* a target
        (a larger snap would bend rays near the Weber point and poison
        the string of angles).
    record_trace:
        Keep full per-round records (memory-heavy for long runs).
    """

    def __init__(
        self,
        algorithm: GatheringAlgorithm,
        positions: Sequence[Point],
        *,
        scheduler: Optional[Scheduler] = None,
        crash_adversary: Optional[CrashAdversary] = None,
        movement: Optional[MovementModel] = None,
        activation: Optional[ActivationModel] = None,
        tol: Tolerance = DEFAULT_TOLERANCE,
        frames: str = "random",
        seed: int = 0,
        fairness_bound: int = 32,
        snap_tolerance: float = 1e-9,
        max_rounds: int = 50_000,
        record_trace: bool = False,
        halt_on_bivalent: bool = True,
        byzantine: Optional[Dict[int, "ByzantinePolicy"]] = None,
        visibility: Optional[float] = None,
        mirrored: Optional[Set[int]] = None,
        sensor_noise: float = 0.0,
    ) -> None:
        if not positions:
            raise ValueError("a simulation needs at least one robot")
        if frames not in ("identity", "random"):
            raise ValueError("frames must be 'identity' or 'random'")
        self.algorithm = algorithm
        self.seed = seed
        self.rng = random.Random(seed)
        # Decoupled substreams — see :func:`component_rng`.  ``self.rng``
        # keeps seeding the per-robot frames (drawn once, below) and the
        # sensor-noise perturbations; the model components each draw
        # from their own stream so none of them can desynchronize the
        # others.
        self._crash_rng = component_rng(seed, "crash")
        self._sched_rng = component_rng(seed, "sched")
        self._move_rng = component_rng(seed, "move")
        self._byz_rng = component_rng(seed, "byz")
        self.tol = tol
        self.snap_tolerance = snap_tolerance
        self.max_rounds = max_rounds
        self.scheduler = FairnessWrapper(
            scheduler or FullySynchronous(), bound=fairness_bound
        )
        self.crash_adversary = crash_adversary or NoCrashes()
        self.movement = movement or RigidMovement()
        self.activation: ActivationModel = activation or AtomicActivation()
        #: MOVE activations whose destination was computed more than one
        #: tick earlier — the volume of genuinely stale moves.  Always 0
        #: under atomic activation (cycles never outlive a round).
        self.stale_moves = 0
        # With halt_on_bivalent the engine stops as soon as the (provably
        # hopeless) bivalent configuration appears; switching it off lets
        # experiment E2 watch how baseline algorithms actually behave
        # from B (thrash, stall, or luckily escape under FSYNC).
        self.halt_on_bivalent = halt_on_bivalent
        # Byzantine robots: adversary-controlled, visible, activated and
        # crash-prone like everyone else — but their destinations come
        # from their policy, not the algorithm (experiment E11).
        self.byzantine: Dict[int, object] = dict(byzantine or {})
        for rid in self.byzantine:
            if not 0 <= rid < len(positions):
                raise ValueError(f"byzantine id {rid} out of range")
        # Assumption-ablation knobs (experiments E14/E15): a finite
        # visibility radius truncates every snapshot to nearby robots
        # (the paper requires unlimited visibility); `mirrored` lists
        # robots whose private frames flip handedness (violating the
        # chirality assumption).
        if visibility is not None and visibility <= 0:
            raise ValueError("visibility radius must be positive")
        self.visibility = visibility
        self.mirrored: Set[int] = set(mirrored or ())
        for rid in self.mirrored:
            if not 0 <= rid < len(positions):
                raise ValueError(f"mirrored id {rid} out of range")
        # Sensor noise (experiment E16): every LOOK perturbs the
        # observed positions of *other* robots by an isotropic error of
        # at most this magnitude (the robot knows its own position
        # exactly — it is the origin of its frame).  The paper's model
        # is exact; this knob measures how much inaccuracy the
        # tolerance-quantized pipeline absorbs in practice.
        if sensor_noise < 0:
            raise ValueError("sensor noise must be non-negative")
        self.sensor_noise = sensor_noise
        # A sensor that mis-measures positions by up to `noise` cannot
        # resolve two robots closer than ~2*noise either — so the
        # *observed* configurations (and the gathered predicate, which
        # asks whether robots are physically together as far as anyone
        # can tell) use a matching effective tolerance.  All engine-side
        # bookkeeping stays at the exact tolerance.
        if sensor_noise > 0.0:
            self.effective_tol = replace(
                tol, eps_dist=max(tol.eps_dist, 2.1 * sensor_noise)
            )
        else:
            self.effective_tol = tol
        # Even engine-level traces (no scenario attached) get a partial
        # meta block so the recording tolerance, backend and seed always
        # survive serialization; the scenario runner overwrites it with
        # a complete, replayable block.
        self.trace: Optional[Trace] = (
            Trace(
                meta=TraceMeta.for_run(
                    scenario=None,
                    seed=None,
                    engine_seed=seed,
                    tol=tol,
                    engine=self.activation.name,
                )
            )
            if record_trace
            else None
        )
        self.observers: List[Observer] = []

        self.robots: List[Robot] = []
        for rid, pos in enumerate(positions):
            frame = (
                random_frame(self.rng)
                if frames == "random"
                else Frame(Point(0.0, 0.0), 0.0, 1.0)
            )
            if rid in self.mirrored:
                frame = frame.mirrored()
            self.robots.append(Robot(robot_id=rid, position=pos, frame=frame))

        # The effective tolerance is a *physical* (global-units)
        # resolution; each robot's private frame rescales space, so its
        # sensing resolution rescales with it.  Frames are fixed for the
        # whole run, so the per-robot local tolerances are too.
        if self.sensor_noise > 0.0:
            self._local_tols: List[Tolerance] = [
                replace(
                    self.effective_tol,
                    eps_dist=self.effective_tol.eps_dist * r.frame.scale,
                )
                for r in self.robots
            ]
        else:
            self._local_tols = [self.effective_tol] * len(self.robots)

        self._last_moved: Set[int] = set()
        self._last_active: Dict[int, int] = {}
        self.round_index = 0
        # Configuration cache: classification and views memoize on the
        # Configuration object, and gathered/stalled checks plus step()
        # all consult the same round's configuration — rebuilding it
        # would discard those memos three times per round.
        self._config_cache: Optional[Configuration] = None
        # Local-frame twin of the cache above: each robot's private
        # snapshot (and therefore its memoized tower) only changes when
        # some robot moves.  Noisy sensors re-perturb every LOOK, so the
        # cache is disabled under sensor noise.
        self._local_config_cache: Dict[int, Configuration] = {}

    # -- state accessors -----------------------------------------------------

    def positions(self) -> Dict[int, Point]:
        return {r.robot_id: r.position for r in self.robots}

    def _robot_by_id(self, robot_id: int) -> Robot:
        return self.robots[robot_id]

    def live_ids(self) -> List[int]:
        return [r.robot_id for r in self.robots if r.live]

    def correct_ids(self) -> List[int]:
        """Live robots that follow the algorithm (the paper's *correct*).

        With no byzantine robots this equals :meth:`live_ids`.
        """
        return [
            r.robot_id
            for r in self.robots
            if r.live and r.robot_id not in self.byzantine
        ]

    def crashed_ids(self) -> List[int]:
        return [r.robot_id for r in self.robots if r.crashed]

    def configuration(self) -> Configuration:
        if self._config_cache is None:
            self._config_cache = Configuration(
                [r.position for r in self.robots], self.tol
            )
        return self._config_cache

    def add_observer(self, observer: Observer) -> None:
        """Attach a per-round callback (invariant checkers use this)."""
        self.observers.append(observer)

    # -- core round ------------------------------------------------------------

    def _visible_points(self, origin: Point) -> List[Point]:
        """Positions a robot at ``origin`` can see (E14: limited range).

        The observer itself is always visible.  With unlimited
        visibility (the paper's model) this is every robot.
        """
        pts = [r.position for r in self.robots]
        if self.visibility is None:
            return pts
        return [
            p for p in pts if origin.distance_to(p) <= self.visibility
        ]

    def _perturb(self, p: Point) -> Point:
        """One sensor reading: ``p`` plus isotropic error <= sensor_noise."""
        angle = self.rng.uniform(0.0, 2.0 * math.pi)
        r = self.rng.uniform(0.0, self.sensor_noise)
        return Point(p.x + r * math.cos(angle), p.y + r * math.sin(angle))

    def _snap_destination(self, dest: Point, config: Configuration) -> Point:
        """Snap ``dest`` onto an occupied position it is trying to name."""
        return snap_destination(dest, config, self.snap_tolerance)

    def _local_configuration(self, robot: Robot) -> Configuration:
        """The robot's private-frame snapshot, cached across idle rounds."""
        cached = (
            self._local_config_cache.get(robot.robot_id)
            if self.sensor_noise == 0.0
            else None
        )
        if cached is not None:
            return cached
        frame = robot.anchored_frame()
        observed = self._visible_points(robot.position)
        if self.sensor_noise > 0.0:
            observed = [
                p if p == robot.position else self._perturb(p)
                for p in observed
            ]
        local_points = [frame.to_local(p) for p in observed]
        local_config = Configuration(
            local_points, self._local_tols[robot.robot_id]
        )
        if self.sensor_noise == 0.0:
            if len(self._local_config_cache) >= _LOCAL_CONFIG_CACHE_MAX:
                self._local_config_cache.pop(
                    next(iter(self._local_config_cache))
                )
            self._local_config_cache[robot.robot_id] = local_config
        return local_config

    def _destination_for(self, robot: Robot, config: Configuration) -> Optional[Point]:
        """LOOK + COMPUTE for one robot: the snapped global destination.

        This is the one place a snapshot is taken and an algorithm run,
        shared by both activation models: byzantine policies, private
        frames, visibility truncation, sensor noise and destination
        snapping all happen here.  Returns ``None`` when a noisy
        observer refuses its view — a *noisy observer* can transiently
        see a bivalent-looking blob that the true configuration is not;
        its refusal means "I stay this cycle", not global impossibility
        (which the engine judges on the exact positions).
        """
        policy = self.byzantine.get(robot.robot_id)
        if policy is not None:
            # Adversary-controlled robot: omniscient, frame-free.
            return policy.destination(
                robot.robot_id,
                self.positions(),
                self.correct_ids(),
                self.round_index,
                self._byz_rng,
            )
        frame = robot.anchored_frame()
        local_config = self._local_configuration(robot)
        local_me = frame.to_local(robot.position)
        if self.sensor_noise > 0.0:
            try:
                local_dest = self.algorithm.compute(local_config, local_me)
            except BivalentConfigurationError:
                return None
        else:
            local_dest = self.algorithm.compute(local_config, local_me)
        return self._snap_destination(frame.to_global(local_dest), config)

    def _begin_move_phase(self, moves: Dict[int, Tuple[Point, Point]]) -> None:
        """Collusive adversaries see the step's whole move set first."""
        if hasattr(self.movement, "begin_round"):
            self.movement.begin_round(moves)

    def _resolve_move(self, robot: Robot, dest: Point) -> bool:
        """Execute one move; returns whether the robot actually moved.

        Identity-aware models resolve through ``endpoint_for`` (so a
        coordinated adversary can serve per-robot stops); the rest
        through the classic ``endpoint``.  A move ending within
        tolerance of its destination ends exactly there, and any actual
        movement invalidates every cached snapshot immediately — under
        phased activation a later robot's LOOK in the *same* tick must
        already see this move.
        """
        if hasattr(self.movement, "endpoint_for"):
            end = self.movement.endpoint_for(robot.robot_id, robot.position, dest)
        else:
            end = self.movement.endpoint(robot.position, dest, self._move_rng)
        if end.distance_to(dest) <= self.tol.eps_dist:
            end = dest
        if end == robot.position:
            return False
        robot.distance_travelled += robot.position.distance_to(end)
        robot.position = end
        self._config_cache = None
        self._local_config_cache.clear()
        return True

    def _step_atomic(
        self,
        active: Set[int],
        config_before: Configuration,
        tracer,
    ) -> Tuple[Dict[int, Point], List[int]]:
        """ATOM semantics: compute all against one snapshot, then move all.

        The round-global barrier is the point: no robot's move is
        visible to any other robot's LOOK of the same round.
        """
        phase_span = tracer.begin("compute", "phase") if tracer is not None else None
        destinations: Dict[int, Point] = {}
        for robot in self.robots:
            if robot.robot_id not in active:
                continue
            dest = self._destination_for(robot, config_before)
            if dest is not None:
                destinations[robot.robot_id] = dest
        if tracer is not None:
            tracer.end(phase_span)
            phase_span = tracer.begin("move", "phase")

        self._begin_move_phase(
            {
                rid: (self._robot_by_id(rid).position, dest)
                for rid, dest in destinations.items()
            }
        )
        moved: List[int] = []
        for robot in self.robots:
            dest = destinations.get(robot.robot_id)
            if dest is None:
                continue
            if self._resolve_move(robot, dest):
                moved.append(robot.robot_id)
            robot.last_active_round = self.round_index
            self._last_active[robot.robot_id] = self.round_index
        if tracer is not None:
            tracer.end(phase_span)
        return destinations, moved

    def _step_phased(
        self,
        active: Set[int],
        config_before: Configuration,
        tracer,
    ) -> Tuple[Dict[int, Point], List[int]]:
        """CORDA semantics: one phase per activation, no barrier.

        Activations resolve sequentially in robot order — a LOOK later
        in the tick observes the moves earlier activations already
        executed, which is exactly the interleaving hazard ASYNC adds.
        Destinations are snapped against the tick-start configuration
        (``config_before``): crashes never move anyone, so its support
        is the set of positions the LOOKing robot is trying to name.

        The tick's MOVE set is known up front (each robot moves at most
        once per tick, and only its own move changes its origin), so the
        movement model's collusion hook sees the whole set before any
        move resolves — this is what lets :class:`CollusiveStop` stack
        async robots instead of silently degrading to rigid moves.
        """
        pending = self.activation.pending
        self._begin_move_phase(
            {
                rid: (self._robot_by_id(rid).position, pending[rid].destination)
                for rid in sorted(active)
                if rid in pending
            }
        )
        destinations: Dict[int, Point] = {}
        moved: List[int] = []
        for robot in self.robots:
            rid = robot.robot_id
            if rid not in active:
                continue
            robot.last_active_round = self.round_index
            self._last_active[rid] = self.round_index
            entry = pending.get(rid)
            if entry is None:
                # LOOK + COMPUTE against the *current* configuration.
                phase_span = (
                    tracer.begin("look", "phase", attrs={"robot": rid})
                    if tracer is not None
                    else None
                )
                dest = self._destination_for(robot, config_before)
                if tracer is not None:
                    tracer.end(phase_span)
                if dest is None:
                    continue
                pending[rid] = PendingMove(dest, self.round_index)
                destinations[rid] = dest
            else:
                # MOVE towards the (possibly stale) destination.
                phase_span = (
                    tracer.begin("move", "phase", attrs={"robot": rid})
                    if tracer is not None
                    else None
                )
                if entry.looked_at_tick < self.round_index - 1:
                    self.stale_moves += 1
                del pending[rid]
                if self._resolve_move(robot, entry.destination):
                    moved.append(rid)
                if tracer is not None:
                    tracer.end(phase_span)
                destinations[rid] = entry.destination
        return destinations, moved

    def step(self) -> RoundRecord:
        """Execute one round (ATOM) or tick (ASYNC) and return its record.

        Raises :class:`BivalentConfigurationError` if the algorithm
        refuses the current configuration; :meth:`run` converts this
        into the ``impossible`` verdict.

        Observability: with the obs layer on, the step is timed (the
        ``round_seconds`` histogram) and, when tracing is active, it
        becomes a span.  Atomic phases are round-global barriers, so the
        round span gets three phase children: ``look`` covers fixing the
        snapshot everyone acts on (crashes + scheduling), ``compute``
        the fused per-robot LOOK+COMPUTE loop, and ``move`` the
        simultaneous move resolution.  Phased activation has no such
        barrier — LOOK and MOVE activations interleave per robot, which
        is the point of the CORDA model — so each activation gets its
        *own* phase span labelled with the robot id.  All of it sits
        behind the same one-attribute-read guard as event recording: a
        disabled process allocates no span objects and reads no clock.
        """
        phased = self.activation.phased
        obs_on = _obs.state.enabled
        started = time.perf_counter() if obs_on else 0.0
        tracer = _obs.tracer if obs_on and _obs.tracer.active else None
        round_span = (
            tracer.begin(
                "tick" if phased else "round",
                "round",
                attrs={"round": self.round_index},
            )
            if tracer is not None
            else None
        )
        config_before = self.configuration()
        cls = classify(config_before)

        # 1. Crashes.
        phase_span = (
            tracer.begin("look", "phase")
            if tracer is not None and not phased
            else None
        )
        crash_now = self.crash_adversary.crashes(
            self.round_index,
            self.live_ids(),
            self.positions(),
            set(self._last_moved),
            self._crash_rng,
        )
        for robot in self.robots:
            if robot.robot_id in crash_now:
                robot.crash(self.round_index)
                self.activation.on_crash(robot.robot_id)

        # 2. Scheduling (fair).
        active = self.scheduler.select(
            self.round_index,
            self.live_ids(),
            self._sched_rng,
            self._last_active,
            positions=self.positions(),
        )
        if phase_span is not None:
            tracer.end(phase_span)

        # 3./4. LCM phases, structured by the activation model.
        if phased:
            destinations, moved = self._step_phased(active, config_before, tracer)
        else:
            destinations, moved = self._step_atomic(active, config_before, tracer)

        self._last_moved = set(moved)
        config_after = self.configuration()
        record = RoundRecord(
            round_index=self.round_index,
            config_before=config_before,
            config_class=cls,
            active=tuple(sorted(active)),
            crashed_now=tuple(sorted(crash_now)),
            destinations=destinations,
            config_after=config_after,
            moved=tuple(moved),
        )
        if self.trace is not None:
            self.trace.append(record)
        for observer in self.observers:
            observer(record)
        if obs_on:
            if round_span is not None:
                round_span.attrs["class"] = cls.value
                round_span.attrs["moved"] = len(moved)
                tracer.end(round_span)
            _obs.record_round(
                RoundEvent.from_record(record, engine=self.activation.name),
                seconds=time.perf_counter() - started,
            )
        self.round_index += 1
        return record

    # -- run loop ---------------------------------------------------------------

    def _gathered_now(self) -> Optional[Point]:
        spot = gathered_point(
            self.positions(), self.correct_ids(), self.effective_tol
        )
        if spot is None:
            return None
        # Under phased activation a stale pending destination may be
        # about to pull a live robot back out of the spot — that refutes
        # stability no matter what a fresh LOOK would compute.  (Atomic
        # activation never holds pending moves, so this is free there.)
        divergent = getattr(self.activation, "divergent_pending", None)
        if divergent is not None and divergent(
            spot, self.live_ids(), self.effective_tol
        ):
            return None
        # Stability is judged through the robots' own (possibly
        # visibility-limited, resolution-limited) eyes: what would a
        # robot at the spot do?  With unlimited exact sensing that view
        # is the round's configuration itself — reuse its memoized tower
        # instead of rebuilding it from scratch.
        if self.visibility is None and self.sensor_noise == 0.0:
            view = self.configuration()
        else:
            view = Configuration(
                self._visible_points(spot), self.effective_tol
            )
        try:
            dest = self.algorithm.compute(view, spot)
        except GatheringError:
            return None
        return spot if dest.close_to(spot, self.effective_tol) else None

    def _stalled_now(self, config: Configuration) -> bool:
        """Fixpoint check: no live robot is instructed to move.

        Because the algorithm is oblivious, a non-gathered all-stay
        configuration can never change again — the run is dead.  This is
        how the classic wait-*ful* baseline manifests its deadlock.
        (With byzantine robots the configuration is never a fixpoint —
        the adversary may always move; with sensor noise the snapshots
        fluctuate round to round, so an all-stay *expected* view proves
        nothing.  The check is skipped in both cases.)
        """
        if self.byzantine or self.sensor_noise > 0.0:
            return False
        # A half-finished cycle is not a fixpoint: the pending MOVE may
        # still change the configuration even if every fresh LOOK says
        # stay.
        if self.activation.pending:
            return False
        live_positions = {
            r.position for r in self.robots if r.live
        }
        try:
            for p in live_positions:
                view = (
                    config
                    if self.visibility is None
                    else Configuration(
                        self._visible_points(p), self.effective_tol
                    )
                )
                if not self.algorithm.compute(view, p).close_to(
                    p, self.effective_tol
                ):
                    return False
        except GatheringError:
            return False
        return True

    def run(self) -> SimulationResult:
        """Run until gathered / impossible / stalled / out of rounds."""
        run_span = (
            _obs.tracer.begin(
                "run",
                "run",
                attrs={"engine": self.activation.name, "seed": self.seed},
            )
            if _obs.state.enabled and _obs.tracer.active
            else None
        )
        classes_seen: List[ConfigClass] = []
        verdict = Verdict.MAX_ROUNDS
        while self.round_index < self.max_rounds:
            spot = self._gathered_now()
            if spot is not None:
                verdict = Verdict.GATHERED
                break
            config = self.configuration()
            cls = classify(config)
            if not classes_seen or classes_seen[-1] is not cls:
                classes_seen.append(cls)
            if cls is ConfigClass.BIVALENT and self.halt_on_bivalent:
                verdict = Verdict.IMPOSSIBLE
                break
            if self._stalled_now(config):
                verdict = Verdict.STALLED
                break
            try:
                self.step()
            except BivalentConfigurationError:
                verdict = Verdict.IMPOSSIBLE
                break

        spot = self._gathered_now()
        if _obs.state.enabled:
            if run_span is not None:
                run_span.attrs["verdict"] = verdict
                run_span.attrs["rounds"] = self.round_index
                _obs.tracer.end(run_span)
            run_end = {
                "engine": self.activation.name,
                "verdict": verdict,
                "rounds": self.round_index,
                "seed": self.seed,
            }
            if self.activation.phased:
                run_end["stale_moves"] = self.stale_moves
            _obs.record_run_end(run_end)
        return SimulationResult(
            verdict=verdict,
            rounds=self.round_index,
            final_positions=self.positions(),
            live_ids=tuple(self.live_ids()),
            crashed_ids=tuple(self.crashed_ids()),
            gathering_point=spot,
            total_distance=sum(r.distance_travelled for r in self.robots),
            trace=self.trace,
            initial_class=classes_seen[0] if classes_seen else classify(self.configuration()),
            classes_seen=tuple(classes_seen),
        )
