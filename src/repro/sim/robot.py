"""Robot state tracked by the simulation engine.

A robot of the ATOM model is a position, a private coordinate frame
(disorientation with chirality) and a liveness flag.  Identities exist
only inside the engine — the algorithm never sees them — so ``robot_id``
is purely a bookkeeping handle for schedulers, crash adversaries and
traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..geometry import IDENTITY_FRAME, Frame, Point

__all__ = ["Robot"]


@dataclass
class Robot:
    """Mutable per-robot record owned by the engine.

    The frame's rotation and scale are fixed for the robot's lifetime
    (its compass error and unit of distance); the frame is re-anchored at
    the robot's current position before every LOOK so the robot observes
    itself at the local origin, as the model prescribes.
    """

    robot_id: int
    position: Point
    frame: Frame = IDENTITY_FRAME
    crashed: bool = False
    crash_round: Optional[int] = None
    last_active_round: int = -1
    distance_travelled: float = 0.0

    @property
    def live(self) -> bool:
        """A robot is live (the paper's *correct*) until it crashes."""
        return not self.crashed

    def crash(self, round_index: int) -> None:
        """Permanently stop the robot (crash fault model)."""
        if not self.crashed:
            self.crashed = True
            self.crash_round = round_index

    def anchored_frame(self) -> Frame:
        """The private frame anchored at the current position."""
        return self.frame.with_origin(self.position)
