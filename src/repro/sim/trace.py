"""Execution traces — what happened, round by round.

Traces drive four consumers: the invariant checkers of
:mod:`repro.analysis` (which verify per-round proof obligations), the
experiment harness (which aggregates metrics), humans debugging a run
(``Trace.render`` prints a compact transcript), and offline tooling
(``Trace.to_json`` / ``Trace.from_json`` round-trip the full record so a
run can be archived, diffed, or re-analysed without re-simulating).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core import ConfigClass, Configuration
from ..geometry import Point

__all__ = ["RoundRecord", "Trace"]


@dataclass(frozen=True)
class RoundRecord:
    """Everything observable about one simulation round."""

    round_index: int
    config_before: Configuration
    config_class: ConfigClass
    active: Tuple[int, ...]
    crashed_now: Tuple[int, ...]
    destinations: Dict[int, Point]
    config_after: Configuration
    moved: Tuple[int, ...]

    def summary(self) -> str:
        moves = ",".join(str(i) for i in self.moved) or "-"
        crash = ",".join(str(i) for i in self.crashed_now) or "-"
        return (
            f"r{self.round_index:>4} [{self.config_class}] "
            f"active={len(self.active)} moved={moves} crashed={crash}"
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (exact float coordinates preserved)."""
        return {
            "round": self.round_index,
            "class": self.config_class.value,
            "before": [p.as_tuple() for p in self.config_before.points],
            "after": [p.as_tuple() for p in self.config_after.points],
            "active": list(self.active),
            "crashed": list(self.crashed_now),
            "moved": list(self.moved),
            "destinations": {
                str(rid): dest.as_tuple()
                for rid, dest in self.destinations.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RoundRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            round_index=data["round"],
            config_before=Configuration(
                [Point(x, y) for x, y in data["before"]]
            ),
            config_class=ConfigClass(data["class"]),
            active=tuple(data["active"]),
            crashed_now=tuple(data["crashed"]),
            destinations={
                int(rid): Point(x, y)
                for rid, (x, y) in data["destinations"].items()
            },
            config_after=Configuration(
                [Point(x, y) for x, y in data["after"]]
            ),
            moved=tuple(data["moved"]),
        )


@dataclass
class Trace:
    """Ordered list of :class:`RoundRecord` with rendering helpers.

    Recording full configurations costs memory linear in rounds x robots;
    the engine's ``record_trace`` flag turns it off for large sweeps,
    in which case only counters are kept by the result object.
    """

    records: List[RoundRecord] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def class_sequence(self) -> List[ConfigClass]:
        """The sequence of configuration classes traversed."""
        return [r.config_class for r in self.records]

    def class_transitions(self) -> List[Tuple[ConfigClass, ConfigClass]]:
        """Consecutive (before, after) class pairs, for Lemmas 5.3-5.9."""
        classes = self.class_sequence()
        return list(zip(classes, classes[1:]))

    def render(self, limit: Optional[int] = 50) -> str:
        """Human-readable transcript (truncated to ``limit`` rounds)."""
        rows = [r.summary() for r in self.records[: limit or None]]
        if limit is not None and len(self.records) > limit:
            rows.append(f"... ({len(self.records) - limit} more rounds)")
        return "\n".join(rows)

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize the whole trace (exact coordinates) to JSON."""
        return json.dumps(
            {"format": "repro-trace-v1",
             "records": [r.to_dict() for r in self.records]},
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        """Inverse of :meth:`to_json`.

        Raises :class:`ValueError` on an unrecognized payload so stale
        archives fail loudly rather than half-load.
        """
        data = json.loads(text)
        if not isinstance(data, dict) or data.get("format") != "repro-trace-v1":
            raise ValueError("not a repro-trace-v1 payload")
        trace = cls()
        for record in data["records"]:
            trace.append(RoundRecord.from_dict(record))
        return trace
