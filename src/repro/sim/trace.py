"""Execution traces — what happened, round by round.

Traces drive four consumers: the invariant checkers of
:mod:`repro.analysis` (which verify per-round proof obligations), the
experiment harness (which aggregates metrics), humans debugging a run
(``Trace.render`` prints a compact transcript), and offline tooling
(``Trace.to_json`` / ``Trace.from_json`` round-trip the full record so a
run can be archived, diffed, or re-analysed without re-simulating).

Schema versions
---------------
``repro-trace-v2`` (written) adds a ``meta`` block embedding everything
needed to *re-simulate* the run — the canonical scenario dict, the sweep
seed and engine seed, the kernel backend, the package version, and the
:class:`~repro.geometry.tolerance.Tolerance` the run quantized space
with.  The tolerance matters for fidelity, not just provenance: the
per-round configurations are rebuilt on load, and rebuilding with the
wrong tolerance silently changes how near-coincident points merge into
support points.  ``repro-trace-v1`` archives (no meta) are still read;
their configurations are rebuilt with the default tolerance, which is
what v1 writers recorded under.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core import ConfigClass, Configuration
from ..geometry import DEFAULT_TOLERANCE, Point, Tolerance, kernels
from ..resilience.errors import TraceFormatError

__all__ = [
    "RoundRecord",
    "Trace",
    "TraceMeta",
    "SCHEMA_V1",
    "SCHEMA_V2",
    "canonical_scenario_json",
    "scenario_hash",
]

#: Legacy schema identifier: records only, default tolerance, no meta.
SCHEMA_V1 = "repro-trace-v1"

#: Current schema identifier: ``meta`` block + records.
SCHEMA_V2 = "repro-trace-v2"


def _package_version() -> str:
    from .. import __version__  # deferred: repro/__init__ imports us

    return __version__


def _canonical_value(value):
    """Normalize a JSON value for content addressing.

    Two textual spellings of the same scenario must hash identically:
    object key order is irrelevant (sorted on dump) and so is float
    formatting — ``8``, ``8.0`` and ``8.00`` all denote the same team
    size, so integral floats collapse to ints before serialization.
    Non-integral floats serialize via ``repr`` (the json default), which
    round-trips float64 exactly.
    """
    if isinstance(value, dict):
        return {str(k): _canonical_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical_value(v) for v in value]
    if isinstance(value, bool):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def canonical_scenario_json(scenario: Optional[dict]) -> str:
    """The canonical JSON text of a scenario dict.

    Key-order and float-formatting invariant (see :func:`_canonical_value`),
    minimal separators, sorted keys — the exact byte string that feeds
    :func:`scenario_hash`, so any two requests describing the same
    scenario content-address to the same cache entry.
    """
    return json.dumps(
        _canonical_value(scenario), sort_keys=True, separators=(",", ":")
    )


def scenario_hash(
    scenario: Optional[dict],
    *,
    seed: int,
    backend: str,
    engine: str,
    code_version: str,
) -> str:
    """Content address of one deterministic run.

    A run is a pure function of ``(scenario, seed, backend, engine,
    code version)`` — the crash-fault model's determinism guarantee —
    so this sha256 names its result forever.  ``engine`` is hashed
    explicitly even though the canonical scenario dict carries it too:
    callers hashing partial scenario dicts (or ``None``) still get
    engine-distinct keys.
    """
    digest = hashlib.sha256()
    digest.update(canonical_scenario_json(scenario).encode("utf-8"))
    digest.update(f"|seed={seed}|backend={backend}|engine={engine}"
                  f"|version={code_version}".encode("utf-8"))
    return digest.hexdigest()


@dataclass(frozen=True)
class TraceMeta:
    """Provenance block of a v2 trace — enough to re-simulate the run.

    ``scenario`` is the canonical dict of an experiment
    :class:`~repro.experiments.runner.Scenario` (or ``None`` for traces
    recorded outside the scenario machinery); ``seed`` is the sweep seed
    the workload was generated from, ``engine_seed`` the seed actually
    handed to the engine (the CLI ``simulate`` command passes the raw
    user seed rather than the sweep-derived one, so both are recorded).
    """

    scenario: Optional[dict]
    seed: Optional[int]
    engine_seed: Optional[int]
    backend: str
    package_version: str
    tolerance: Optional[Tuple[float, float, float]]
    #: Which engine executed the run: ``"atom"`` (the paper's
    #: semi-synchronous rounds) or ``"async"`` (the CORDA-style tick
    #: engine).  Replay dispatches on it via the embedded scenario; it
    #: is recorded here too so tools can tell the scheduler model of an
    #: archive without parsing the scenario block.
    engine: str = "atom"

    @classmethod
    def for_run(
        cls,
        *,
        scenario: Optional[dict],
        seed: Optional[int],
        engine_seed: Optional[int],
        tol: Tolerance,
        engine: str = "atom",
    ) -> "TraceMeta":
        """Meta for a run recorded in this process, right now."""
        return cls(
            scenario=dict(scenario) if scenario is not None else None,
            seed=seed,
            engine_seed=engine_seed,
            backend=kernels.get_backend(),
            package_version=_package_version(),
            tolerance=(tol.eps_dist, tol.eps_angle, tol.eps_solver),
            engine=engine,
        )

    def tol(self) -> Tolerance:
        """The recorded tolerance (default when the block predates it)."""
        if self.tolerance is None:
            return DEFAULT_TOLERANCE
        eps_dist, eps_angle, eps_solver = self.tolerance
        return Tolerance(
            eps_dist=eps_dist, eps_angle=eps_angle, eps_solver=eps_solver
        )

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "engine_seed": self.engine_seed,
            "backend": self.backend,
            "package_version": self.package_version,
            "tolerance": list(self.tolerance) if self.tolerance else None,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceMeta":
        tolerance = data.get("tolerance")
        return cls(
            scenario=data.get("scenario"),
            seed=data.get("seed"),
            engine_seed=data.get("engine_seed"),
            backend=data.get("backend", "python"),
            package_version=data.get("package_version", "unknown"),
            tolerance=tuple(tolerance) if tolerance else None,
            engine=data.get("engine", "atom"),
        )


@dataclass(frozen=True)
class RoundRecord:
    """Everything observable about one simulation round."""

    round_index: int
    config_before: Configuration
    config_class: ConfigClass
    active: Tuple[int, ...]
    crashed_now: Tuple[int, ...]
    destinations: Dict[int, Point]
    config_after: Configuration
    moved: Tuple[int, ...]

    def summary(self) -> str:
        moves = ",".join(str(i) for i in self.moved) or "-"
        crash = ",".join(str(i) for i in self.crashed_now) or "-"
        return (
            f"r{self.round_index:>4} [{self.config_class}] "
            f"active={len(self.active)} moved={moves} crashed={crash}"
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (exact float coordinates preserved)."""
        return {
            "round": self.round_index,
            "class": self.config_class.value,
            "before": [p.as_tuple() for p in self.config_before.points],
            "after": [p.as_tuple() for p in self.config_after.points],
            "active": list(self.active),
            "crashed": list(self.crashed_now),
            "moved": list(self.moved),
            "destinations": {
                str(rid): dest.as_tuple()
                for rid, dest in self.destinations.items()
            },
        }

    @classmethod
    def from_dict(
        cls, data: dict, tol: Tolerance = DEFAULT_TOLERANCE
    ) -> "RoundRecord":
        """Inverse of :meth:`to_dict`.

        ``tol`` must be the tolerance the run was recorded under (a v2
        trace carries it in its meta block): the configurations are
        rebuilt here, and the tolerance decides how near-coincident
        coordinates merge into support points.  JSON object keys are
        always strings, so ``destinations`` keys are restored to the
        robot-id integers they were serialized from.
        """
        return cls(
            round_index=data["round"],
            config_before=Configuration(
                [Point(x, y) for x, y in data["before"]], tol
            ),
            config_class=ConfigClass(data["class"]),
            active=tuple(data["active"]),
            crashed_now=tuple(data["crashed"]),
            destinations={
                int(rid): Point(x, y)
                for rid, (x, y) in data["destinations"].items()
            },
            config_after=Configuration(
                [Point(x, y) for x, y in data["after"]], tol
            ),
            moved=tuple(data["moved"]),
        )


@dataclass
class Trace:
    """Ordered list of :class:`RoundRecord` with rendering helpers.

    Recording full configurations costs memory linear in rounds x robots;
    the engine's ``record_trace`` flag turns it off for large sweeps,
    in which case only counters are kept by the result object.
    """

    records: List[RoundRecord] = field(default_factory=list)

    #: Provenance of the run (schema v2); ``None`` for legacy archives
    #: and hand-built traces.  The engine stamps a partial block (seeds,
    #: backend, tolerance) at construction; the scenario runner replaces
    #: it with a full one including the scenario dict.
    meta: Optional[TraceMeta] = None

    def append(self, record: RoundRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def class_sequence(self) -> List[ConfigClass]:
        """The sequence of configuration classes traversed."""
        return [r.config_class for r in self.records]

    def class_transitions(self) -> List[Tuple[ConfigClass, ConfigClass]]:
        """Consecutive (before, after) class pairs, for Lemmas 5.3-5.9."""
        classes = self.class_sequence()
        return list(zip(classes, classes[1:]))

    def render(self, limit: Optional[int] = 50) -> str:
        """Human-readable transcript (truncated to ``limit`` rounds)."""
        rows = [r.summary() for r in self.records[: limit or None]]
        if limit is not None and len(self.records) > limit:
            rows.append(f"... ({len(self.records) - limit} more rounds)")
        return "\n".join(rows)

    def tol(self) -> Tolerance:
        """Tolerance the trace was recorded under (default if unknown)."""
        return self.meta.tol() if self.meta is not None else DEFAULT_TOLERANCE

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize the whole trace (exact coordinates) to JSON.

        Python floats serialize via ``repr`` which round-trips ``float64``
        exactly, so coordinates survive the archive bit for bit.
        """
        return json.dumps(
            {
                "format": SCHEMA_V2,
                "meta": self.meta.to_dict() if self.meta else None,
                "records": [r.to_dict() for r in self.records],
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str, source: str = "<trace>") -> "Trace":
        """Inverse of :meth:`to_json`; also reads v1 archives.

        Raises :class:`~repro.resilience.errors.TraceFormatError` (a
        :class:`ValueError`) on any unrecognized or corrupted payload —
        carrying ``source`` plus the line/offset of a JSON syntax error
        — so a stale or truncated archive fails loudly and points at
        the byte that poisoned it rather than half-loading.
        """
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"{source}: invalid trace JSON at line {exc.lineno} "
                f"column {exc.colno}: {exc.msg}",
                path=source,
                line=exc.lineno,
                offset=exc.pos,
            ) from exc
        if not isinstance(data, dict) or data.get("format") not in (
            SCHEMA_V1,
            SCHEMA_V2,
        ):
            found = data.get("format") if isinstance(data, dict) else type(data).__name__
            raise TraceFormatError(
                f"{source}: not a {SCHEMA_V1}/{SCHEMA_V2} payload "
                f"(format={found!r})",
                path=source,
            )
        meta_data = data.get("meta")
        try:
            meta = TraceMeta.from_dict(meta_data) if meta_data else None
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(
                f"{source}: malformed trace meta block: {exc}", path=source
            ) from exc
        tol = meta.tol() if meta is not None else DEFAULT_TOLERANCE
        trace = cls(meta=meta)
        records = data.get("records")
        if not isinstance(records, list):
            raise TraceFormatError(
                f"{source}: trace payload has no records array", path=source
            )
        for index, record in enumerate(records):
            try:
                trace.append(RoundRecord.from_dict(record, tol))
            except (KeyError, TypeError, ValueError, AttributeError) as exc:
                raise TraceFormatError(
                    f"{source}: malformed round record {index}: {exc}",
                    path=source,
                ) from exc
        return trace
