"""Legacy setup shim.

The offline reproduction environment lacks the ``wheel`` package, which
PEP 517 editable installs require; this shim lets
``pip install -e . --no-build-isolation`` fall back to the classic
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
