"""Unit tests for the baseline algorithms."""

import pytest

from repro.algorithms import (
    ALGORITHMS,
    CentroidConvergence,
    GatheringAlgorithm,
    NaiveLeaderGather,
    NumericalWeberGather,
    SequentialGather,
    WaitFreeGather,
)
from repro.core import Configuration
from repro.geometry import Point
from repro.sim import CrashAtRounds, RandomSubset, Simulation
from repro.workloads import generate

from ..conftest import regular_ngon

O = Point(0.0, 0.0)


class TestRegistry:
    def test_all_algorithms_registered(self):
        assert set(ALGORITHMS) == {
            "wait-free-gather",
            "centroid",
            "weber-numeric",
            "sequential",
            "naive-leader",
        }

    def test_registry_names_match_instances(self):
        for name, cls in ALGORITHMS.items():
            assert cls.name == name

    def test_protocol_conformance(self):
        for cls in ALGORITHMS.values():
            assert isinstance(cls(), GatheringAlgorithm)


class TestCentroid:
    def test_moves_to_center_of_gravity(self):
        c = Configuration([O, Point(3, 0), Point(0, 3)])
        dest = CentroidConvergence().compute(c, O)
        assert dest.close_to(Point(1, 1))

    def test_counts_multiplicities(self):
        c = Configuration([O, O, O, Point(4, 0)])
        dest = CentroidConvergence().compute(c, O)
        assert dest.close_to(Point(1, 0))

    def test_gathers_under_fsync_no_crashes(self):
        result = Simulation(
            CentroidConvergence(), generate("random", 6, 1), seed=1
        ).run()
        assert result.gathered  # FSYNC + rigid: one hop to the centroid

    def test_crashed_robot_drags_the_rally_point(self):
        pts = generate("random", 6, 2)
        result = Simulation(
            CentroidConvergence(),
            pts,
            scheduler=RandomSubset(0.5),
            crash_adversary=CrashAtRounds({0: 0}),
            seed=3,
            max_rounds=300,
        ).run()
        # The unique fixpoint of the centroid rule with a corpse is the
        # corpse's own position: the survivors converge towards it only
        # geometrically, far slower than the paper's algorithm — after
        # 300 rounds they are still not within sensor resolution.
        assert not result.gathered
        wfg = Simulation(
            WaitFreeGather(),
            pts,
            scheduler=RandomSubset(0.5),
            crash_adversary=CrashAtRounds({0: 0}),
            seed=3,
            max_rounds=300,
        ).run()
        assert wfg.gathered and wfg.rounds < 100


class TestNumericalWeber:
    def test_targets_geometric_median(self):
        pts = regular_ngon(5, radius=2.0)
        c = Configuration(pts)
        dest = NumericalWeberGather().compute(c, pts[0])
        assert dest.close_to(O)

    def test_gathers_with_crashes(self):
        result = Simulation(
            NumericalWeberGather(),
            generate("random", 7, 3),
            scheduler=RandomSubset(0.6),
            crash_adversary=CrashAtRounds({1: 0, 2: 4}),
            seed=5,
            max_rounds=4000,
        ).run()
        assert result.gathered


class TestSequential:
    def test_single_mover_only(self):
        pts = [O, O, Point(1, 0), Point(5, 5), Point(2, 3)]
        c = Configuration(pts)
        algo = SequentialGather()
        movers = [
            p for p in c.support if not algo.compute(c, p).close_to(p, c.tol)
        ]
        assert len(movers) == 1

    def test_target_position_stays(self):
        pts = [O, O, Point(1, 0), Point(5, 5)]
        c = Configuration(pts)
        assert SequentialGather().compute(c, O) == O

    def test_gathers_fault_free(self):
        result = Simulation(
            SequentialGather(),
            generate("random", 5, 4),
            seed=2,
            max_rounds=4000,
        ).run()
        assert result.gathered

    def test_deadlocks_when_mover_crashes(self):
        pts = [O, O, Point(1, 0), Point(5, 5)]
        result = Simulation(
            SequentialGather(),
            pts,
            crash_adversary=CrashAtRounds({2: 0}),  # the designated mover
            seed=0,
            max_rounds=500,
        ).run()
        assert result.verdict == "stalled"


class TestNaiveLeader:
    def test_unique_leader_when_asymmetric(self):
        pts = generate("asymmetric", 6, 1)
        c = Configuration(pts)
        algo = NaiveLeaderGather()
        dests = {algo.compute(c, p) for p in c.support}
        assert len(dests) == 1

    def test_ties_scatter_in_symmetric_configs(self):
        pts = regular_ngon(4, radius=2.0)
        c = Configuration(pts)
        algo = NaiveLeaderGather()
        dests = {algo.compute(c, p) for p in c.support}
        assert len(dests) > 1  # disagreement: the anonymity failure

    def test_gathers_on_easy_workloads(self):
        result = Simulation(
            NaiveLeaderGather(), generate("asymmetric", 6, 2), seed=1,
            max_rounds=2000,
        ).run()
        assert result.gathered
