"""Unit tests for schedulers and fairness enforcement."""

import random

import pytest

from repro.geometry import Point
from repro.sim import (
    FairnessWrapper,
    FullySynchronous,
    HalfSplitAdversary,
    LaggardAdversary,
    RandomSubset,
    RoundRobin,
)

IDS = [0, 1, 2, 3, 4]


class TestFullySynchronous:
    def test_selects_everyone(self):
        s = FullySynchronous()
        assert s.select(0, IDS, random.Random(0)) == set(IDS)

    def test_empty_live_set(self):
        assert FullySynchronous().select(3, [], random.Random(0)) == set()


class TestRoundRobin:
    def test_one_per_round_cycling(self):
        s = RoundRobin()
        seen = [s.select(r, IDS, random.Random(0)) for r in range(5)]
        assert all(len(sel) == 1 for sel in seen)
        assert set().union(*seen) == set(IDS)

    def test_skips_dead_robots(self):
        s = RoundRobin()
        live = [1, 3]
        picks = {next(iter(s.select(r, live, random.Random(0)))) for r in range(4)}
        assert picks == {1, 3}


class TestRandomSubset:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            RandomSubset(0.0)
        with pytest.raises(ValueError):
            RandomSubset(1.5)

    def test_p_one_selects_all(self):
        s = RandomSubset(1.0)
        assert s.select(0, IDS, random.Random(1)) == set(IDS)

    def test_subset_of_live(self):
        s = RandomSubset(0.5)
        sel = s.select(0, IDS, random.Random(2))
        assert sel <= set(IDS)


class TestLaggard:
    def test_victim_starved(self):
        s = LaggardAdversary(victim=0)
        sel = s.select(0, IDS, random.Random(0))
        assert 0 not in sel
        assert sel == {1, 2, 3, 4}

    def test_victim_replaced_when_dead(self):
        s = LaggardAdversary(victim=0)
        sel = s.select(0, [1, 2, 3], random.Random(0))
        assert 1 not in sel  # new victim = min live id


class TestHalfSplit:
    def test_alternates_clusters(self):
        s = HalfSplitAdversary()
        positions = {0: Point(0, 0), 1: Point(0, 0), 2: Point(5, 5), 3: Point(5, 5)}
        s.observe(positions)
        even = s.select(0, [0, 1, 2, 3], random.Random(0))
        odd = s.select(1, [0, 1, 2, 3], random.Random(0))
        assert even == {0, 1}
        assert odd == {2, 3}

    def test_without_observation_selects_all(self):
        s = HalfSplitAdversary()
        assert s.select(0, IDS, random.Random(0)) == set(IDS)


class TestFairnessWrapper:
    def test_forces_starved_robot(self):
        class Never:
            name = "never"

            def select(self, r, live, rng):
                return set()

        w = FairnessWrapper(Never(), bound=3)
        last_active = {rid: -1 for rid in IDS}
        # At round 3, every robot has been idle for >= 3 rounds.
        sel = w.select(3, IDS, random.Random(0), last_active)
        assert sel == set(IDS)

    def test_empty_selection_gets_fallback(self):
        class Never:
            name = "never"

            def select(self, r, live, rng):
                return set()

        w = FairnessWrapper(Never(), bound=100)
        sel = w.select(0, IDS, random.Random(0), {rid: -1 for rid in IDS})
        assert len(sel) == 1  # longest-idle robot activated

    def test_laggard_is_eventually_fair(self):
        w = FairnessWrapper(LaggardAdversary(victim=0), bound=5)
        last_active = {rid: -1 for rid in IDS}
        activated_rounds = []
        for r in range(12):
            sel = w.select(r, IDS, random.Random(0), last_active)
            for rid in sel:
                last_active[rid] = r
            if 0 in sel:
                activated_rounds.append(r)
        assert activated_rounds, "victim must eventually run"

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            FairnessWrapper(FullySynchronous(), bound=0)

    def test_dead_robots_never_selected(self):
        w = FairnessWrapper(FullySynchronous(), bound=4)
        sel = w.select(0, [1, 2], random.Random(0), {})
        assert sel == {1, 2}
