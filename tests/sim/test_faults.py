"""Unit tests for crash adversaries."""

import random

import pytest

from repro.geometry import Point
from repro.sim import (
    CrashAfterMove,
    CrashAtRounds,
    CrashElected,
    NoCrashes,
    RandomCrashes,
)

POSITIONS = {0: Point(0, 0), 1: Point(0, 0), 2: Point(1, 1), 3: Point(2, 2)}
LIVE = [0, 1, 2, 3]


class TestNoCrashes:
    def test_never_crashes(self):
        adv = NoCrashes()
        for r in range(5):
            assert adv.crashes(r, LIVE, POSITIONS, set(), random.Random(0)) == set()


class TestScheduled:
    def test_crashes_at_exact_round(self):
        adv = CrashAtRounds({1: 3, 2: 5})
        assert adv.crashes(3, LIVE, POSITIONS, set(), random.Random(0)) == {1}
        assert adv.crashes(5, LIVE, POSITIONS, set(), random.Random(0)) == {2}
        assert adv.crashes(4, LIVE, POSITIONS, set(), random.Random(0)) == set()

    def test_dead_robots_not_recrashed(self):
        adv = CrashAtRounds({1: 3})
        assert adv.crashes(3, [0, 2], POSITIONS, set(), random.Random(0)) == set()


class TestRandomCrashes:
    def test_budget_respected(self):
        adv = RandomCrashes(f=2, rate=1.0)
        crashed = set()
        live = list(LIVE)
        for r in range(10):
            now = adv.crashes(r, live, POSITIONS, set(), random.Random(r))
            crashed |= now
            live = [x for x in live if x not in crashed]
        assert len(crashed) == 2

    def test_zero_budget(self):
        adv = RandomCrashes(f=0)
        assert adv.crashes(0, LIVE, POSITIONS, set(), random.Random(0)) == set()

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomCrashes(f=-1)
        with pytest.raises(ValueError):
            RandomCrashes(f=1, rate=0.0)


class TestCrashAfterMove:
    def test_targets_a_mover(self):
        adv = CrashAfterMove(f=3)
        out = adv.crashes(1, LIVE, POSITIONS, {2, 3}, random.Random(0))
        assert out == {2}  # deterministically the lowest mover id

    def test_no_movers_no_crash(self):
        adv = CrashAfterMove(f=3)
        assert adv.crashes(1, LIVE, POSITIONS, set(), random.Random(0)) == set()

    def test_budget_exhausts(self):
        adv = CrashAfterMove(f=1)
        assert adv.crashes(0, LIVE, POSITIONS, {0}, random.Random(0)) == {0}
        assert adv.crashes(1, LIVE, POSITIONS, {1}, random.Random(0)) == set()


class TestCrashElected:
    def test_kills_robot_at_max_multiplicity_point(self):
        adv = CrashElected(f=1)
        out = adv.crashes(0, LIVE, POSITIONS, set(), random.Random(0))
        # (0,0) holds two robots: the unique max; lowest id there is 0.
        assert out == {0}

    def test_budget(self):
        adv = CrashElected(f=1)
        adv.crashes(0, LIVE, POSITIONS, set(), random.Random(0))
        assert adv.crashes(1, LIVE, POSITIONS, set(), random.Random(0)) == set()
