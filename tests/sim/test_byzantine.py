"""Unit tests for byzantine robots in the ATOM engine."""

import random

import pytest

from repro.algorithms import WaitFreeGather
from repro.geometry import Point
from repro.sim import (
    AntiGatherByzantine,
    ElectionThiefByzantine,
    OscillatingByzantine,
    RoundRobin,
    Simulation,
    StationaryByzantine,
)
from repro.workloads import generate

RNG = random.Random(0)
POSITIONS = {0: Point(0, 0), 1: Point(4, 0), 2: Point(0, 4)}


class TestPolicies:
    def test_stationary_never_moves(self):
        p = StationaryByzantine()
        assert p.destination(0, POSITIONS, [1, 2], 0, RNG) == Point(0, 0)

    def test_oscillating_alternates_anchors(self):
        p = OscillatingByzantine(Point(0, 0), Point(10, 0))
        pos = dict(POSITIONS)
        first = p.destination(0, pos, [1, 2], 0, RNG)
        assert first == Point(10, 0)  # farther anchor from (0,0)
        pos[0] = first
        second = p.destination(0, pos, [1, 2], 1, RNG)
        assert second == Point(0, 0)

    def test_oscillating_validation(self):
        with pytest.raises(ValueError):
            OscillatingByzantine(Point(1, 1), Point(1, 1))

    def test_anti_gather_mirrors_through_centroid(self):
        p = AntiGatherByzantine()
        dest = p.destination(0, POSITIONS, [1, 2], 0, RNG)
        center = Point(2, 2)  # centroid of the two correct robots
        # Destination lies on the far side of the centroid from (0,0).
        assert (dest - center).dot(Point(0, 0) - center) < 0

    def test_election_thief_camps_then_flees(self):
        p = ElectionThiefByzantine(flee_radius=1.0)
        far = {0: Point(50, 50), 1: Point(0, 0), 2: Point(4, 0)}
        camp = p.destination(0, far, [1, 2], 0, RNG)
        assert camp.distance_to(Point(2, 0)) < 1.0  # near correct centroid
        near = {0: Point(2, 0), 1: Point(1.5, 0), 2: Point(4, 0)}
        flee = p.destination(0, near, [1, 2], 1, RNG)
        assert flee.distance_to(Point(2.75, 0)) > 2.0  # ran away

    def test_election_thief_validation(self):
        with pytest.raises(ValueError):
            ElectionThiefByzantine(flee_radius=0.0)


class TestEngineIntegration:
    def test_byzantine_id_validated(self):
        with pytest.raises(ValueError):
            Simulation(
                WaitFreeGather(),
                generate("random", 4, 0),
                byzantine={9: StationaryByzantine()},
            )

    def test_correct_ids_excludes_byzantine(self):
        sim = Simulation(
            WaitFreeGather(),
            generate("random", 5, 1),
            byzantine={2: StationaryByzantine()},
        )
        assert 2 not in sim.correct_ids()
        assert 2 in sim.live_ids()

    def test_gathering_counts_correct_robots_only(self):
        # Stationary byzantine = crash-equivalent: correct robots gather
        # elsewhere and the run succeeds despite the parked impostor.
        result = Simulation(
            WaitFreeGather(),
            generate("random", 5, 2),
            byzantine={0: StationaryByzantine()},
            seed=3,
            max_rounds=3_000,
        ).run()
        assert result.gathered

    def test_byzantine_survives_against_thief(self):
        result = Simulation(
            WaitFreeGather(),
            generate("random", 4, 3),
            byzantine={0: ElectionThiefByzantine(flee_radius=2.0)},
            scheduler=RoundRobin(),
            seed=5,
            max_rounds=6_000,
            halt_on_bivalent=False,
        ).run()
        assert result.gathered  # the pinned empirical finding of E11

    def test_byzantine_can_also_crash(self):
        from repro.sim import CrashAtRounds

        # Round-robin keeps the run alive long enough for the scheduled
        # crash of the byzantine robot to actually fire.
        result = Simulation(
            WaitFreeGather(),
            generate("random", 5, 4),
            byzantine={0: AntiGatherByzantine()},
            crash_adversary=CrashAtRounds({0: 2}),
            scheduler=RoundRobin(),
            seed=6,
            max_rounds=3_000,
        ).run()
        assert result.gathered
        assert 0 in result.crashed_ids
