"""Unit tests for execution traces."""

from repro.core import ConfigClass, Configuration
from repro.geometry import Point
from repro.sim import RoundRecord, Trace


def _record(i, cls=ConfigClass.MULTIPLE, moved=(0,), crashed=()):
    config = Configuration([Point(0, 0), Point(1, 1)])
    return RoundRecord(
        round_index=i,
        config_before=config,
        config_class=cls,
        active=(0, 1),
        crashed_now=tuple(crashed),
        destinations={},
        config_after=config,
        moved=tuple(moved),
    )


class TestTrace:
    def test_append_and_len(self):
        t = Trace()
        t.append(_record(0))
        t.append(_record(1))
        assert len(t) == 2

    def test_class_sequence_and_transitions(self):
        t = Trace()
        t.append(_record(0, ConfigClass.ASYMMETRIC))
        t.append(_record(1, ConfigClass.MULTIPLE))
        t.append(_record(2, ConfigClass.MULTIPLE))
        assert t.class_sequence() == [
            ConfigClass.ASYMMETRIC,
            ConfigClass.MULTIPLE,
            ConfigClass.MULTIPLE,
        ]
        assert t.class_transitions() == [
            (ConfigClass.ASYMMETRIC, ConfigClass.MULTIPLE),
            (ConfigClass.MULTIPLE, ConfigClass.MULTIPLE),
        ]

    def test_render_truncation(self):
        t = Trace()
        for i in range(10):
            t.append(_record(i))
        rendered = t.render(limit=3)
        assert "(7 more rounds)" in rendered

    def test_render_no_limit(self):
        t = Trace()
        for i in range(4):
            t.append(_record(i))
        assert "more rounds" not in t.render(limit=None)


class TestRoundRecord:
    def test_summary_fields(self):
        s = _record(3, moved=(1,), crashed=(0,)).summary()
        assert "r   3" in s
        assert "[M]" in s
        assert "moved=1" in s
        assert "crashed=0" in s

    def test_summary_empty_markers(self):
        s = _record(0, moved=(), crashed=()).summary()
        assert "moved=-" in s
        assert "crashed=-" in s


class TestJsonRoundTrip:
    def _real_trace(self):
        from repro.algorithms import WaitFreeGather
        from repro.sim import CrashAtRounds, RoundRobin, Simulation
        from repro.workloads import generate

        sim = Simulation(
            WaitFreeGather(),
            generate("random", 6, 1),
            scheduler=RoundRobin(),
            crash_adversary=CrashAtRounds({2: 1}),
            seed=3,
            record_trace=True,
        )
        return sim.run().trace

    def test_round_trip_preserves_everything(self):
        trace = self._real_trace()
        restored = Trace.from_json(trace.to_json())
        assert len(restored) == len(trace)
        for a, b in zip(trace, restored):
            assert a.round_index == b.round_index
            assert a.config_class is b.config_class
            assert a.active == b.active
            assert a.crashed_now == b.crashed_now
            assert a.moved == b.moved
            assert list(a.config_before.points) == list(b.config_before.points)
            assert list(a.config_after.points) == list(b.config_after.points)
            assert a.destinations == b.destinations

    def test_class_transitions_survive_round_trip(self):
        trace = self._real_trace()
        restored = Trace.from_json(trace.to_json(indent=2))
        assert restored.class_transitions() == trace.class_transitions()

    def test_bad_payload_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            Trace.from_json('{"something": "else"}')
        with pytest.raises(ValueError):
            Trace.from_json("[1, 2, 3]")
