"""Unit tests for the Robot record."""

from repro.geometry import Frame, Point
from repro.sim import Robot


class TestLifecycle:
    def test_starts_live(self):
        r = Robot(robot_id=0, position=Point(1, 2))
        assert r.live and not r.crashed
        assert r.crash_round is None

    def test_crash_is_permanent_and_timestamped(self):
        r = Robot(robot_id=0, position=Point(1, 2))
        r.crash(7)
        assert r.crashed and not r.live
        assert r.crash_round == 7

    def test_double_crash_keeps_first_timestamp(self):
        r = Robot(robot_id=0, position=Point(1, 2))
        r.crash(3)
        r.crash(9)
        assert r.crash_round == 3


class TestFrames:
    def test_anchored_frame_centers_on_position(self):
        r = Robot(
            robot_id=1,
            position=Point(4, -2),
            frame=Frame(Point(0, 0), theta=0.5, scale=2.0),
        )
        anchored = r.anchored_frame()
        assert anchored.to_local(r.position).close_to(Point(0, 0))
        # Rotation and scale are the robot's own, unchanged.
        assert anchored.theta == 0.5
        assert anchored.scale == 2.0

    def test_distance_accumulator_defaults_zero(self):
        r = Robot(robot_id=2, position=Point(0, 0))
        assert r.distance_travelled == 0.0
