"""Unit tests for the unified LCM engine's activation models and the
new scheduler/movement matrix axes.

The headline regression here is async collusion: the legacy CORDA
engine resolved moves through the identity-blind ``endpoint`` and never
called ``begin_round``, silently degrading :class:`CollusiveStop` to
rigid movement.  The unified MOVE phase threads the identity hooks
through both activation models, so a colluded async run must actually
stack robots.
"""

import pytest

from repro.algorithms import WaitFreeGather
from repro.geometry import DEFAULT_TOLERANCE, Point
from repro.sim import (
    AsyncSimulation,
    AtomicActivation,
    CollusiveStop,
    FullySynchronous,
    PendingMove,
    PerRobotSpeed,
    PhasedActivation,
    PoissonScheduler,
    Simulation,
    component_rng,
)

ASYM = [Point(0, 0), Point(5, 0.3), Point(2.1, 4.4), Point(1.2, 1.9), Point(4.0, 3.1)]


class LeftOfLeftmost:
    """Stub algorithm: one unit left of the leftmost visible point.

    For collinear robots at ``(1, 0), (2, 0), (3, 0)`` in identity
    frames this is the *same global point* (the origin) for every
    robot, putting all three moves on a common ray — the collusion
    precondition.
    """

    name = "left-of-leftmost"

    def compute(self, config, me):
        leftmost = min(config.points)
        return Point(leftmost.x - 1.0, leftmost.y)


class TestActivationModels:
    def test_atomic_holds_no_pending(self):
        model = AtomicActivation()
        assert model.name == "atom"
        assert not model.phased
        model.on_crash(0)  # no-op, never raises
        assert model.pending == {}

    def test_phased_drops_pending_on_crash(self):
        model = PhasedActivation()
        assert model.name == "async"
        assert model.phased
        model.pending[3] = PendingMove(Point(1.0, 1.0), 0)
        model.on_crash(3)
        model.on_crash(4)  # absent id is fine
        assert model.pending == {}

    def test_divergent_pending(self):
        model = PhasedActivation()
        spot = Point(1.0, 1.0)
        model.pending[0] = PendingMove(Point(1.0, 1.0), 0)
        assert not model.divergent_pending(spot, [0], DEFAULT_TOLERANCE)
        model.pending[1] = PendingMove(Point(9.0, 9.0), 0)
        assert model.divergent_pending(spot, [0, 1], DEFAULT_TOLERANCE)
        # A dead robot's stale destination no longer matters.
        assert not model.divergent_pending(spot, [0], DEFAULT_TOLERANCE)

    def test_simulation_defaults_to_atom(self):
        sim = Simulation(WaitFreeGather(), ASYM, seed=1)
        assert sim.activation.name == "atom"
        assert AsyncSimulation(WaitFreeGather(), ASYM, seed=1).activation.name == "async"

    def test_explicit_phased_activation_equals_async_wrapper(self):
        """AsyncSimulation is pure sugar over activation=PhasedActivation."""
        direct = Simulation(
            WaitFreeGather(),
            ASYM,
            activation=PhasedActivation(),
            fairness_bound=64,
            max_rounds=100_000,
            seed=7,
        ).run()
        wrapped = AsyncSimulation(WaitFreeGather(), ASYM, seed=7).run()
        assert direct.verdict == wrapped.verdict
        assert direct.rounds == wrapped.rounds
        assert direct.final_positions == wrapped.final_positions


class TestAsyncCollusionRegression:
    def test_collusive_stop_stacks_async_robots(self):
        """The satellite bug: CollusiveStop must collude under ASYNC."""
        movement = CollusiveStop(0.2)
        sim = AsyncSimulation(
            LeftOfLeftmost(),
            [Point(1.0, 0.0), Point(2.0, 0.0), Point(3.0, 0.0)],
            scheduler=FullySynchronous(),
            movement=movement,
            frames="identity",
            seed=0,
        )
        sim.step()  # all robots LOOK: common destination (0, 0)
        assert {p.destination for p in sim.pending.values()} == {Point(0.0, 0.0)}
        sim.step()  # all robots MOVE: the adversary stacks them
        stop = Point(0.8, 0.0)  # most-advanced mover's delta-stop
        assert set(sim.positions().values()) == {stop}

    def test_collusive_stop_stacks_atom_robots(self):
        """Same attack under ATOM — the two engines share the MOVE phase."""
        sim = Simulation(
            LeftOfLeftmost(),
            [Point(1.0, 0.0), Point(2.0, 0.0), Point(3.0, 0.0)],
            movement=CollusiveStop(0.2),
            frames="identity",
            seed=0,
        )
        sim.step()
        assert set(sim.positions().values()) == {Point(0.8, 0.0)}

    def test_async_collusion_differs_from_rigid(self):
        """Before the fix both runs were identical (collusion dropped)."""
        def final(movement):
            sim = AsyncSimulation(
                LeftOfLeftmost(),
                [Point(1.0, 0.0), Point(2.0, 0.0), Point(3.0, 0.0)],
                scheduler=FullySynchronous(),
                movement=movement,
                frames="identity",
                seed=0,
                max_ticks=2,
            )
            sim.run()
            return set(sim.positions().values())

        assert final(CollusiveStop(0.2)) != final(None)  # None -> rigid


class TestPerRobotSpeed:
    def test_validation(self):
        with pytest.raises(ValueError):
            PerRobotSpeed(())
        with pytest.raises(ValueError):
            PerRobotSpeed((1.0, 0.0))

    def test_speeds_cycle_over_ids(self):
        model = PerRobotSpeed((1.0, 0.25))
        assert model.speed_of(0) == 1.0
        assert model.speed_of(1) == 0.25
        assert model.speed_of(2) == 1.0

    def test_endpoint_for_caps_at_own_speed(self):
        model = PerRobotSpeed((1.0, 0.25))
        origin, dest = Point(0.0, 0.0), Point(10.0, 0.0)
        assert model.endpoint_for(0, origin, dest) == Point(1.0, 0.0)
        assert model.endpoint_for(1, origin, dest) == Point(0.25, 0.0)
        # Within reach: arrives bitwise.
        assert model.endpoint_for(1, Point(9.9, 0.0), dest) == dest

    def test_identity_blind_fallback_uses_slowest(self):
        model = PerRobotSpeed((1.0, 0.25))
        rng = component_rng(0, "move")
        assert model.endpoint(Point(0.0, 0.0), Point(10.0, 0.0), rng) == Point(0.25, 0.0)

    def test_gathers_on_both_activation_models(self):
        movement = PerRobotSpeed((1.0, 0.25, 0.05))
        atom = Simulation(
            WaitFreeGather(), ASYM, movement=movement, seed=3, max_rounds=100_000
        ).run()
        assert atom.gathered
        phased = AsyncSimulation(
            WaitFreeGather(), ASYM, movement=PerRobotSpeed((1.0, 0.25, 0.05)), seed=3
        ).run()
        assert phased.gathered


class TestPoissonScheduler:
    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonScheduler(0.0)

    def test_deterministic_given_rng(self):
        def schedule(seed):
            sched = PoissonScheduler(0.5)
            rng = component_rng(seed, "sched")
            return [tuple(sorted(sched.select(i, [0, 1, 2], rng))) for i in range(50)]

        assert schedule(1) == schedule(1)
        assert schedule(1) != schedule(2)

    def test_gaps_are_not_lockstep(self):
        """Exponential clocks must produce non-FSYNC activation patterns."""
        sched = PoissonScheduler(0.5)
        rng = component_rng(0, "sched")
        rounds = [frozenset(sched.select(i, [0, 1, 2], rng)) for i in range(40)]
        assert len(set(rounds)) > 1

    def test_gathers_on_both_activation_models(self):
        atom = Simulation(
            WaitFreeGather(),
            ASYM,
            scheduler=PoissonScheduler(0.5),
            seed=5,
            max_rounds=100_000,
        ).run()
        assert atom.gathered
        phased = AsyncSimulation(
            WaitFreeGather(), ASYM, scheduler=PoissonScheduler(0.5), seed=5
        ).run()
        assert phased.gathered


class TestUnifiedPredicates:
    def test_phased_gathered_uses_effective_view(self):
        """The termination predicate is shared: the async side now judges
        stability through correct_ids + the engine view, like ATOM."""
        sim = AsyncSimulation(WaitFreeGather(), ASYM, seed=1)
        result = sim.run()
        assert result.gathered
        assert result.gathering_point is not None

    def test_phased_stall_guarded_by_pending(self):
        """A half-finished cycle is never reported as a stalled fixpoint."""
        sim = AsyncSimulation(WaitFreeGather(), ASYM, seed=1)
        sim.step()  # everyone holds a pending move now
        assert sim.pending
        assert not sim._stalled_now(sim.configuration())

    def test_limited_visibility_threads_through_phased_look(self):
        """A radius that disconnects the team keeps it apart under ASYNC."""
        far = [Point(0.0, 0.0), Point(0.5, 0.0), Point(100.0, 0.0), Point(100.5, 0.0)]
        sim = AsyncSimulation(
            WaitFreeGather(), far, seed=2, visibility=5.0, max_ticks=2_000
        )
        result = sim.run()
        assert not result.gathered
        xs = sorted(p.x for p in sim.positions().values())
        assert xs[1] < 50.0 < xs[2]  # two clusters never merged
