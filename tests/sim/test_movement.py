"""Unit tests for movement models (the delta guarantee)."""

import math
import random

import pytest

from repro.geometry import Point
from repro.sim import AdversarialStop, CollusiveStop, RandomStop, RigidMovement

O = Point(0.0, 0.0)
RNG = random.Random(0)


class TestRigid:
    def test_always_arrives(self):
        m = RigidMovement()
        assert m.endpoint(O, Point(100, 0), RNG) == Point(100, 0)


class TestAdversarialStop:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdversarialStop(0.0)

    def test_short_moves_complete(self):
        m = AdversarialStop(1.0)
        assert m.endpoint(O, Point(0.5, 0), RNG) == Point(0.5, 0)

    def test_long_moves_cut_at_delta(self):
        m = AdversarialStop(1.0)
        end = m.endpoint(O, Point(10, 0), RNG)
        assert end.close_to(Point(1, 0))

    def test_cut_is_along_the_segment(self):
        m = AdversarialStop(1.0)
        end = m.endpoint(O, Point(3, 4), RNG)
        assert math.isclose(end.norm(), 1.0)
        assert math.isclose(end.y / end.x, 4.0 / 3.0)


class TestRandomStop:
    def test_progress_at_least_delta(self):
        m = RandomStop(0.5)
        rng = random.Random(7)
        for _ in range(50):
            end = m.endpoint(O, Point(10, 0), rng)
            assert end.x >= 0.5 - 1e-12
            assert end.x <= 10.0

    def test_short_moves_complete(self):
        m = RandomStop(0.5)
        assert m.endpoint(O, Point(0.3, 0), RNG) == Point(0.3, 0)


class TestCollusiveStop:
    def test_stacks_co_ray_movers(self):
        m = CollusiveStop(1.0)
        dest = Point(0, 0)
        moves = {
            0: (Point(4, 0), dest),
            1: (Point(6, 0), dest),
            2: (Point(0, 5), dest),  # different ray: unaffected
        }
        m.begin_round(moves)
        e0 = m.endpoint_for(0, *moves[0])
        e1 = m.endpoint_for(1, *moves[1])
        e2 = m.endpoint_for(2, *moves[2])
        assert e0 == e1  # stacked bitwise
        assert e0.close_to(Point(3, 0))  # least-advanced mover walks delta
        assert e2 == dest

    def test_progress_guarantee_respected(self):
        m = CollusiveStop(1.0)
        dest = Point(0, 0)
        moves = {0: (Point(2, 0), dest), 1: (Point(9, 0), dest)}
        m.begin_round(moves)
        for rid, (origin, d) in moves.items():
            end = m.endpoint_for(rid, origin, d)
            assert origin.distance_to(end) >= 1.0 - 1e-12

    def test_short_moves_arrive(self):
        m = CollusiveStop(1.0)
        dest = Point(0, 0)
        moves = {0: (Point(0.5, 0), dest), 1: (Point(6, 0), dest)}
        m.begin_round(moves)
        assert m.endpoint_for(0, Point(0.5, 0), dest) == dest
        # Only one long mover remains on the ray: no group, arrives.
        assert m.endpoint_for(1, Point(6, 0), dest) == dest

    def test_singleton_groups_arrive(self):
        m = CollusiveStop(1.0)
        moves = {0: (Point(5, 0), Point(0, 0)), 1: (Point(0, 7), Point(1, 1))}
        m.begin_round(moves)
        assert m.endpoint_for(0, Point(5, 0), Point(0, 0)) == Point(0, 0)
        assert m.endpoint_for(1, Point(0, 7), Point(1, 1)) == Point(1, 1)
