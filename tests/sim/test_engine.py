"""Unit tests for the ATOM round engine."""

import pytest

from repro.algorithms import CentroidConvergence, SequentialGather, WaitFreeGather
from repro.core import ConfigClass
from repro.geometry import Point
from repro.sim import (
    CrashAtRounds,
    FullySynchronous,
    RoundRobin,
    Simulation,
    Verdict,
)

SQUARE = [Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4)]
ASYM = [Point(0, 0), Point(5, 0.3), Point(2.1, 4.4), Point(1.2, 1.9), Point(4.0, 3.1)]


class TestConstruction:
    def test_needs_robots(self):
        with pytest.raises(ValueError):
            Simulation(WaitFreeGather(), [])

    def test_frames_validated(self):
        with pytest.raises(ValueError):
            Simulation(WaitFreeGather(), SQUARE, frames="mirrored")

    def test_deterministic_in_seed(self):
        r1 = Simulation(WaitFreeGather(), ASYM, seed=5).run()
        r2 = Simulation(WaitFreeGather(), ASYM, seed=5).run()
        assert r1.rounds == r2.rounds
        assert r1.final_positions == r2.final_positions

    def test_different_seeds_may_differ(self):
        # Not a hard guarantee per-seed, but frames differ so local
        # computations differ; at minimum the run must still gather.
        r = Simulation(WaitFreeGather(), ASYM, seed=99).run()
        assert r.gathered


class TestRoundSemantics:
    def test_atomicity_all_active_see_same_snapshot(self):
        # Under FSYNC from a QR square all robots must compute the SAME
        # center even though each computes in its own random frame.
        sim = Simulation(WaitFreeGather(), SQUARE, seed=3)
        record = sim.step()
        destinations = list(record.destinations.values())
        for d in destinations[1:]:
            assert d.close_to(destinations[0], sim.tol)

    def test_inactive_robots_do_not_move(self):
        sim = Simulation(
            WaitFreeGather(), ASYM, scheduler=RoundRobin(), seed=1
        )
        before = sim.positions()
        record = sim.step()
        moved = set(record.moved)
        for rid, pos in sim.positions().items():
            if rid not in moved:
                assert pos == before[rid]

    def test_crashed_robot_never_activated(self):
        sim = Simulation(
            WaitFreeGather(),
            ASYM,
            crash_adversary=CrashAtRounds({0: 0}),
            seed=2,
        )
        for _ in range(6):
            record = sim.step()
            assert 0 not in record.active
        assert 0 in sim.crashed_ids()

    def test_crashed_robot_still_visible(self):
        sim = Simulation(
            WaitFreeGather(),
            ASYM,
            crash_adversary=CrashAtRounds({0: 0}),
            seed=2,
        )
        sim.step()
        assert len(sim.configuration().points) == len(ASYM)

    def test_observer_called_every_round(self):
        calls = []
        sim = Simulation(WaitFreeGather(), ASYM, seed=1)
        sim.add_observer(lambda record: calls.append(record.round_index))
        sim.step()
        sim.step()
        assert calls == [0, 1]


class TestVerdicts:
    def test_gathered_fault_free(self):
        result = Simulation(WaitFreeGather(), ASYM, seed=0).run()
        assert result.verdict == Verdict.GATHERED
        assert result.gathering_point is not None

    def test_gathered_with_crashes_excludes_dead(self):
        result = Simulation(
            WaitFreeGather(),
            ASYM,
            crash_adversary=CrashAtRounds({1: 0, 3: 2}),
            seed=4,
        ).run()
        assert result.gathered
        live_positions = [result.final_positions[r] for r in result.live_ids]
        for p in live_positions[1:]:
            assert p.close_to(live_positions[0])

    def test_bivalent_start_impossible(self):
        biv = [Point(0, 0)] * 2 + [Point(3, 3)] * 2
        result = Simulation(WaitFreeGather(), biv, seed=0).run()
        assert result.verdict == Verdict.IMPOSSIBLE
        assert result.rounds == 0

    def test_halt_on_bivalent_off_keeps_running(self):
        biv = [Point(0, 0)] * 2 + [Point(3, 3)] * 2
        result = Simulation(
            CentroidConvergence(), biv, seed=0, halt_on_bivalent=False,
            max_rounds=50,
        ).run()
        assert result.verdict != Verdict.IMPOSSIBLE

    def test_stalled_detection(self):
        # Sequential gathering with its designated mover crashed is a
        # fixpoint: the engine must report a stall, not spin.
        pts = [Point(0, 0), Point(0, 0), Point(1, 0), Point(5, 5)]
        # mover will be the robot at (1,0) (closest to the max point).
        result = Simulation(
            SequentialGather(),
            pts,
            crash_adversary=CrashAtRounds({2: 0}),
            seed=0,
            max_rounds=500,
        ).run()
        assert result.verdict == Verdict.STALLED
        assert result.rounds < 100

    def test_max_rounds_respected(self):
        result = Simulation(
            CentroidConvergence(),
            [Point(0, 0)] * 2 + [Point(3, 3)] * 2,
            seed=0,
            halt_on_bivalent=False,
            max_rounds=7,
            scheduler=RoundRobin(),
        ).run()
        assert result.rounds <= 7

    def test_initial_class_recorded(self):
        result = Simulation(WaitFreeGather(), SQUARE, seed=1).run()
        assert result.initial_class is ConfigClass.QUASI_REGULAR

    def test_total_distance_positive_when_moving(self):
        result = Simulation(WaitFreeGather(), ASYM, seed=1).run()
        assert result.total_distance > 0.0


class TestTrace:
    def test_trace_recorded_when_enabled(self):
        sim = Simulation(WaitFreeGather(), ASYM, seed=1, record_trace=True)
        result = sim.run()
        assert result.trace is not None
        assert len(result.trace) == result.rounds
        rendered = result.trace.render()
        assert "r   0" in rendered

    def test_trace_off_by_default(self):
        result = Simulation(WaitFreeGather(), ASYM, seed=1).run()
        assert result.trace is None

    def test_identity_frames_supported(self):
        result = Simulation(
            WaitFreeGather(), ASYM, frames="identity", seed=1
        ).run()
        assert result.gathered
