"""Unit tests for the assumption-ablation knobs (visibility, chirality)."""

import pytest

from repro.algorithms import WaitFreeGather
from repro.geometry import Frame, Point
from repro.sim import RandomSubset, RoundRobin, Simulation
from repro.workloads import generate


class TestMirroredFrames:
    def test_mirror_roundtrip(self):
        f = Frame(Point(1, 2), theta=0.9, scale=3.0, mirror=True)
        p = Point(-4.4, 7.7)
        assert f.to_global(f.to_local(p)).close_to(p)

    def test_mirrored_flips_handedness(self):
        import math

        from repro.geometry import clockwise_angle

        f = Frame(Point(0, 0), theta=0.0, scale=1.0).mirrored()
        a = clockwise_angle(Point(1, 0), Point(0, 0), Point(0, -1))
        b = clockwise_angle(
            f.to_local(Point(1, 0)), f.to_local(Point(0, 0)),
            f.to_local(Point(0, -1)),
        )
        assert abs(a + b - 2 * math.pi) < 1e-9

    def test_mirrored_twice_is_identity_handedness(self):
        f = Frame(Point(0, 0), theta=0.4, scale=2.0)
        assert f.mirrored().mirrored() == f

    def test_engine_validates_ids(self):
        with pytest.raises(ValueError):
            Simulation(
                WaitFreeGather(), generate("random", 4, 0), mirrored={7}
            )

    def test_mixed_handedness_still_gathers(self):
        result = Simulation(
            WaitFreeGather(),
            generate("unsafe-ray", 8, 1),
            scheduler=RoundRobin(),
            mirrored={0, 3, 5},
            seed=2,
            max_rounds=6_000,
        ).run()
        assert result.gathered

    def test_wholly_mirrored_world_matches_plain(self):
        pts = generate("random", 6, 3)
        plain = Simulation(
            WaitFreeGather(), pts, frames="identity", seed=1,
        ).run()
        mirrored = Simulation(
            WaitFreeGather(), pts, frames="identity",
            mirrored=set(range(6)), seed=1,
        ).run()
        assert plain.rounds == mirrored.rounds
        assert plain.gathering_point.distance_to(
            mirrored.gathering_point
        ) < 1e-6


class TestLimitedVisibility:
    def test_radius_validated(self):
        with pytest.raises(ValueError):
            Simulation(
                WaitFreeGather(), generate("random", 4, 0), visibility=0.0
            )

    def test_generous_radius_behaves_like_unlimited(self):
        pts = generate("random", 6, 2)
        unlimited = Simulation(WaitFreeGather(), pts, seed=1).run()
        wide = Simulation(
            WaitFreeGather(), pts, visibility=100.0, seed=1
        ).run()
        assert wide.gathered
        assert wide.rounds == unlimited.rounds

    def test_disconnected_components_do_not_gather_globally(self):
        # Two clusters far beyond each other's horizon: each contracts
        # on its own; global gathering is impossible.
        pts = [
            Point(0.0, 0.0), Point(1.0, 0.0), Point(0.0, 1.0),
            Point(50.0, 50.0), Point(51.0, 50.0), Point(50.0, 51.0),
        ]
        result = Simulation(
            WaitFreeGather(),
            pts,
            scheduler=RandomSubset(0.6),
            visibility=5.0,
            seed=3,
            max_rounds=500,
            halt_on_bivalent=False,
        ).run()
        assert not result.gathered
        # Each trio must still have contracted to a local stack.
        final = list(result.final_positions.values())
        left = [p for p in final if p.x < 25]
        right = [p for p in final if p.x >= 25]
        assert len(left) == 3 and len(right) == 3
        assert max(p.distance_to(left[0]) for p in left) < 1e-6
        assert max(p.distance_to(right[0]) for p in right) < 1e-6

    def test_balanced_components_form_global_bivalent(self):
        pts = [
            Point(0.0, 0.0), Point(1.0, 0.0), Point(0.0, 1.0),
            Point(50.0, 50.0), Point(51.0, 50.0), Point(50.0, 51.0),
        ]
        result = Simulation(
            WaitFreeGather(),
            pts,
            visibility=5.0,
            seed=3,
            max_rounds=500,
        ).run()
        # With halt_on_bivalent on (default), the engine reports the
        # moment the two local stacks balance into B.
        assert result.verdict == "impossible"


class TestSensorNoise:
    def test_noise_validated(self):
        with pytest.raises(ValueError):
            Simulation(
                WaitFreeGather(), generate("random", 4, 0), sensor_noise=-1.0
            )

    def test_zero_noise_unchanged(self):
        pts = generate("random", 6, 1)
        a = Simulation(WaitFreeGather(), pts, seed=2).run()
        b = Simulation(WaitFreeGather(), pts, seed=2, sensor_noise=0.0).run()
        assert a.rounds == b.rounds
        assert a.final_positions == b.final_positions

    def test_noisy_runs_still_gather(self):
        for seed in range(3):
            result = Simulation(
                WaitFreeGather(),
                generate("random", 7, seed),
                scheduler=RandomSubset(0.6),
                sensor_noise=0.1,
                seed=seed,
                max_rounds=5_000,
            ).run()
            assert result.gathered, f"seed {seed}: {result.verdict}"

    def test_gathered_means_within_resolution(self):
        result = Simulation(
            WaitFreeGather(),
            generate("random", 6, 4),
            sensor_noise=0.2,
            seed=1,
            max_rounds=5_000,
        ).run()
        assert result.gathered
        live = [result.final_positions[r] for r in result.live_ids]
        diameter = max(
            a.distance_to(b) for a in live for b in live
        )
        assert diameter <= 2 * 2.1 * 0.2 + 1e-9

    def test_local_bivalent_view_does_not_end_the_run(self):
        # Two pairs of robots plus noise can look bivalent to one
        # observer for a round; the run must continue, not abort.
        pts = [
            Point(0.0, 0.0), Point(0.3, 0.0),
            Point(8.0, 8.0), Point(8.3, 8.0),
        ]
        result = Simulation(
            WaitFreeGather(),
            pts,
            sensor_noise=0.2,
            seed=5,
            max_rounds=5_000,
        ).run()
        # This configuration is one merge away from bivalent at the
        # noisy resolution; whatever the ending, it must not be an
        # *algorithm-raised* abort at round 0 with exact positions in a
        # perfectly solvable state.
        assert result.verdict in ("gathered", "impossible", "max-rounds")
        if result.verdict == "impossible":
            # Only acceptable if the exact configuration truly became
            # bivalent (two balanced stacks), which the engine verifies
            # with the exact tolerance.
            from repro.core import classify as _classify
            from repro.core import Configuration as _Cfg

            final = _Cfg(list(result.final_positions.values()))
            assert _classify(final).value == "B"
