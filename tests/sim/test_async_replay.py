"""Replay + differential verification for the ASYNC (CORDA) engine.

The ATOM replay contract (bit-identical re-execution from the embedded
scenario) extends to the tick engine: ``Scenario.engine`` selects the
execution model, ``TraceMeta.engine`` records it, and
``build_simulation`` dispatches on it — so an archived ASYNC trace
replays through exactly the code path that recorded it.
"""

import pytest

from repro.experiments.runner import Scenario, build_simulation, run_scenario
from repro.geometry import kernels
from repro.sim import Trace
from repro.sim.async_engine import AsyncSimulation
from repro.sim.replay import (
    compare_traces,
    differential_check,
    load_trace,
    replay_trace,
    save_trace,
)
from repro.sim.trace import TraceMeta

#: n < KERNEL_MIN_N bypasses the vectorized kernels on both backends,
#: so ASYNC executions are bitwise backend-identical by construction.
ASYNC_SMALL = Scenario(
    workload="asymmetric",
    n=6,
    f=2,
    scheduler="round-robin",
    crashes="after-move",
    movement="rigid",
    max_rounds=2_000,
    engine="async",
)


def recorded_trace(scenario=ASYNC_SMALL, seed=3) -> Trace:
    result = run_scenario(scenario, seed, record_trace=True)
    assert result.trace is not None and result.trace.meta is not None
    return result.trace


class TestEngineDispatch:
    def test_async_scenario_builds_async_engine(self):
        sim = build_simulation(ASYNC_SMALL, 3)
        assert isinstance(sim, AsyncSimulation)
        assert sim.max_ticks == ASYNC_SMALL.max_rounds

    def test_unknown_engine_rejected(self):
        bad = Scenario(workload="random", n=4, engine="warp")
        with pytest.raises(ValueError, match="warp"):
            build_simulation(bad, 0)

    def test_engine_field_round_trips_through_scenario_dict(self):
        assert Scenario.from_dict(ASYNC_SMALL.to_dict()) == ASYNC_SMALL

    def test_meta_engine_defaults_to_atom_for_old_archives(self):
        meta = TraceMeta.from_dict(
            {
                "scenario": None,
                "seed": None,
                "engine_seed": 1,
                "backend": "python",
                "package_version": "1.0.0",
                "tolerance": None,
            }
        )
        assert meta.engine == "atom"


class TestAsyncTraceRecording:
    def test_trace_records_every_tick_with_async_meta(self):
        result = run_scenario(ASYNC_SMALL, 3, record_trace=True)
        assert result.trace.meta.engine == "async"
        assert Scenario.from_dict(result.trace.meta.scenario) == ASYNC_SMALL
        assert len(result.trace) == result.rounds

    def test_trace_json_round_trips_exactly(self):
        trace = recorded_trace()
        restored = Trace.from_json(trace.to_json())
        assert restored.meta == trace.meta
        assert restored.meta.engine == "async"
        assert compare_traces(trace, restored) is None

    def test_no_trace_without_record_flag(self):
        result = run_scenario(ASYNC_SMALL, 3)
        assert result.trace is None


class TestAsyncReplay:
    def test_replay_is_bit_identical(self):
        trace = recorded_trace()
        report = replay_trace(trace)
        assert report.ok, report.describe()
        assert report.rounds_compared == len(trace)

    def test_replay_is_backend_independent(self):
        trace = recorded_trace()
        for backend in kernels.available_backends():
            report = replay_trace(trace, backend=backend)
            assert report.ok, report.describe()

    def test_saved_trace_replays_from_disk(self, tmp_path):
        path = str(tmp_path / "async.json")
        save_trace(recorded_trace(), path)
        trace = load_trace(path)
        assert trace.meta.engine == "async"
        report = replay_trace(trace, path=path)
        assert report.ok, report.describe()


class TestAsyncDifferential:
    @pytest.mark.skipif(
        "numpy" not in kernels.available_backends(),
        reason="differential check needs both backends",
    )
    def test_backends_agree_in_subprocesses(self):
        report = differential_check(ASYNC_SMALL, 3)
        assert report.ok, report.describe()
