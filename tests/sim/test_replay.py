"""Trace replay and differential verification (`repro.sim.replay`)."""

import json
import os

import pytest

from repro.experiments.runner import Scenario, run_batch, run_scenario
from repro.geometry import kernels
from repro.sim import Trace
from repro.sim.replay import (
    compare_traces,
    differential_check,
    load_trace,
    replay_trace,
    save_trace,
)

#: Small-team scenario: n < KERNEL_MIN_N bypasses the vectorized kernels
#: on both backends, so executions are bitwise backend-identical by
#: construction — the right property for replay fixtures.
SMALL = Scenario(
    workload="asymmetric",
    n=6,
    algorithm="wait-free-gather",
    scheduler="random",
    crashes="random",
    f=2,
    movement="random-stop",
    max_rounds=2_000,
)


def recorded_trace(scenario=SMALL, seed=3) -> Trace:
    result = run_scenario(scenario, seed, record_trace=True)
    assert result.trace is not None and result.trace.meta is not None
    return result.trace


class TestMetaRoundTrip:
    def test_v2_trace_round_trips_exactly(self):
        trace = recorded_trace()
        restored = Trace.from_json(trace.to_json())
        assert restored.meta == trace.meta
        assert compare_traces(trace, restored) is None

    def test_meta_embeds_full_scenario(self):
        trace = recorded_trace()
        meta = trace.meta
        assert Scenario.from_dict(meta.scenario) == SMALL
        assert meta.seed == 3
        assert meta.engine_seed == SMALL.engine_seed(3)
        assert meta.backend in ("python", "numpy")
        assert meta.tolerance is not None

    def test_unknown_scenario_field_rejected(self):
        data = SMALL.to_dict()
        data["future_knob"] = 1
        with pytest.raises(ValueError, match="future_knob"):
            Scenario.from_dict(data)


class TestReplay:
    def test_replay_is_bit_identical(self, tmp_path):
        trace = recorded_trace()
        path = str(tmp_path / "t.json")
        save_trace(trace, path)
        report = replay_trace(load_trace(path), path=path)
        assert report.ok, report.describe()
        assert report.rounds_compared == len(trace)

    def test_replay_bit_identical_on_both_backends(self, tmp_path):
        trace = recorded_trace()
        for backend in kernels.available_backends():
            report = replay_trace(trace, backend=backend)
            assert report.ok, report.describe()

    def test_tampered_position_detected(self, tmp_path):
        trace = recorded_trace()
        data = json.loads(trace.to_json())
        # Above eps_dist, so the Configuration rebuild cannot snap the
        # perturbed coordinate back onto a coincident robot.
        data["records"][1]["after"][2][0] += 1e-6
        bad = Trace.from_json(json.dumps(data))
        report = replay_trace(bad)
        assert not report.ok
        assert report.divergence.field in ("positions-after", "positions-before")
        assert "check --replay" in report.command

    def test_tampered_destination_detected_below_tolerance(self):
        # Destinations are raw points (never cluster-merged), so even a
        # sub-tolerance bit flip must be caught.
        trace = recorded_trace()
        data = json.loads(trace.to_json())
        record = data["records"][0]
        rid = next(iter(record["destinations"]))
        record["destinations"][rid][0] += 1e-12
        report = replay_trace(Trace.from_json(json.dumps(data)))
        assert not report.ok
        assert report.divergence.field == "destinations"
        assert report.divergence.round_index == 0

    def test_truncated_trace_reports_round_count(self):
        trace = recorded_trace()
        data = json.loads(trace.to_json())
        data["records"] = data["records"][:-1]
        report = replay_trace(Trace.from_json(json.dumps(data)))
        assert not report.ok
        assert report.divergence.field == "rounds"

    def test_v1_trace_refused_with_clear_error(self):
        trace = recorded_trace()
        data = json.loads(trace.to_json())
        payload = {"format": "repro-trace-v1", "records": data["records"]}
        legacy = Trace.from_json(json.dumps(payload))
        assert legacy.meta is None
        with pytest.raises(ValueError, match="meta"):
            replay_trace(legacy)


class TestArchiveCorpus:
    def test_failing_seeds_archived_and_replayable(self, tmp_path):
        corpus = str(tmp_path / "corpus")
        # max_rounds too small to gather: every seed fails and is
        # archived as a self-describing v2 trace.
        scenario = Scenario(
            workload="random", n=6, f=2, movement="random-stop", max_rounds=3
        )
        results = run_batch(scenario, range(2), archive_dir=corpus)
        assert all(not r.gathered for r in results)
        archived = sorted(os.listdir(corpus))
        assert len(archived) == 2
        for name in archived:
            trace = load_trace(os.path.join(corpus, name))
            for backend in kernels.available_backends():
                report = replay_trace(trace, backend=backend)
                assert report.ok, report.describe()

    def test_gathered_seeds_not_archived(self, tmp_path):
        corpus = str(tmp_path / "corpus")
        run_batch(SMALL, [3], archive_dir=corpus)
        assert not os.path.exists(corpus) or os.listdir(corpus) == []

    def test_archive_dir_from_environment(self, tmp_path, monkeypatch):
        corpus = str(tmp_path / "env-corpus")
        monkeypatch.setenv("REPRO_ARCHIVE_DIR", corpus)
        scenario = Scenario(workload="random", n=6, max_rounds=2)
        run_batch(scenario, [0])
        assert os.listdir(corpus)


class TestDifferential:
    def test_backends_agree_in_subprocesses(self):
        # One seed through the real subprocess path: each child resolves
        # REPRO_BACKEND from its environment at import time.
        scenario = Scenario(
            workload="random", n=6, f=1, movement="random-stop", max_rounds=500
        )
        report = differential_check(scenario, seed=0)
        assert report.ok, report.describe()
        assert report.rounds[0] == report.rounds[1] > 0

    def test_diff_command_is_minimized(self):
        from repro.sim.replay import diff_command

        command = diff_command(SMALL, seed=7, max_rounds=12)
        assert "--seeds 7" in command
        assert "--max-rounds 12" in command
        assert "--workload asymmetric" in command
