"""Unit tests for the ASYNC (stale-snapshot) engine."""

import pytest

from repro.algorithms import WaitFreeGather
from repro.geometry import Point
from repro.sim import (
    AsyncSimulation,
    CrashAtRounds,
    RandomStop,
    RandomSubset,
    RoundRobin,
)
from repro.workloads import generate

ASYM = [Point(0, 0), Point(5, 0.3), Point(2.1, 4.4), Point(1.2, 1.9), Point(4.0, 3.1)]


class TestConstruction:
    def test_needs_robots(self):
        with pytest.raises(ValueError):
            AsyncSimulation(WaitFreeGather(), [])

    def test_frames_validated(self):
        with pytest.raises(ValueError):
            AsyncSimulation(WaitFreeGather(), ASYM, frames="mirror")

    def test_deterministic(self):
        r1 = AsyncSimulation(WaitFreeGather(), ASYM, seed=5).run()
        r2 = AsyncSimulation(WaitFreeGather(), ASYM, seed=5).run()
        assert r1.rounds == r2.rounds
        assert r1.final_positions == r2.final_positions


class TestPhaseSemantics:
    def test_look_then_move_takes_two_activations(self):
        sim = AsyncSimulation(WaitFreeGather(), ASYM, seed=1)
        before = sim.positions()
        sim.step()  # every robot LOOKs (pending move, no displacement)
        assert sim.positions() == before
        assert len(sim.pending) == len(ASYM)
        sim.step()  # every robot MOVEs
        assert sim.positions() != before
        assert not sim.pending

    def test_crash_cancels_pending_move(self):
        sim = AsyncSimulation(
            WaitFreeGather(),
            ASYM,
            crash_adversary=CrashAtRounds({0: 1}),
            seed=2,
        )
        sim.step()  # robot 0 looked
        assert 0 in sim.pending
        sim.step()  # robot 0 crashes before moving
        assert 0 not in sim.pending
        assert 0 in [r.robot_id for r in sim.robots if r.crashed]

    def test_stale_moves_counted(self):
        # Round-robin: by the time a robot moves, everyone else acted.
        sim = AsyncSimulation(
            WaitFreeGather(), ASYM, scheduler=RoundRobin(), seed=3,
            max_ticks=5_000,
        )
        result = sim.run()
        assert result.gathered
        assert sim.stale_moves > 0


class TestOutcomes:
    def test_gathers_fault_free(self):
        result = AsyncSimulation(WaitFreeGather(), ASYM, seed=1).run()
        assert result.gathered

    def test_gathers_with_crashes_and_interruptions(self):
        for seed in range(3):
            sim = AsyncSimulation(
                WaitFreeGather(),
                generate("random", 7, seed),
                scheduler=RandomSubset(0.4),
                crash_adversary=CrashAtRounds({1: 2, 4: 10}),
                movement=RandomStop(0.05),
                seed=seed,
                max_ticks=50_000,
            )
            result = sim.run()
            assert result.gathered, f"seed {seed}: {result.verdict}"

    def test_bivalent_detected(self):
        biv = [Point(0, 0)] * 2 + [Point(3, 3)] * 2
        result = AsyncSimulation(WaitFreeGather(), biv, seed=0).run()
        assert result.verdict == "impossible"

    def test_gathered_requires_no_divergent_pending_move(self):
        # Manufacture: all robots co-located but one holds a stale move
        # elsewhere; the engine must not declare victory.
        sim = AsyncSimulation(WaitFreeGather(), ASYM, seed=1)
        from repro.sim.async_engine import _Pending

        for robot in sim.robots:
            robot.position = Point(1.0, 1.0)
        sim.pending[0] = _Pending(Point(9.0, 9.0), 0)
        assert sim._gathered_now() is None
        del sim.pending[0]
        assert sim._gathered_now() is not None
