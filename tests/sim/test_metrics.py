"""Unit tests for run metrics and batch summaries."""

import math
import random

import pytest

from repro.algorithms import WaitFreeGather
from repro.geometry import Point, kernels
from repro.sim import Simulation, spread, summarize_runs


class TestSpread:
    def test_empty_and_single(self):
        assert spread([]) == 0.0
        assert spread([Point(1, 1)]) == 0.0

    def test_diameter(self):
        pts = [Point(0, 0), Point(3, 4), Point(1, 1)]
        assert spread(pts) == 5.0

    @pytest.mark.skipif(
        "numpy" not in kernels.available_backends(),
        reason="NumPy not importable in this environment",
    )
    def test_kernel_route_matches_python_fallback(self):
        rng = random.Random(17)
        pts = [
            Point(rng.uniform(-10, 10), rng.uniform(-10, 10))
            for _ in range(64)
        ]
        with kernels.backend("python"):
            reference = spread(pts)
        with kernels.backend("numpy"):
            assert abs(spread(pts) - reference) < 1e-12


class TestSummaries:
    def _results(self):
        asym = [Point(0, 0), Point(5, 0.3), Point(2.1, 4.4), Point(1.2, 1.9)]
        biv = [Point(0, 0)] * 2 + [Point(3, 3)] * 2
        return [
            Simulation(WaitFreeGather(), asym, seed=s).run() for s in range(3)
        ] + [Simulation(WaitFreeGather(), biv, seed=0).run()]

    def test_summarize_counts(self):
        summary = summarize_runs(self._results())
        assert summary.runs == 4
        assert summary.gathered == 3
        assert summary.impossible == 1
        assert summary.stalled == 0
        assert summary.timed_out == 0

    def test_success_rate(self):
        summary = summarize_runs(self._results())
        assert math.isclose(summary.success_rate, 0.75)

    def test_rounds_statistics_over_gathered_only(self):
        summary = summarize_runs(self._results())
        assert summary.mean_rounds_gathered > 0
        assert summary.max_rounds_gathered >= summary.mean_rounds_gathered / 2

    def test_empty_batch(self):
        summary = summarize_runs([])
        assert summary.runs == 0
        assert summary.success_rate == 0.0
        assert math.isnan(summary.mean_rounds_gathered)

    def test_no_gathered_runs_max_rounds_is_none_not_zero(self):
        # A fully failed batch must not be mistakable for instant
        # gathering: the sentinel is None (tables render "-"), never 0.
        biv = [Point(0, 0)] * 2 + [Point(3, 3)] * 2
        results = [Simulation(WaitFreeGather(), biv, seed=0).run()]
        summary = summarize_runs(results)
        assert summary.gathered == 0
        assert summary.max_rounds_gathered is None

    def test_none_max_rounds_renders_as_dash(self):
        from repro.experiments.report import format_cell

        assert format_cell(None) == "-"
