"""Unit tests for the batched structure-of-arrays engine.

The heavy seed-for-seed scalar comparison lives in
``tests/integration/test_batched_equivalence.py``; this module covers
the engine's own contract: constructor validation, determinism, chunk
invariance at the runner level, and the trace restriction.
"""

import pytest

from repro.algorithms import WaitFreeGather
from repro.experiments.runner import (
    DEFAULT_BATCH_SIZE,
    Scenario,
    build_simulation,
    run_batched,
    run_scenario,
)
from repro.geometry import kernels
from repro.sim import BatchedSimulation, Verdict
from repro.workloads import generate

needs_numpy = pytest.mark.skipif(
    "numpy" not in kernels.available_backends(),
    reason="NumPy not importable in this environment",
)


def _algorithms(k):
    return [WaitFreeGather() for _ in range(k)]


def _positions(k, n=6, base_seed=0):
    return [generate("random", n, base_seed + i) for i in range(k)]


class TestConstruction:
    @needs_numpy
    def test_mismatched_robot_counts_rejected(self):
        positions = [generate("random", 5, 1), generate("random", 7, 2)]
        with pytest.raises(ValueError, match="same robot count"):
            BatchedSimulation(_algorithms(2), positions)

    @needs_numpy
    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one sim"):
            BatchedSimulation([], [])

    @needs_numpy
    def test_per_sim_sequences_must_match(self):
        with pytest.raises(ValueError, match="seed per sim"):
            BatchedSimulation(_algorithms(2), _positions(2), seeds=[1])

    def test_numpy_required(self, monkeypatch):
        monkeypatch.setattr(kernels, "_np", None)
        with pytest.raises(RuntimeError, match="NumPy"):
            BatchedSimulation(_algorithms(1), _positions(1))


@needs_numpy
class TestRuns:
    def test_deterministic_in_seeds(self):
        def run():
            sims = BatchedSimulation(
                _algorithms(4), _positions(4), seeds=[11, 12, 13, 14]
            )
            return sims.run_all()

        first, second = run(), run()
        for a, b in zip(first, second):
            assert a.verdict == b.verdict
            assert a.rounds == b.rounds
            assert a.final_positions == b.final_positions
            assert a.classes_seen == b.classes_seen

    def test_every_sim_reaches_a_verdict(self):
        sims = BatchedSimulation(
            _algorithms(5), _positions(5), seeds=list(range(5))
        )
        results = sims.run_all()
        assert len(results) == 5
        for result in results:
            assert result.verdict in {
                Verdict.GATHERED,
                Verdict.STALLED,
                Verdict.IMPOSSIBLE,
                Verdict.MAX_ROUNDS,
            }
            assert result.trace is None

    def test_max_rounds_retires(self):
        sims = BatchedSimulation(
            _algorithms(2), _positions(2), seeds=[1, 2], max_rounds=1
        )
        for result in sims.run_all():
            assert result.rounds <= 1


@needs_numpy
class TestRunnerWiring:
    SCENARIO = Scenario(
        workload="random",
        n=6,
        f=1,
        scheduler="round-robin",
        crashes="after-move",
        movement="rigid",
        max_rounds=2_000,
        engine="batched",
    )

    def test_chunk_composition_is_invisible(self):
        seeds = list(range(9))
        by_1 = run_batched(self.SCENARIO, seeds, batch_size=1)
        by_4 = run_batched(self.SCENARIO, seeds, batch_size=4)
        whole = run_batched(self.SCENARIO, seeds, batch_size=DEFAULT_BATCH_SIZE)
        for a, b, c in zip(by_1, by_4, whole):
            assert a.verdict == b.verdict == c.verdict
            assert a.rounds == b.rounds == c.rounds
            assert a.final_positions == b.final_positions == c.final_positions

    def test_run_scenario_dispatches_to_batched(self):
        single = run_scenario(self.SCENARIO, 3)
        batch = run_batched(self.SCENARIO, [3])[0]
        assert single.verdict == batch.verdict
        assert single.rounds == batch.rounds
        assert single.final_positions == batch.final_positions

    def test_record_trace_rejected(self):
        with pytest.raises(ValueError, match="trace"):
            run_scenario(self.SCENARIO, 0, record_trace=True)

    def test_build_simulation_rejects_batched(self):
        with pytest.raises(ValueError, match="run_batched"):
            build_simulation(self.SCENARIO, 0)

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            run_batched(self.SCENARIO, [0, 1], batch_size=-2)

    def test_label_prefixes_engine(self):
        assert self.SCENARIO.label().startswith("batched/")
