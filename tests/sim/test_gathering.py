"""Unit tests for the GATHERED predicate (Definition 9)."""

from repro.algorithms import CentroidConvergence, WaitFreeGather
from repro.geometry import DEFAULT_TOLERANCE as TOL
from repro.geometry import Point
from repro.sim import gathered_point, is_gathered


class TestGatheredPoint:
    def test_all_live_together(self):
        positions = {0: Point(1, 1), 1: Point(1, 1), 2: Point(5, 5)}
        assert gathered_point(positions, [0, 1], TOL) == Point(1, 1)

    def test_spread_live_robots(self):
        positions = {0: Point(1, 1), 1: Point(2, 2)}
        assert gathered_point(positions, [0, 1], TOL) is None

    def test_no_live_robots(self):
        assert gathered_point({0: Point(0, 0)}, [], TOL) is None

    def test_crashed_robots_ignored(self):
        positions = {0: Point(1, 1), 1: Point(9, 9)}
        assert gathered_point(positions, [0], TOL) == Point(1, 1)


class TestIsGathered:
    def test_definition_9_stability_clause(self):
        # All live robots together AND the algorithm says stay.
        positions = {0: Point(1, 1), 1: Point(1, 1), 2: Point(1, 1)}
        assert is_gathered(positions, [0, 1, 2], WaitFreeGather(), TOL)

    def test_colocated_but_unstable_not_gathered(self):
        # Live robots together, but a crashed robot elsewhere drags the
        # centroid away: for the centroid rule the spot is NOT stable.
        positions = {0: Point(1, 1), 1: Point(1, 1), 2: Point(9, 9)}
        assert not is_gathered(positions, [0, 1], CentroidConvergence(), TOL)

    def test_wait_free_gather_stable_with_crashed_remnant(self):
        # Same layout under the paper's algorithm: the pair is the unique
        # max multiplicity, its instruction is stay => gathered.
        positions = {0: Point(1, 1), 1: Point(1, 1), 2: Point(9, 9)}
        assert is_gathered(positions, [0, 1], WaitFreeGather(), TOL)

    def test_bivalent_refusal_is_not_gathered(self):
        positions = {0: Point(0, 0), 1: Point(0, 0), 2: Point(1, 1), 3: Point(1, 1)}
        assert not is_gathered(positions, [0, 1], WaitFreeGather(), TOL)
