"""Smoke tests: every example script must run to completion.

The examples are user-facing documentation; a broken example is a
broken README promise.  Each is executed in-process with its ``main()``
so failures point at real lines, and stdout is captured to keep test
output clean.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def _load(name):
    path = os.path.join(EXAMPLES_DIR, name)
    spec = importlib.util.spec_from_file_location(name.replace(".py", ""), path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "symmetry_gallery.py",
        "adversarial_schedulers.py",
        "render_run_svg.py",
    ],
)
def test_example_runs(script, capsys, tmp_path, monkeypatch):
    module = _load(script)
    if script == "render_run_svg.py":
        monkeypatch.setattr(module, "OUT", str(tmp_path))
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_crash_tolerance_demo_reduced(capsys, monkeypatch):
    # The full drill takes ~1 min; shrink it for the test run.
    module = _load("crash_tolerance_demo.py")
    monkeypatch.setattr(module, "MISSIONS", 2)
    monkeypatch.setattr(module, "STRATEGIES", ["wait-free-gather", "sequential"])
    module.main()
    out = capsys.readouterr().out
    assert "wait-free-gather" in out
