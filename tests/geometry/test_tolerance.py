"""Unit tests for the tolerance model."""

import math

import pytest

from repro.geometry import DEFAULT_TOLERANCE, Tolerance


class TestValidation:
    def test_default_is_consistent(self):
        t = DEFAULT_TOLERANCE
        assert t.eps_solver < t.eps_dist

    @pytest.mark.parametrize("field", ["eps_dist", "eps_angle", "eps_solver"])
    def test_nonpositive_rejected(self, field):
        kwargs = {field: 0.0}
        with pytest.raises(ValueError):
            Tolerance(**kwargs)

    def test_solver_must_be_below_distance(self):
        with pytest.raises(ValueError):
            Tolerance(eps_dist=1e-12, eps_solver=1e-12)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_TOLERANCE.eps_dist = 1.0  # type: ignore[misc]


class TestScalarPredicates:
    def test_is_zero_band(self, tol):
        assert tol.is_zero(0.0)
        assert tol.is_zero(tol.eps_dist)
        assert not tol.is_zero(2 * tol.eps_dist)

    def test_same_length(self, tol):
        assert tol.same_length(1.0, 1.0 + tol.eps_dist / 2)
        assert not tol.same_length(1.0, 1.0 + 3 * tol.eps_dist)

    def test_is_zero_angle_wraps_full_turn(self, tol):
        assert tol.is_zero_angle(0.0)
        assert tol.is_zero_angle(2 * math.pi)
        assert tol.is_zero_angle(2 * math.pi - tol.eps_angle / 2)
        assert tol.is_zero_angle(-2 * math.pi)
        assert not tol.is_zero_angle(math.pi)

    def test_same_angle_across_wrap(self, tol):
        assert tol.same_angle(0.0, 2 * math.pi)
        assert tol.same_angle(0.1, 0.1 + 2 * math.pi)
        assert not tol.same_angle(0.0, 0.1)


class TestQuantization:
    def test_quantize_length_snaps_to_grid(self, tol):
        q = tol.quantize_length(1.0 + 0.4 * tol.eps_dist)
        assert q == tol.quantize_length(1.0)

    def test_quantize_angle_snaps_to_grid(self, tol):
        q = tol.quantize_angle(0.5 + 0.4 * tol.eps_angle)
        assert q == tol.quantize_angle(0.5)

    def test_quantize_is_idempotent(self, tol):
        v = tol.quantize_length(1.2345)
        assert tol.quantize_length(v) == v
