"""Unit tests for circles and the smallest enclosing circle."""

import math
import random

import pytest

from repro.geometry import Circle, Point, circumcircle, smallest_enclosing_circle

from ..conftest import regular_ngon


class TestCircle:
    def test_contains_closed_disk(self, tol):
        c = Circle(Point(0, 0), 1.0)
        assert c.contains(Point(0.5, 0.5))
        assert c.contains(Point(1.0, 0.0))  # boundary included
        assert not c.contains(Point(1.1, 0.0))

    def test_on_boundary(self):
        c = Circle(Point(0, 0), 1.0)
        assert c.on_boundary(Point(0, 1))
        assert not c.on_boundary(Point(0, 0.5))


class TestCircumcircle:
    def test_right_triangle(self):
        c = circumcircle(Point(0, 0), Point(2, 0), Point(0, 2))
        assert c is not None
        assert c.center.close_to(Point(1, 1))
        assert math.isclose(c.radius, math.sqrt(2))

    def test_collinear_returns_none(self):
        assert circumcircle(Point(0, 0), Point(1, 0), Point(2, 0)) is None

    def test_all_three_on_boundary(self):
        a, b, c = Point(0.3, 1.7), Point(-2.0, 0.4), Point(1.1, -0.9)
        circ = circumcircle(a, b, c)
        assert circ is not None
        for p in (a, b, c):
            assert math.isclose(circ.center.distance_to(p), circ.radius,
                                rel_tol=1e-9)


class TestSmallestEnclosingCircle:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            smallest_enclosing_circle([])

    def test_single_point(self):
        c = smallest_enclosing_circle([Point(3, 4)])
        assert c.center == Point(3, 4)
        assert c.radius == 0.0

    def test_two_points_diameter(self):
        c = smallest_enclosing_circle([Point(0, 0), Point(2, 0)])
        assert c.center.close_to(Point(1, 0))
        assert math.isclose(c.radius, 1.0)

    def test_square(self, unit_square):
        c = smallest_enclosing_circle(unit_square)
        assert c.center.close_to(Point(0.5, 0.5))
        assert math.isclose(c.radius, math.sqrt(2) / 2)

    def test_obtuse_triangle_diameter_of_longest_side(self):
        # For an obtuse triangle the SEC is the circle on the longest side.
        pts = [Point(0, 0), Point(4, 0), Point(1, 0.5)]
        c = smallest_enclosing_circle(pts)
        assert c.center.close_to(Point(2, 0), )
        assert math.isclose(c.radius, 2.0, rel_tol=1e-9)

    def test_regular_polygon_center(self):
        pts = regular_ngon(7, center=Point(2, -1), radius=3.0, phase=0.3)
        c = smallest_enclosing_circle(pts)
        assert c.center.close_to(Point(2, -1), )
        assert math.isclose(c.radius, 3.0, rel_tol=1e-9)

    def test_interior_points_do_not_matter(self):
        pts = regular_ngon(5, radius=2.0)
        with_interior = pts + [Point(0.1, 0.1), Point(-0.3, 0.2)]
        c1 = smallest_enclosing_circle(pts)
        c2 = smallest_enclosing_circle(with_interior)
        assert c1.center.close_to(c2.center)
        assert math.isclose(c1.radius, c2.radius, rel_tol=1e-9)

    def test_covers_all_and_is_minimal_random(self):
        rng = random.Random(7)
        for trial in range(20):
            pts = [
                Point(rng.uniform(-5, 5), rng.uniform(-5, 5))
                for _ in range(rng.randint(2, 15))
            ]
            c = smallest_enclosing_circle(pts)
            # Covers every point.
            assert all(
                c.center.distance_to(p) <= c.radius + 1e-9 for p in pts
            )
            # Minimality via the classic certificate: the SEC is either
            # determined by two antipodal points or by >= 3 boundary
            # points; in both cases no strictly smaller radius covers.
            boundary = [
                p
                for p in pts
                if abs(c.center.distance_to(p) - c.radius) <= 1e-7
            ]
            assert len(boundary) >= 2

    def test_input_order_invariance(self):
        rng = random.Random(3)
        pts = [Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(12)]
        c1 = smallest_enclosing_circle(pts)
        c2 = smallest_enclosing_circle(list(reversed(pts)))
        assert c1.center.close_to(c2.center)
        assert math.isclose(c1.radius, c2.radius, rel_tol=1e-12)
