"""Unit tests for the vectorized kernel backend switch and primitives.

The equivalence sweeps over whole configurations live in
``tests/property/test_prop_kernels.py``; this file checks the backend
plumbing itself and each kernel against a hand-rolled reference, plus a
coarse performance guard so a silent regression to the scalar path
cannot ship unnoticed.
"""

import math
import os
import random
import time

import pytest

from repro.geometry import Point, Tolerance, kernels
from repro.geometry.weber import _weiszfeld_step, sum_of_distances

NUMPY_AVAILABLE = "numpy" in kernels.available_backends()

needs_numpy = pytest.mark.skipif(
    not NUMPY_AVAILABLE, reason="NumPy not importable in this environment"
)


def random_coords(n, seed, scale=10.0):
    rng = random.Random(seed)
    return [
        (rng.uniform(-scale, scale), rng.uniform(-scale, scale))
        for _ in range(n)
    ]


class TestBackendSwitch:
    def test_default_backend_is_python(self):
        # The env-var default must stay "python": the tier-1 suite runs
        # on the reference implementation unless a user opts in.
        assert "python" in kernels.available_backends()
        assert kernels._resolve(os.environ.get("REPRO_BACKEND", "python")) in (
            "python",
            "numpy",
        )

    def test_set_backend_roundtrip(self):
        previous = kernels.set_backend("python")
        try:
            assert kernels.get_backend() == "python"
            assert not kernels.enabled_for(100)
        finally:
            kernels.set_backend(previous)

    def test_backend_context_restores(self):
        before = kernels.get_backend()
        with kernels.backend("python"):
            assert kernels.get_backend() == "python"
        assert kernels.get_backend() == before

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            kernels.set_backend("fortran")

    @needs_numpy
    def test_enabled_for_respects_cutoff(self):
        with kernels.backend("numpy"):
            assert not kernels.enabled_for(kernels.KERNEL_MIN_N - 1)
            assert kernels.enabled_for(kernels.KERNEL_MIN_N)

    def test_python_backend_never_enabled(self):
        with kernels.backend("python"):
            assert not kernels.enabled_for(10_000)


@needs_numpy
class TestNearPairs:
    def brute(self, coords, eps):
        pairs = set()
        for i in range(len(coords)):
            for j in range(i + 1, len(coords)):
                if math.hypot(
                    coords[i][0] - coords[j][0], coords[i][1] - coords[j][1]
                ) <= eps:
                    pairs.add((i, j))
        return pairs

    @pytest.mark.parametrize("n,eps", [(16, 0.5), (64, 1.0), (200, 2.5)])
    def test_matches_brute_force(self, n, eps):
        coords = random_coords(n, seed=n)
        got = {tuple(sorted(p)) for p in kernels.near_pairs(coords, eps)}
        assert got == self.brute(coords, eps)

    def test_grid_path_matches_dense_path(self):
        # Force the sparse grid prefilter by shrinking its cutoff.
        coords = random_coords(300, seed=3, scale=4.0)
        eps = 0.8
        dense = {tuple(sorted(p)) for p in kernels.near_pairs(coords, eps)}
        original = kernels._DENSE_PAIRS_MAX
        kernels._DENSE_PAIRS_MAX = 10
        try:
            sparse = {tuple(sorted(p)) for p in kernels.near_pairs(coords, eps)}
        finally:
            kernels._DENSE_PAIRS_MAX = original
        assert sparse == dense

    def test_coincident_points(self):
        coords = [(1.0, 1.0)] * 5 + [(9.0, 9.0)]
        got = {tuple(sorted(p)) for p in kernels.near_pairs(coords, 1e-9)}
        assert got == {(i, j) for i in range(5) for j in range(i + 1, 5)}


@needs_numpy
class TestUnitVectorSum:
    def test_matches_scalar(self):
        tol = Tolerance()
        coords = random_coords(40, seed=11)
        x, y = 0.3, -0.7
        sx, sy, k = kernels.unit_vector_sum(x, y, coords, tol.eps_dist)
        ref_sx = ref_sy = 0.0
        ref_k = 0
        for px, py in coords:
            d = math.hypot(px - x, py - y)
            if d <= tol.eps_dist:
                ref_k += 1
                continue
            ref_sx += (px - x) / d
            ref_sy += (py - y) / d
        assert k == ref_k
        assert abs(sx - ref_sx) < 1e-9
        assert abs(sy - ref_sy) < 1e-9

    def test_counts_colocated(self):
        coords = [(0.0, 0.0), (0.0, 0.0), (3.0, 4.0)]
        sx, sy, k = kernels.unit_vector_sum(0.0, 0.0, coords, 1e-9)
        assert k == 2
        assert abs(sx - 0.6) < 1e-12 and abs(sy - 0.8) < 1e-12


@needs_numpy
class TestWeiszfeld:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_scalar_iteration(self, seed):
        tol = Tolerance()
        coords = random_coords(25, seed=seed)
        pts = [Point(x, y) for x, y in coords]
        start = (0.1, 0.2)
        bx, by, _ = kernels.weiszfeld(coords, start, tol.eps_solver, 10_000)
        x = Point(*start)
        for _ in range(10_000):
            nxt = _weiszfeld_step(x, pts, tol.eps_solver)
            moved = nxt.distance_to(x)
            x = nxt
            if moved <= tol.eps_solver:
                break
        # Both converge to the same minimizer well below every
        # combinatorial tolerance.
        assert math.hypot(bx - x.x, by - x.y) < 1e-8

    def test_optimal_objective(self):
        tol = Tolerance()
        coords = random_coords(30, seed=7)
        pts = [Point(x, y) for x, y in coords]
        bx, by, _ = kernels.weiszfeld(coords, (0.0, 0.0), tol.eps_solver, 10_000)
        value = sum_of_distances(Point(bx, by), pts)
        # No input point does better (the median is a global minimum).
        assert value <= min(sum_of_distances(p, pts) for p in pts) + 1e-6


@needs_numpy
class TestDistanceSums:
    def test_matches_scalar(self):
        coords = random_coords(50, seed=5)
        pts = [Point(x, y) for x, y in coords]
        sums = kernels.distance_sums(coords[:10], coords)
        for (x, y), got in zip(coords[:10], sums):
            assert abs(got - sum_of_distances(Point(x, y), pts)) < 1e-9


@needs_numpy
class TestViewKernelPerformance:
    def test_batch_views_not_slower_than_scalar_at_256(self):
        """Regression guard: the batch view kernel must stay fast.

        The expected gap at n = 256 is an order of magnitude, so the
        1.5x assertion bound has a huge margin — it only fires when the
        kernel has silently degenerated to per-origin scalar work.
        Best-of-3 timings keep scheduler noise out.
        """
        from repro.core.configuration import Configuration
        from repro.core.views import view_table
        from repro.workloads import generate

        points = generate("random", 256, 42)

        def best_of(backend_name, repeats=3):
            samples = []
            for _ in range(repeats):
                config = Configuration(points)
                start = time.perf_counter()
                with kernels.backend(backend_name):
                    view_table(config)
                samples.append(time.perf_counter() - start)
            return min(samples)

        python_s = best_of("python")
        numpy_s = best_of("numpy")
        assert numpy_s <= python_s * 1.5, (
            f"numpy view kernel took {numpy_s:.4f}s vs "
            f"{python_s:.4f}s pure-python at n=256"
        )


@needs_numpy
class TestPairwiseDiameter:
    def test_matches_scalar(self):
        coords = random_coords(40, seed=11)
        best = 0.0
        for i, (ax, ay) in enumerate(coords):
            for bx, by in coords[i + 1 :]:
                best = max(best, math.hypot(ax - bx, ay - by))
        with kernels.backend("numpy"):
            assert abs(kernels.pairwise_diameter(coords) - best) < 1e-12

    def test_degenerate_inputs(self):
        with kernels.backend("numpy"):
            assert kernels.pairwise_diameter([]) == 0.0
            assert kernels.pairwise_diameter([(1.0, 2.0)]) == 0.0
            assert kernels.pairwise_diameter([(0.0, 0.0), (3.0, 4.0)]) == 5.0

    def test_blocked_path_matches_dense(self):
        # Above _DENSE_PAIRS_MAX the kernel switches to row blocks;
        # both paths must agree exactly on the same input.
        coords = random_coords(kernels._DENSE_PAIRS_MAX + 10, seed=13)
        with kernels.backend("numpy"):
            blocked = kernels.pairwise_diameter(coords)
        dense = max(
            math.hypot(ax - bx, ay - by)
            for i, (ax, ay) in enumerate(coords)
            for bx, by in coords[i + 1 :]
        )
        assert abs(blocked - dense) < 1e-12
