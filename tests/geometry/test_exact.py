"""Exact rational predicates + cross-validation of the tolerant pipeline.

The cross-validation tests are the point of the module: configurations
drawn on coarse rational grids are classified by both the tolerant
(float) pipeline and the exact (Fraction) pipeline, and the answers must
agree — the grid spacing exceeds every tolerance by many orders of
magnitude, so a disagreement is a genuine bug in the tolerant code, not
a quantization accident.
"""

import random
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ConfigClass, Configuration, classify
from repro.geometry import Point
from repro.geometry.exact import (
    all_collinear_exact,
    classify_exact,
    exact_point,
    multiplicities_exact,
    orientation_exact,
    strictly_between_exact,
)

O = exact_point(0, 0)


class TestExactPredicates:
    def test_orientation_signs(self):
        assert orientation_exact(O, exact_point(1, 0), exact_point(2, 1)) == 1
        assert orientation_exact(O, exact_point(1, 0), exact_point(2, -1)) == -1
        assert orientation_exact(O, exact_point(1, 0), exact_point(2, 0)) == 0

    def test_orientation_exactness_beats_floats(self):
        # A triple that float cross products get wrong: tiny rational
        # perturbation far below double precision at this magnitude.
        a = exact_point(0, 0)
        b = exact_point(Fraction(10**18), Fraction(10**18))
        c = exact_point(Fraction(10**18) * 2, Fraction(10**18) * 2 + 1)
        assert orientation_exact(a, b, c) == 1  # strictly CCW, exactly

    def test_collinear_exact(self):
        pts = [exact_point(i, 2 * i) for i in range(5)]
        assert all_collinear_exact(pts)
        assert not all_collinear_exact(pts + [exact_point(1, 3)])

    def test_between_exact(self):
        a, b = O, exact_point(4, 0)
        assert strictly_between_exact(a, b, exact_point(1, 0))
        assert not strictly_between_exact(a, b, a)
        assert not strictly_between_exact(a, b, exact_point(5, 0))
        assert not strictly_between_exact(a, b, exact_point(2, 1))
        assert strictly_between_exact(a, b, exact_point(Fraction(1, 3), 0))

    def test_multiplicities(self):
        pts = [O, O, exact_point(1, 1)]
        assert multiplicities_exact(pts) == {O: 2, exact_point(1, 1): 1}


class TestExactClassification:
    def test_bivalent(self):
        pts = [O] * 3 + [exact_point(1, 1)] * 3
        assert classify_exact(pts) == "B"

    def test_multiple(self):
        pts = [O] * 2 + [exact_point(1, 0), exact_point(0, 1)]
        assert classify_exact(pts) == "M"

    def test_l1w_odd(self):
        pts = [exact_point(i, i) for i in (0, 1, 5)]
        assert classify_exact(pts) == "L1W"

    def test_l2w_even(self):
        pts = [exact_point(i, 0) for i in (0, 1, 4, 9)]
        assert classify_exact(pts) == "L2W"

    def test_vertical_line(self):
        # Projection must use the dominant axis, not blindly x.
        pts = [exact_point(0, i) for i in (0, 1, 2, 7)]
        assert classify_exact(pts) == "L2W"
        pts_odd = [exact_point(0, i) for i in (0, 1, 7)]
        assert classify_exact(pts_odd) == "L1W"

    def test_nonlinear(self):
        pts = [O, exact_point(1, 0), exact_point(0, 1), exact_point(3, 4)]
        assert classify_exact(pts) == "nonlinear"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            classify_exact([])


# ---- cross-validation: tolerant pipeline vs exact ground truth ------------

_EXACT_TO_ENUM = {
    "B": {ConfigClass.BIVALENT},
    "M": {ConfigClass.MULTIPLE},
    "L1W": {ConfigClass.LINEAR_UNIQUE_WEBER},
    "L2W": {ConfigClass.LINEAR_MANY_WEBER},
    "nonlinear": {ConfigClass.QUASI_REGULAR, ConfigClass.ASYMMETRIC},
}

grid_coord = st.integers(min_value=-6, max_value=6)
grid_points = st.lists(
    st.tuples(grid_coord, grid_coord), min_size=2, max_size=9
)


@given(grid_points)
def test_tolerant_classification_matches_exact_on_grids(raw):
    exact_pts = [exact_point(x, y) for x, y in raw]
    float_pts = [Point(float(x), float(y)) for x, y in raw]
    expected = classify_exact(exact_pts)
    got = classify(Configuration(float_pts))
    assert got in _EXACT_TO_ENUM[expected], (raw, expected, got)


@given(grid_points)
def test_tolerant_collinearity_matches_exact_on_grids(raw):
    from repro.geometry import all_collinear

    exact_pts = [exact_point(x, y) for x, y in raw]
    float_pts = [Point(float(x), float(y)) for x, y in raw]
    assert all_collinear(float_pts) == all_collinear_exact(exact_pts)


def test_half_grid_sweep_deterministic():
    """Denser deterministic sweep on the half-integer grid."""
    rng = random.Random(99)
    for _ in range(150):
        n = rng.randint(2, 8)
        raw = [
            (Fraction(rng.randint(-8, 8), 2), Fraction(rng.randint(-8, 8), 2))
            for _ in range(n)
        ]
        exact_pts = [exact_point(x, y) for x, y in raw]
        float_pts = [Point(float(x), float(y)) for x, y in raw]
        expected = classify_exact(exact_pts)
        got = classify(Configuration(float_pts))
        assert got in _EXACT_TO_ENUM[expected], (raw, expected, got)
