"""Unit tests for Weber point machinery (Definition 1, Lemma 3.2)."""

import math
import random

import pytest

from repro.geometry import (
    Point,
    geometric_median,
    is_weber_point,
    linear_weber_interval,
    sum_of_distances,
    unit_vector_sum,
)

from ..conftest import regular_ngon


class TestObjective:
    def test_sum_of_distances(self):
        pts = [Point(0, 0), Point(3, 0), Point(0, 4)]
        assert math.isclose(sum_of_distances(Point(0, 0), pts), 7.0)

    def test_unit_vector_sum_counts_colocated(self, tol):
        pts = [Point(0, 0), Point(0, 0), Point(1, 0)]
        s, k = unit_vector_sum(Point(0, 0), pts, tol)
        assert k == 2
        assert s.close_to(Point(1, 0))


class TestCertificate:
    def test_fermat_point_of_equilateral_triangle(self):
        pts = regular_ngon(3, radius=1.0)
        assert is_weber_point(Point(0, 0), pts)

    def test_wrong_point_rejected(self):
        pts = regular_ngon(3, radius=1.0)
        assert not is_weber_point(Point(0.5, 0.5), pts)

    def test_dominant_multiplicity_point_is_weber(self, tol):
        # With 3 of 5 robots at x, x is the Weber point (majority rule).
        pts = [Point(0, 0)] * 3 + [Point(1, 0), Point(0, 1)]
        assert is_weber_point(Point(0, 0), pts, tol)


class TestGeometricMedian:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_median([])

    def test_single_point(self):
        r = geometric_median([Point(5, 5)])
        assert r.point == Point(5, 5) and r.certified

    def test_symmetric_cross(self):
        r = geometric_median([Point(1, 0), Point(-1, 0), Point(0, 2), Point(0, -2)])
        assert r.certified
        assert r.point.close_to(Point(0, 0))

    def test_square_center(self, unit_square):
        r = geometric_median(unit_square)
        assert r.certified
        assert r.point.distance_to(Point(0.5, 0.5)) < 1e-9

    def test_occupied_optimum_returned_bitwise(self):
        anchor = Point(0.123456, 0.654321)
        pts = [anchor] * 3 + [Point(1, 1), Point(-1, 0.5)]
        r = geometric_median(pts)
        assert r.certified
        assert r.point == anchor  # bitwise, not just close

    def test_obtuse_triangle_vertex_optimum(self):
        # When one vertex has an angle >= 120 degrees, it IS the median.
        pts = [Point(0, 0), Point(10, 0.5), Point(-10, 0.5)]
        r = geometric_median(pts)
        assert r.certified
        assert r.point == Point(0, 0)

    def test_beats_grid_search(self):
        rng = random.Random(17)
        pts = [Point(rng.uniform(0, 4), rng.uniform(0, 4)) for _ in range(7)]
        r = geometric_median(pts)
        assert r.certified
        best_grid = min(
            (
                sum_of_distances(Point(0.05 * i, 0.05 * j), pts)
                for i in range(81)
                for j in range(81)
            )
        )
        assert r.objective <= best_grid + 1e-6

    def test_collinear_input_returns_median(self):
        pts = [Point(t, 0) for t in (0.0, 1.0, 2.0, 3.0, 10.0)]
        r = geometric_median(pts)
        assert r.certified
        assert r.point.close_to(Point(2, 0))

    def test_lemma_3_2_invariance_under_moves_towards(self):
        """Moving points straight towards the Weber point keeps it fixed."""
        rng = random.Random(23)
        pts = [Point(rng.uniform(0, 5), rng.uniform(0, 5)) for _ in range(6)]
        w = geometric_median(pts)
        assert w.certified
        moved = [
            p + (w.point - p) * rng.uniform(0.0, 0.8) for p in pts
        ]
        w2 = geometric_median(moved)
        assert w2.certified
        assert w.point.distance_to(w2.point) < 1e-7


class TestLinearInterval:
    def test_odd_count_unique(self):
        pts = [Point(t, 0) for t in (0.0, 1.0, 5.0)]
        lo, hi = linear_weber_interval(pts)
        assert lo.close_to(Point(1, 0)) and hi.close_to(Point(1, 0))

    def test_even_count_interval(self):
        pts = [Point(t, 0) for t in (0.0, 1.0, 2.0, 6.0)]
        lo, hi = linear_weber_interval(pts)
        assert lo.close_to(Point(1, 0))
        assert hi.close_to(Point(2, 0))

    def test_multiplicities_shift_median(self):
        pts = [Point(0, 0)] * 3 + [Point(1, 0), Point(2, 0)]
        lo, hi = linear_weber_interval(pts)
        assert lo.close_to(Point(0, 0)) and hi.close_to(Point(0, 0))

    def test_non_collinear_rejected(self):
        with pytest.raises(ValueError):
            linear_weber_interval([Point(0, 0), Point(1, 0), Point(0, 1)])

    def test_all_coincident(self):
        lo, hi = linear_weber_interval([Point(2, 2)] * 4)
        assert lo == hi == Point(2, 2)

    def test_diagonal_line(self):
        pts = [Point(t, t) for t in (0.0, 1.0, 2.0, 3.0, 4.0)]
        lo, hi = linear_weber_interval(pts)
        assert lo.close_to(Point(2, 2)) and hi.close_to(Point(2, 2))

    def test_interval_endpoints_are_both_optima(self):
        pts = [Point(t, 0) for t in (0.0, 1.0, 3.0, 7.0)]
        lo, hi = linear_weber_interval(pts)
        obj_lo = sum_of_distances(lo, pts)
        obj_hi = sum_of_distances(hi, pts)
        obj_mid = sum_of_distances((lo + hi) / 2, pts)
        assert math.isclose(obj_lo, obj_hi)
        assert math.isclose(obj_lo, obj_mid)
