"""Unit tests for repro.geometry.point."""

import math

import pytest

from repro.geometry import ORIGIN, Point, centroid, distance


class TestVectorAlgebra:
    def test_addition(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)

    def test_subtraction(self):
        assert Point(3, 4) - Point(1, 2) == Point(2, 2)

    def test_scalar_multiplication_both_sides(self):
        assert Point(1, 2) * 3 == Point(3, 6)
        assert 3 * Point(1, 2) == Point(3, 6)

    def test_division(self):
        assert Point(2, 4) / 2 == Point(1, 2)

    def test_negation(self):
        assert -Point(1, -2) == Point(-1, 2)

    def test_iteration_unpacks(self):
        x, y = Point(5, 7)
        assert (x, y) == (5, 7)


class TestMetric:
    def test_norm_345(self):
        assert Point(3, 4).norm() == 5.0

    def test_norm_sq(self):
        assert Point(3, 4).norm_sq() == 25.0

    def test_distance_symmetry(self):
        a, b = Point(1.5, -2.0), Point(-0.5, 3.0)
        assert a.distance_to(b) == b.distance_to(a)

    def test_distance_to_self_is_zero(self):
        p = Point(1.23, 4.56)
        assert p.distance_to(p) == 0.0

    def test_triangle_inequality(self):
        a, b, c = Point(0, 0), Point(1, 2), Point(3, -1)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-12

    def test_dot_orthogonal(self):
        assert Point(1, 0).dot(Point(0, 5)) == 0.0

    def test_cross_sign_counterclockwise_positive(self):
        # (1,0) to (0,1) is a CCW turn in math orientation.
        assert Point(1, 0).cross(Point(0, 1)) > 0
        assert Point(0, 1).cross(Point(1, 0)) < 0


class TestConstructionHelpers:
    def test_normalized_unit_length(self):
        v = Point(3, 4).normalized()
        assert math.isclose(v.norm(), 1.0)

    def test_normalized_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Point(0.0, 0.0).normalized()

    def test_perpendicular_is_ccw_rotation(self):
        assert Point(1, 0).perpendicular() == Point(0, 1)
        assert Point(0, 1).perpendicular() == Point(-1, 0)

    def test_perpendicular_is_orthogonal(self):
        v = Point(2.5, -1.75)
        assert v.dot(v.perpendicular()) == 0.0

    def test_close_to_within_tolerance(self, tol):
        assert Point(0, 0).close_to(Point(0, tol.eps_dist * 0.5), tol)
        assert not Point(0, 0).close_to(Point(0, tol.eps_dist * 10), tol)

    def test_as_tuple_roundtrip(self):
        assert Point(1.5, -2.5).as_tuple() == (1.5, -2.5)

    def test_ordering_is_lexicographic(self):
        assert Point(0, 5) < Point(1, 0)
        assert Point(1, 0) < Point(1, 1)

    def test_hashable_and_usable_as_dict_key(self):
        d = {Point(1, 2): "a", Point(1, 3): "b"}
        assert d[Point(1, 2)] == "a"


class TestCentroid:
    def test_centroid_of_square_is_center(self, unit_square):
        assert centroid(unit_square).close_to(Point(0.5, 0.5))

    def test_centroid_single_point(self):
        assert centroid([Point(2, 3)]) == Point(2, 3)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_centroid_with_repeats_is_weighted(self):
        c = centroid([Point(0, 0), Point(0, 0), Point(3, 0)])
        assert c.close_to(Point(1, 0))

    def test_distance_free_function(self):
        assert distance(Point(0, 0), Point(3, 4)) == 5.0

    def test_origin_constant(self):
        assert ORIGIN == Point(0.0, 0.0)
